//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the `dapc-bench` suites use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! statistical machinery it runs a short warm-up plus a fixed number of
//! timed iterations and prints a median per-iteration wall-clock time:
//! enough to keep the benches compiling, runnable and comparable between
//! commits on one machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped. Only a hint in this stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Drives the measured closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.results.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(t.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.results.is_empty() {
            return Duration::ZERO;
        }
        self.results.sort_unstable();
        self.results[self.results.len() / 2]
    }
}

fn report(id: &str, samples: usize, median: Duration) {
    println!("{id:<40} median {median:>12.2?}  ({samples} samples)");
}

/// The bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, self.sample_size, b.median());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            b.median(),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Prevents the optimiser from discarding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
