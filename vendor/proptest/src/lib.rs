//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset the `dapc` test suites use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], the [`proptest!`] macro, and the
//! `prop_assert*` macros. Failing cases are reported with the seed of the
//! deterministic generator; there is **no shrinking** — a failure prints
//! the case index so it can be replayed by re-running the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategies: value generators for property tests.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*}
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        }
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// The subset of proptest's `Config` the suites use.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

/// Deterministic per-test generator (FNV-1a over the test name as seed).
pub fn rng_for(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Bodies may `return Ok(())` early (proptest's native
                    // Result protocol); the closure absorbs that.
                    #[allow(clippy::redundant_closure_call)]
                    let case_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = case_result {
                        panic!("property {} failed: {}", stringify!($name), e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        (1usize..6).prop_flat_map(|n| collection::vec(0u32..100, 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_and_vec(v in small_vec()) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_work(p in (0u32..4, 10u32..14)) {
            prop_assert!(p.0 < 4);
            prop_assert_ne!(p.0, p.1);
            prop_assert_eq!(p.1 - 10, p.1 - 10);
        }
    }
}
