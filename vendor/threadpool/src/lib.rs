//! Offline stand-in for the `threadpool` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a from-scratch fixed-size worker pool implementing the
//! API subset `dapc-runtime` uses: [`ThreadPool::new`],
//! [`ThreadPool::execute`] and [`ThreadPool::join`]. Jobs are `FnOnce`
//! closures drained from one shared FIFO queue; `join` blocks until the
//! queue is empty *and* no job is mid-flight, and propagates job panics to
//! the caller so a failing batch cannot be mistaken for a finished one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    /// Queued + currently running jobs.
    pending: usize,
    /// Jobs whose closure panicked (the panic is re-raised by `join`).
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or the pool shuts down.
    work: Condvar,
    /// Signalled when `pending` drops to zero.
    done: Condvar,
}

/// A fixed-size pool of worker threads draining one FIFO job queue.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = threadpool::ThreadPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..32 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || {
///         counter.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.join();
/// assert_eq!(counter.load(Ordering::Relaxed), 32);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("threadpool-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job. Jobs start in FIFO order on whichever worker frees
    /// up first.
    ///
    /// # Panics
    ///
    /// Panics if called after the pool started shutting down (only
    /// possible from a job racing `Drop`, which the API makes hard to do).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        let mut state = self.shared.state.lock().expect("pool lock");
        assert!(!state.shutdown, "execute on a shut-down pool");
        state.queue.push_back(Box::new(f));
        state.pending += 1;
        drop(state);
        self.shared.work.notify_one();
    }

    /// Blocks until every queued job has finished.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked since the last `join`, so batch drivers
    /// cannot silently lose work.
    pub fn join(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.pending > 0 {
            state = self.shared.done.wait(state).expect("pool lock");
        }
        let panicked = std::mem::take(&mut state.panicked);
        drop(state);
        assert!(panicked == 0, "{panicked} pool job(s) panicked");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool lock");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut state = shared.state.lock().expect("pool lock");
        state.pending -= 1;
        if outcome.is_err() {
            state.panicked += 1;
        }
        let idle = state.pending == 0;
        drop(state);
        if idle {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_is_reusable() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3usize {
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::Relaxed), 10 * round);
        }
    }

    #[test]
    fn single_worker_runs_fifo() {
        let pool = ThreadPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let order = Arc::clone(&order);
            pool.execute(move || order.lock().unwrap().push(i));
        }
        pool.join();
        assert_eq!(*order.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        let flag = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&flag);
        pool.execute(move || {
            f.store(7, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }

    #[test]
    #[should_panic(expected = "pool job(s) panicked")]
    fn job_panics_surface_at_join() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        pool.join();
    }

    #[test]
    fn drop_with_queued_jobs_terminates() {
        // Workers drain whatever is queued before shutdown is observed;
        // dropping must not deadlock either way.
        let pool = ThreadPool::new(2);
        for _ in 0..50 {
            pool.execute(|| {});
        }
        drop(pool);
    }
}
