//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the `dapc` workspace consumes —
//! [`rngs::StdRng`], [`SeedableRng`], the [`Rng`]/[`RngExt`] method
//! surface (`random`, `random_range`, `random_bool`) and slice
//! [`prelude::SliceRandom::shuffle`] — implemented from scratch on top of
//! xoshiro256++ with SplitMix64 seeding. Sequences are deterministic per
//! seed and stable across platforms, which is all the workspace requires
//! (reproducible experiments, not cryptographic strength).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (`[0, 1)` for floats) — the stand-in for rand's `StandardUniform`
/// distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

mod sealed {
    /// Unsigned widening helper so one rejection-sampling routine serves
    /// every integer width the workspace uses.
    pub trait UniformInt: Copy + PartialOrd {
        fn to_u64(self) -> u64;
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn to_u64(self) -> u64 { self as u64 }
                fn from_u64(v: u64) -> Self { v as $t }
            }
        )*}
    }
    uniform_int!(u8, u16, u32, u64, usize);

    macro_rules! uniform_signed {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn to_u64(self) -> u64 { (self as i64).wrapping_sub(i64::MIN) as u64 }
                fn from_u64(v: u64) -> Self { (v as i64).wrapping_add(i64::MIN) as $t }
            }
        )*}
    }
    uniform_signed!(i8, i16, i32, i64, isize);
}

use sealed::UniformInt;

/// Draws uniformly from `[0, span)` by rejection sampling (span > 0).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges that can produce a uniform sample of `T` — the stand-in for
/// rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural domain (`[0, 1)` for
    /// floats).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        p > 0.0 && (p >= 1.0 || self.random::<f64>() < p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias of [`Rng`] kept so `use rand::RngExt` imports compile unchanged.
pub use self::Rng as RngExt;

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience seeding from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate — but the
    /// workspace only requires per-seed determinism, which this provides.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Shuffling support for slices (the `SliceRandom` subset the workspace
/// uses).
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.random_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.random_range(1..=10u64);
            assert!((1..=10).contains(&b));
            let c = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&c));
            let d = rng.random_range(0..=2i32);
            assert!((0..=2).contains(&d));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle is a no-op with prob ~1/100!"
        );
    }

    #[test]
    fn bool_draws_are_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads));
    }
}
