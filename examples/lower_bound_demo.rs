//! Appendix B live: the LPS Ramanujan family and the locality obstruction.
//!
//! Builds the bipartite and non-bipartite members of the `X^{p,q}` family,
//! verifies Theorem B.1's structure, and shows that a round-capped MIS
//! algorithm produces the *same* expected output density on both — even
//! though the bipartite graph has α = n/2 and the non-bipartite one
//! α ≤ 2√p/(p+1)·n. That forced equality is the engine of the
//! Ω(log n/ε) lower bound (Theorem 1.4).
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use dapc::graph::gen;
use dapc::graph::girth::girth;
use dapc::graph::lps::{lps_graph, LpsCase};
use dapc::lower::capped::greedy_mis_rounds;
use dapc::lower::harness::indistinguishability;

fn main() {
    // p = 5 keeps both family members at simulable sizes (the paper's
    // p = 17 needs q ≥ 13 → n = 1092 for the non-bipartite member, which
    // also works but is slower to profile).
    let p = 5;
    let bip = lps_graph(p, 13);
    let non = lps_graph(p, 29);
    assert_eq!(bip.case, LpsCase::Bipartite);
    assert_eq!(non.case, LpsCase::NonBipartite);

    for x in [&bip, &non] {
        println!(
            "X^{{{}, {}}}: n = {}, {}-regular, girth = {:?} (bound {:.2}), case {:?}, α ≤ {:.1}",
            x.p,
            x.q,
            x.graph.n(),
            x.p + 1,
            girth(&x.graph),
            x.girth_lower_bound,
            x.case,
            x.independence_upper_bound()
        );
    }

    let g_bip = girth(&bip.graph).unwrap_or(0);
    let g_non = girth(&non.graph).unwrap_or(0);
    let locality = ((g_bip.min(g_non) as usize).saturating_sub(1)) / 2;
    println!("\nlocality threshold: both graphs are tree-like to radius {locality}");

    println!(
        "\n{:>7} {:>14} {:>14} {:>8} {:>16}",
        "rounds", "E[|I|]/n bip", "E[|I|]/n non", "gap", "tree-like?"
    );
    let mut rng = gen::seeded_rng(99);
    for t in 1..=locality + 2 {
        let rep = indistinguishability(&bip.graph, &non.graph, t, 60, &mut rng, greedy_mis_rounds);
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>8.4} {:>16}",
            t,
            rep.mean_a,
            rep.mean_b,
            rep.gap,
            if rep.locally_identical { "yes" } else { "no" }
        );
    }

    let alpha_density_bip = 0.5;
    let alpha_density_non = non.independence_upper_bound() / non.graph.n() as f64;
    println!(
        "\nα/n: bipartite = {alpha_density_bip:.3}, non-bipartite ≤ {alpha_density_non:.3}. \
         Below the threshold the two columns must agree, so no algorithm \
         can reach density ~{alpha_density_bip:.2} on the bipartite graph while staying \
         feasible (≤ {alpha_density_non:.3}) on the other — the Theorem 1.4 obstruction."
    );
}
