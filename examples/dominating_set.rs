//! Theorem 1.3 end-to-end: (1 + ε)-approximate minimum (k-distance)
//! dominating set — the running example of Definition 1.3, where one
//! hypergraph round simulates k graph rounds — driven through the
//! engine's `ThreePhase` backend and the `GraphProblem` builder.
//!
//! ```sh
//! cargo run --release --example dominating_set
//! ```

use dapc::prelude::*;

fn main() {
    println!("Minimum dominating set (k = 1):");
    println!(
        "{:<16} {:>6} {:>6} {:>8} {:>8} {:>8} {:>10}",
        "family", "ε", "OPT", "ours", "ratio", "≤1+ε?", "rounds"
    );
    let families: Vec<(&str, Graph)> = vec![
        ("cycle C36", gen::cycle(36)),
        ("grid 5×6", gen::grid(5, 6)),
        ("gnp(36, .09)", gen::gnp(36, 0.09, &mut gen::seeded_rng(6))),
        ("tree n=36", gen::random_tree(36, &mut gen::seeded_rng(7))),
    ];
    for (name, g) in &families {
        for eps in [0.2, 0.4] {
            let ilp = problems::min_dominating_set_unweighted(g);
            let cfg = SolveConfig::new().eps(eps).seed(23);
            let out = ThreePhase.solve(&ilp, &cfg, &mut cfg.rng());
            let v = verify::verdict(&ilp, &out.assignment, &cfg.budget);
            assert!(v.feasible, "output must dominate on {name}");
            println!(
                "{:<16} {:>6.2} {:>6} {:>8} {:>8.3} {:>8} {:>10}",
                name,
                eps,
                v.opt,
                out.value,
                v.ratio,
                if v.within_covering(eps) { "yes" } else { "NO" },
                out.rounds()
            );
        }
    }

    println!("\nk-distance dominating set on C36 (hypergraph modelling of Def. 1.3):");
    println!("{:>4} {:>6} {:>8} {:>8}", "k", "OPT", "ours", "ratio");
    let g = gen::cycle(36);
    for k in [1usize, 2, 3] {
        let r = GraphProblem::k_dominating_set(&g, k)
            .eps(0.4)
            .seed(31)
            .solve_with(&ThreePhase);
        let ilp = problems::k_dominating_set(&g, k, vec![1; 36]);
        let v = verify::verdict(&ilp, &r.report.assignment, &SolverBudget::default());
        println!("{:>4} {:>6} {:>8} {:>8.3}", k, v.opt, r.weight, v.ratio);
        // Exact k-DS of C_n is ⌈n/(2k+1)⌉.
        assert_eq!(v.opt as usize, 36usize.div_ceil(2 * k + 1));
    }

    println!("\nWeighted vertex cover with skewed weights:");
    let g = gen::gnp(30, 0.12, &mut gen::seeded_rng(8));
    let w: Vec<u64> = (0..30).map(|i| 1 + (i % 5) as u64 * 3).collect();
    let r = GraphProblem::min_vertex_cover(&g)
        .weights(&w)
        .eps(0.3)
        .seed(9)
        .solve_with(&ThreePhase);
    let ilp = problems::min_vertex_cover(&g, w);
    let v = verify::verdict(&ilp, &r.report.assignment, &SolverBudget::default());
    println!(
        "weighted VC: ours {} vs OPT {} (ratio {:.3})",
        r.weight, v.opt, v.ratio
    );
}
