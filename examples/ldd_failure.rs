//! Appendix C live: watch the classical decompositions blow their deletion
//! budget with probability Ω(ε) on the counterexample families, while the
//! Theorem 1.1 algorithm keeps it with high probability.
//!
//! ```sh
//! cargo run --release --example ldd_failure
//! ```

use dapc::conc::FailureCounter;
use dapc::decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc::decomp::mpx::mpx;
use dapc::decomp::three_phase::{three_phase_ldd, LddParams};
use dapc::graph::gen;

fn main() {
    let eps = 0.3;
    let trials = 500;
    let mut rng = gen::seeded_rng(2024);

    println!("Claim C.1 — Elkin–Neiman on the clique K_n (ε = {eps}, {trials} trials)");
    println!(
        "{:>6} {:>22} {:>22}",
        "n", "Pr[deleted ≥ n−1]", "theory ≈ 1 − e^(−ε)"
    );
    for n in [20usize, 40, 80, 160] {
        let g = gen::complete(n);
        let params = EnParams::new(eps, n as f64);
        let mut fails = FailureCounter::new();
        for _ in 0..trials {
            let d = elkin_neiman(&g, &params, &mut rng, None);
            fails.record(d.deleted_count() >= n - 1);
        }
        println!(
            "{:>6} {:>22.3} {:>22.3}",
            n,
            fails.rate(),
            1.0 - (-eps_f(eps)).exp()
        );
    }

    println!("\nClaim C.2 — MPX on the gadget family (cut the whole L×R core)");
    println!("{:>6} {:>10} {:>22}", "t", "n", "Pr[core fully cut]");
    for t in [6usize, 10, 14] {
        let (g, layout) = gen::mpx_gadget(t);
        let mut fails = FailureCounter::new();
        for _ in 0..trials {
            let c = mpx(&g, eps, g.n() as f64, &mut rng);
            let core_cut = c
                .cut_edges
                .iter()
                .filter(|&&(u, v)| {
                    (layout.l.contains(&u) && layout.r.contains(&v))
                        || (layout.l.contains(&v) && layout.r.contains(&u))
                })
                .count();
            fails.record(core_cut == t * t);
        }
        println!("{:>6} {:>10} {:>22.4}", t, g.n(), fails.rate());
    }

    println!("\nTheorem 1.1 — the three-phase LDD on the same families");
    println!("{:>12} {:>10} {:>22}", "family", "n", "Pr[deleted > ε·n]");
    for (name, g) in [
        ("clique", gen::complete(80)),
        ("mpx-gadget", gen::mpx_gadget(14).0),
    ] {
        let params = LddParams::scaled(eps, g.n() as f64, 0.05);
        let mut fails = FailureCounter::new();
        for _ in 0..200 {
            let out = three_phase_ldd(&g, &params, &mut rng, None);
            fails.record(out.decomposition.deleted_fraction() > eps);
        }
        println!("{:>12} {:>10} {:>22.4}", name, g.n(), fails.rate());
    }
    println!("\n(The whole point of contribution (C1): the last column is 0.)");
}

fn eps_f(eps: f64) -> f64 {
    eps
}
