//! Quickstart: decompose a graph, solve a packing and a covering problem
//! through the unified engine, and inspect the LOCAL round bill.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dapc::decomp::three_phase::{three_phase_ldd, LddParams};
use dapc::prelude::*;

fn main() {
    let mut rng = gen::seeded_rng(42);
    let g = gen::gnp(400, 0.012, &mut rng);
    println!("graph: {g}");

    // 1. The Theorem 1.1 low-diameter decomposition.
    let eps = 0.2;
    let params = LddParams::scaled(eps, g.n() as f64, 0.05);
    let out = three_phase_ldd(&g, &params, &mut rng, None);
    let d = &out.decomposition;
    println!(
        "three-phase LDD (ε = {eps}): {} clusters, {} deleted ({:.1}% ≤ ε = {:.0}%), \
         max weak diameter {}, {} LOCAL rounds",
        d.clusters.len(),
        d.deleted_count(),
        100.0 * d.deleted_fraction(),
        100.0 * eps,
        d.max_weak_diameter(&g),
        d.rounds()
    );
    d.validate(&g, None).expect("Definition 1.4 invariants");

    // 2. (1 − ε)-approximate maximum independent set (Theorem 1.2),
    //    through the GraphProblem builder and the ThreePhase backend.
    let small = gen::gnp(48, 0.07, &mut gen::seeded_rng(7));
    let mis = GraphProblem::max_independent_set(&small)
        .eps(0.3)
        .seed(42)
        .solve_with(&ThreePhase);
    let mis_ilp = problems::max_independent_set_unweighted(&small);
    let verdict = verify::verdict(&mis_ilp, &mis.report.assignment, &SolverBudget::default());
    println!(
        "MIS on {small}: |I| = {} vs OPT = {} (ratio {:.3}, guarantee ≥ 0.7), {} rounds",
        mis.weight,
        verdict.opt,
        verdict.ratio,
        mis.rounds()
    );

    // 3. (1 + ε)-approximate minimum dominating set (Theorem 1.3) — same
    //    builder, same backend, covering sense inferred from the problem.
    let ds = GraphProblem::min_dominating_set(&small)
        .eps(0.3)
        .seed(43)
        .solve_with(&ThreePhase);
    let ds_ilp = problems::min_dominating_set_unweighted(&small);
    let verdict = verify::verdict(&ds_ilp, &ds.report.assignment, &SolverBudget::default());
    // Dominating set is the hardest reference to certify: if the budgeted
    // branch & bound could not prove optimality, say so (the distributed
    // answer may legitimately beat the centralised incumbent).
    let opt_label = if verdict.opt_exact {
        "OPT ="
    } else {
        "best-known ≤"
    };
    println!(
        "MDS on {small}: |D| = {} vs {opt_label} {} (ratio {:.3}, guarantee ≤ 1.3), {} rounds",
        ds.weight,
        verdict.opt,
        verdict.ratio,
        ds.rounds()
    );
    assert!(ds.report.feasible());

    // 4. The same covering problem through every registered backend.
    println!("\nall backends on the dominating-set instance:");
    let cfg = SolveConfig::new().eps(0.3).seed(43);
    for name in engine::BACKENDS {
        let report = engine::solve(name, &ds_ilp, &cfg).expect("registered backend");
        println!(
            "  {name:<12} value {:>3}  feasible {}  rounds {}",
            report.value,
            report.feasible(),
            report.rounds()
        );
    }
    println!("\nround ledger of the LDD:\n{}", d.ledger);
}
