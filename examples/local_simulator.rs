//! The LOCAL model simulator as a standalone tool: write a distributed
//! algorithm as a `NodeProgram`, run it with real synchronous message
//! passing, and check the ball-gathering equivalence that justifies
//! charged-round accounting.
//!
//! ```sh
//! cargo run --release --example local_simulator
//! ```

use dapc::graph::{gen, traversal};
use dapc::local::gather::{gather_views, GatherProgram};
use dapc::local::network::{Network, NodeCtx, NodeProgram, Outbox};

/// A classic: every vertex learns the minimum identifier in the graph
/// (leader election by flooding).
struct MinIdFlood {
    best: u32,
    changed: bool,
    quiet: usize,
}

impl NodeProgram for MinIdFlood {
    type Message = u32;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<u32> {
        self.best = ctx.id;
        Outbox::Broadcast(self.best)
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: Vec<(usize, u32)>) -> Outbox<u32> {
        self.changed = false;
        for (_, m) in inbox {
            if m < self.best {
                self.best = m;
                self.changed = true;
            }
        }
        if self.changed {
            self.quiet = 0;
            Outbox::Broadcast(self.best)
        } else {
            self.quiet += 1;
            Outbox::Silent
        }
    }

    fn halted(&self) -> bool {
        self.quiet >= 2
    }
}

fn main() {
    // 1. Leader election on a torus-ish grid.
    let g = gen::grid(12, 12);
    let mut net = Network::new(
        &g,
        |_, _| MinIdFlood {
            best: u32::MAX,
            changed: true,
            quiet: 0,
        },
        g.n(),
    );
    let stats = net.run(500);
    let leaders: std::collections::HashSet<u32> = net.nodes().iter().map(|p| p.best).collect();
    println!(
        "leader election on {g}: {} rounds, {} messages, all agree on {:?}",
        stats.rounds, stats.messages, leaders
    );
    assert_eq!(leaders.len(), 1);

    // 2. The gather primitive vs the centralised ball — the equivalence
    //    the charged-rounds accounting rests on.
    let g = gen::random_regular(64, 3, &mut gen::seeded_rng(12));
    let radius = 4;
    let views = gather_views(&g, radius);
    let mut checked = 0;
    for v in g.vertices() {
        let mut ball: Vec<u32> = traversal::ball(&g, &[v], radius, None).iter().collect();
        ball.sort_unstable();
        assert_eq!(views[v as usize], ball);
        checked += 1;
    }
    println!(
        "gather primitive on {g}: all {checked} vertices learned exactly N^{radius}(v) \
         after {radius} message rounds"
    );

    // 3. Message volume of the gather (LOCAL allows unbounded messages —
    //    here is what that costs when simulated honestly).
    let mut net = Network::new(&g, |_, _| GatherProgram::new(radius), g.n());
    let stats = net.run(radius + 1);
    println!(
        "gather message count: {} point-to-point messages over {} rounds",
        stats.messages, stats.rounds
    );
}
