//! The `dapc-serve` layer, demonstrated in one process: a declarative
//! `CorpusSpec`, a checkpointed sweep that dies partway and resumes
//! without recomputing a single finished unit, the stitched result
//! matching the uninterrupted run exactly — and then the persistent
//! solve daemon on a Unix socket, streaming per-job results to a client
//! while its resident prep cache pays off across requests.
//!
//! Run with `cargo run --release --example serve_sweep`.
//!
//! The multi-process side (a coordinator supervising `dapc-serve
//! worker` processes, surviving injected kills) is the same machinery
//! driven by `orchestrate_sweep` / the `dapc-serve sweep` subcommand;
//! see `crates/serve/README.md`.

use dapc::prelude::*;
use dapc::serve::{client, run_worker, scan_parts, uncovered};
use dapc::serve::{CorpusSpec, Daemon, SweepManifest, WorkerOptions};

fn main() {
    // A sweep is a spec, not a corpus: a few CLI-style tokens that
    // serialise to hardened bytes and rebuild the identical corpus in
    // any process — coordinator, workers, daemon clients.
    let spec = CorpusSpec::parse_args([
        "ring=mis:cycle:16",
        "cover=vc:grid:3x3",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..3",
    ])
    .expect("spec tokens parse");
    let jobs = spec.grid_len();
    println!("spec: {jobs} jobs (instances x backends x eps x seeds)\n");

    // The reference: the whole corpus in one uninterrupted run.
    let reference = solve_many(&spec.build(), &RuntimeConfig::new());

    // --- Checkpointed sweep, crash, resume -------------------------------
    let dir = std::env::temp_dir().join(format!("serve-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create sweep dir");

    // The manifest pins the directory to this spec with a 2-job
    // checkpoint unit; workers cut their ranges at global multiples of
    // it, so any later attempt dovetails with these part files.
    SweepManifest::new(spec.clone(), 2)
        .store(&dir)
        .expect("store manifest");

    // A worker solves a prefix and "dies" (here: simply returns early).
    // Each finished unit was already renamed into place atomically — a
    // real crash forfeits at most the one unit in flight.
    let first = run_worker(&dir, 0..5, &WorkerOptions::default()).expect("prefix worker");
    println!(
        "worker ran 0..5, then died: {} jobs checkpointed in {} part files",
        first.solved_jobs, first.solved_units
    );

    // Resume the way the coordinator does: scan what the checkpoints
    // actually cover, then assign exactly the uncovered complement.
    let covered = scan_parts(&dir, jobs).expect("scan").covered;
    for range in uncovered(jobs, &covered) {
        let resumed = run_worker(&dir, range.clone(), &WorkerOptions::default()).expect("resume");
        println!(
            "resumed {range:?}: {} jobs solved, {} already checkpointed",
            resumed.solved_jobs, resumed.resumed_jobs
        );
    }

    // Stitch the sweep back together from the part files alone.
    let scan = scan_parts(&dir, jobs).expect("final scan");
    assert_eq!(scan.covered, vec![0..jobs], "checkpoints cover the corpus");
    let mut parts = scan.parts.into_iter();
    let mut merged = parts.next().expect("full coverage has parts");
    for p in parts {
        merged.merge(p);
    }
    let stitched = merged.finish();
    for (m, s) in stitched.groups.iter().zip(&reference.groups) {
        assert_eq!(
            (m.jobs, m.min_value, m.max_value, m.mean_value),
            (s.jobs, s.min_value, s.max_value, s.mean_value),
            "a crash/resume may never move an aggregate"
        );
    }
    println!(
        "stitched {} groups == uninterrupted run, timings aside\n",
        stitched.groups.len()
    );
    std::fs::remove_dir_all(&dir).ok();

    // --- The persistent solve daemon -------------------------------------
    let socket = std::env::temp_dir().join(format!("serve-sweep-{}.sock", std::process::id()));
    let daemon = Daemon::bind(&socket).expect("bind daemon socket");
    let server = std::thread::spawn(move || daemon.run());

    let protocol = client::ping(&socket).expect("ping");
    println!("daemon up on {} (protocol v{protocol})", socket.display());

    // A sweep streams one frame per job, in canonical order, as results
    // complete — a client renders progress without waiting for the end.
    let mut worst_ratio_jobs = 0usize;
    let summary = client::sweep(&socket, &spec, 2, |job| {
        if !job.feasible {
            worst_ratio_jobs += 1;
        }
        if job.index < 3 {
            println!("  streamed job {} {} -> {}", job.index, job.key, job.value);
        }
    })
    .expect("streamed sweep");
    assert_eq!(summary.jobs, jobs as u64);
    assert_eq!(worst_ratio_jobs, 0, "every streamed job verified feasible");
    println!(
        "  ... {} jobs streamed, {} cache hits / {} misses",
        summary.jobs, summary.cache_hits, summary.cache_misses
    );

    // The prep cache is resident: the same spec again mostly hits.
    let again = client::sweep(&socket, &spec, 2, |_| {}).expect("second sweep");
    assert!(
        again.cache_hits > summary.cache_hits,
        "resident cache accumulates hits"
    );
    println!(
        "re-swept warm: {} cache hits (was {})",
        again.cache_hits, summary.cache_hits
    );

    client::shutdown(&socket).expect("shutdown");
    server
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    println!("\ndaemon shut down; socket removed: {}", !socket.exists());
}
