//! Theorem 1.2 end-to-end: (1 − ε)-approximate maximum independent set
//! across graph families and ε values, verified against exact optima —
//! driven entirely through the engine's `ThreePhase` backend.
//!
//! ```sh
//! cargo run --release --example mis_approx
//! ```

use dapc::prelude::*;

fn main() {
    let families: Vec<(&str, Graph)> = vec![
        ("cycle C40", gen::cycle(40)),
        ("grid 6×7", gen::grid(6, 7)),
        ("gnp(45, .07)", gen::gnp(45, 0.07, &mut gen::seeded_rng(3))),
        ("tree n=45", gen::random_tree(45, &mut gen::seeded_rng(4))),
        (
            "4-regular n=40",
            gen::random_regular(40, 4, &mut gen::seeded_rng(5)),
        ),
    ];
    println!(
        "{:<16} {:>6} {:>6} {:>8} {:>8} {:>8} {:>10}",
        "family", "ε", "OPT", "ours", "ratio", "≥1−ε?", "rounds"
    );
    for (name, g) in &families {
        for eps in [0.1, 0.2, 0.3] {
            let ilp = problems::max_independent_set_unweighted(g);
            let cfg = SolveConfig::new().eps(eps).seed(17);
            let out = ThreePhase.solve(&ilp, &cfg, &mut cfg.rng());
            let v = verify::verdict(&ilp, &out.assignment, &cfg.budget);
            assert!(v.feasible, "infeasible output on {name}");
            println!(
                "{:<16} {:>6.2} {:>6} {:>8} {:>8.3} {:>8} {:>10}",
                name,
                eps,
                v.opt,
                out.value,
                v.ratio,
                if v.within_packing(eps) { "yes" } else { "NO" },
                out.rounds()
            );
        }
    }
    println!("\nWeighted instance (heavy hubs must win):");
    let g = gen::star(30);
    let mut w = vec![1u64; 30];
    w[0] = 1000;
    let r = GraphProblem::max_independent_set(&g)
        .weights(&w)
        .eps(0.2)
        .seed(9)
        .solve_with(&ThreePhase);
    println!(
        "star with heavy hub: value {} (hub weight 1000, leaves 29)",
        r.weight
    );
}
