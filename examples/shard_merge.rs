//! Multi-process sharding of one corpus, demonstrated in one process:
//! split a sweep into N shards, solve each independently (in real use:
//! one process per shard, on different machines), ship the compact
//! `ShardReport` snapshots as bytes, warm-start later shards from
//! earlier ones' prep caches, and merge — the merged aggregation is
//! identical to the single-process run, timings aside.
//!
//! Run with `cargo run --release --example shard_merge [shards]`.

use dapc::prelude::*;

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let corpus = Corpus::builder()
        .instance(
            "MIS/gnp36",
            problems::max_independent_set_unweighted(&gen::gnp(36, 0.08, &mut gen::seeded_rng(7))),
        )
        .instance(
            "VC/cycle30",
            problems::min_vertex_cover_unweighted(&gen::cycle(30)),
        )
        .backend("three-phase")
        .backend("greedy")
        .eps_grid([0.2, 0.3])
        .seeds(0..4)
        .build();
    let rt = RuntimeConfig::new().jobs(2);
    println!("corpus: {} jobs, split {shards} ways\n", corpus.len());

    // The reference run: one process owns the whole sweep.
    let single = solve_many(&corpus, &rt);

    // Each shard solves its contiguous slice and serialises its report.
    // A later shard warm-starts from the previous one's bundled prep
    // snapshot — shipping memoised exact subset solves, never results.
    let mut shipped: Vec<Vec<u8>> = Vec::new();
    let mut previous: Option<ShardReport> = None;
    for shard in 0..shards {
        let cache = PrepCache::new();
        let warmed = match &previous {
            Some(p) => p.warm_start(&cache).expect("snapshot from this process"),
            None => 0,
        };
        let report = solve_shard_with_cache(&corpus, shard, shards, &rt, &cache).with_prep(&cache);
        println!(
            "shard {shard}/{shards}: {} jobs in {:?} ({} warm-start entries in, {} misses)",
            report.jobs, report.wall, warmed, report.cache.misses,
        );
        let mut bytes = Vec::new();
        report.save_to(&mut bytes).expect("write to a Vec");
        println!("  snapshot: {} bytes", bytes.len());
        shipped.push(bytes);
        previous = Some(report);
    }

    // The merging process: load every snapshot, merge, finish.
    let mut reports = shipped
        .iter()
        .map(|bytes| ShardReport::load_from(bytes.as_slice()).expect("round trip"));
    let mut merged = reports.next().expect("at least one shard");
    for report in reports {
        merged.merge(report);
    }
    let stream = merged.finish();

    println!("\nmerged groups (vs single-process):");
    for (m, s) in stream.groups.iter().zip(&single.groups) {
        assert_eq!(
            (m.jobs, m.min_value, m.max_value, m.mean_value, m.mean_ratio),
            (s.jobs, s.min_value, s.max_value, s.mean_value, s.mean_ratio),
            "sharding may never move an aggregate"
        );
        println!(
            "  {:<12} {:<12} eps {:<4} jobs {} worst {} mean {:.3} ok {}",
            m.instance,
            m.backend,
            m.eps,
            m.jobs,
            match m.sense {
                Sense::Packing => m.min_value,
                Sense::Covering => m.max_value,
            },
            m.mean_value,
            m.meets_guarantee(),
        );
    }
    println!("\nshard merge reproduced the single-process aggregation exactly.");
}
