//! The whole backend registry against a mixed packing/covering corpus —
//! since PR 2 as one `dapc-runtime` batch: every cell of the matrix is a
//! job in a single `solve_many` call, fanned out over a worker pool with
//! shared per-instance prep caching. The round columns make the paper's
//! headline visible — `three-phase` at `Õ(log n/ε)` versus `gkm` at
//! `O(log³ n/ε)` — while the centralised `greedy`/`bnb` references anchor
//! quality, and the cache line at the bottom shows the batch machinery
//! earning its keep.
//!
//! Both fan-out levels share the one process-wide executor: `JOBS` caps
//! how many cells run concurrently and `PREP_WORKERS` shards each cell's
//! preparation step — any combination is byte-identical to sequential
//! execution.
//!
//! ```sh
//! cargo run --release --example backend_matrix
//! JOBS=4 cargo run --release --example backend_matrix
//! JOBS=4 PREP_WORKERS=2 cargo run --release --example backend_matrix
//! ```

use dapc::prelude::*;

fn env_count(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let jobs = env_count("JOBS", 2);
    let prep_workers = env_count("PREP_WORKERS", 1);
    let corpus = Corpus::builder()
        .instance(
            "MIS/cycle30",
            problems::max_independent_set_unweighted(&gen::cycle(30)),
        )
        .instance(
            "MIS/gnp32",
            problems::max_independent_set_unweighted(&gen::gnp(32, 0.09, &mut gen::seeded_rng(1))),
        )
        .instance(
            "VC/grid4x5",
            problems::min_vertex_cover_unweighted(&gen::grid(4, 5)),
        )
        .instance(
            "DS/cycle27",
            problems::min_dominating_set_unweighted(&gen::cycle(27)),
        )
        .instance(
            "pack/random",
            problems::random_packing(25, 18, 3, &mut gen::seeded_rng(2)),
        )
        .instance(
            "cover/random",
            problems::random_covering(20, 15, 3, &mut gen::seeded_rng(3)),
        )
        .all_backends()
        .eps(0.3)
        .seeds(0..1)
        .base_config(SolveConfig::new().ensemble_runs(8))
        .build();
    let report = solve_many(
        &corpus,
        &RuntimeConfig::new().jobs(jobs).prep_workers(prep_workers),
    );

    println!(
        "{:<13} {:>5} | {:>18} {:>14} {:>18} {:>14} {:>14}",
        "instance", "OPT", "three-phase", "gkm", "ensemble", "greedy", "bnb"
    );
    for name in corpus.instance_names() {
        let opt = report
            .group(name, "three-phase", 0.3)
            .and_then(|g| g.opt)
            .expect("reference optimum");
        print!("{name:<13} {opt:>5} |");
        for backend in engine::BACKENDS {
            let g = report.group(name, backend, 0.3).expect("every cell ran");
            assert!(g.feasible, "{backend} infeasible on {name}");
            let cell = format!("{} ({}r)", g.min_value, g.rounds_last);
            let width = if backend == "three-phase" || backend == "ensemble" {
                18
            } else {
                14
            };
            print!(" {cell:>width$}");
        }
        println!();
    }
    println!(
        "\nvalues annotated with their charged LOCAL rounds; all cells feasible by construction"
    );
    println!(
        "{} jobs ({} concurrent, prep x{prep_workers}) on the {}-worker shared executor in {:.1?} | \
         prep cache: {} hits / {} misses (rate {:.2}) across {} families",
        report.results.len(),
        report.workers,
        exec::current_workers(),
        report.wall,
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate(),
        report.cache.families,
    );
}
