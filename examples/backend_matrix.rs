//! The whole backend registry against a mixed packing/covering corpus:
//! one table, five backends, every cell produced through the single
//! `Solver` trait. The round columns make the paper's headline visible —
//! `three-phase` at `Õ(log n/ε)` versus `gkm` at `O(log³ n/ε)` — while
//! the centralised `greedy`/`bnb` references anchor quality.
//!
//! ```sh
//! cargo run --release --example backend_matrix
//! ```

use dapc::prelude::*;

fn main() {
    let corpus: Vec<(&str, IlpInstance)> = vec![
        (
            "MIS/cycle30",
            problems::max_independent_set_unweighted(&gen::cycle(30)),
        ),
        (
            "MIS/gnp32",
            problems::max_independent_set_unweighted(&gen::gnp(32, 0.09, &mut gen::seeded_rng(1))),
        ),
        (
            "VC/grid4x5",
            problems::min_vertex_cover_unweighted(&gen::grid(4, 5)),
        ),
        (
            "DS/cycle27",
            problems::min_dominating_set_unweighted(&gen::cycle(27)),
        ),
        (
            "pack/random",
            problems::random_packing(25, 18, 3, &mut gen::seeded_rng(2)),
        ),
        (
            "cover/random",
            problems::random_covering(20, 15, 3, &mut gen::seeded_rng(3)),
        ),
    ];
    let cfg = SolveConfig::new().eps(0.3).seed(7).ensemble_runs(8);

    println!(
        "{:<13} {:>5} | {:>18} {:>14} {:>18} {:>14} {:>14}",
        "instance", "OPT", "three-phase", "gkm", "ensemble", "greedy", "bnb"
    );
    for (name, ilp) in &corpus {
        let (opt, _) = verify::optimum(ilp, &cfg.budget);
        print!("{name:<13} {opt:>5} |");
        for backend in engine::BACKENDS {
            let r = engine::solve(backend, ilp, &cfg).expect("registered backend");
            assert!(r.feasible(), "{backend} infeasible on {name}");
            let cell = format!("{} ({}r)", r.value, r.rounds());
            let width = if backend == "three-phase" || backend == "ensemble" {
                18
            } else {
                14
            };
            print!(" {cell:>width$}");
        }
        println!();
    }
    println!(
        "\nvalues annotated with their charged LOCAL rounds; all cells feasible by construction"
    );
}
