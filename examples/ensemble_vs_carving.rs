//! The two packing algorithms of §4 side by side — as interchangeable
//! engine backends: `ThreePhase` (the main Theorem 1.2 carving solver)
//! and `Ensemble` (the §4.2 "alternative approach"). One loop, two
//! `&dyn Solver`s.
//!
//! ```sh
//! cargo run --release --example ensemble_vs_carving
//! ```

use dapc::prelude::*;

fn main() {
    println!(
        "{:<14} {:>4} {:>6} {:>9} {:>9} {:>11} {:>11}",
        "family", "OPT", "eps", "carving", "ensemble", "carve rnds", "ens rnds"
    );
    let eps = 0.3;
    let families: Vec<(&str, Graph)> = vec![
        ("cycle C36", gen::cycle(36)),
        ("grid 6×6", gen::grid(6, 6)),
        ("gnp(40,.08)", gen::gnp(40, 0.08, &mut gen::seeded_rng(1))),
        (
            "reg4 n=36",
            gen::random_regular(36, 4, &mut gen::seeded_rng(2)),
        ),
    ];
    let carving: &dyn Solver = &ThreePhase;
    let ensemble: &dyn Solver = &Ensemble;
    for (name, g) in &families {
        let ilp = problems::max_independent_set_unweighted(g);
        let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());
        let cfg = SolveConfig::new().eps(eps).seed(11).ensemble_runs(10);
        let carve = carving.solve(&ilp, &cfg, &mut cfg.rng());
        let ens = ensemble.solve(&ilp, &cfg, &mut cfg.rng());
        assert!(carve.feasible() && ens.feasible());
        println!(
            "{:<14} {:>4} {:>6.2} {:>9} {:>9} {:>11} {:>11}",
            name,
            opt,
            eps,
            carve.value,
            ens.value,
            carve.rounds(),
            ens.rounds()
        );
    }
    println!(
        "\nBoth meet (1 − ε); the ensemble's candidate spread shows the\n\
         averaging argument at work (per-run values on the last instance):"
    );
    let g = gen::gnp(40, 0.08, &mut gen::seeded_rng(1));
    let ilp = problems::max_independent_set_unweighted(&g);
    let cfg = SolveConfig::new().eps(eps).seed(99).ensemble_runs(10);
    let ens = ensemble.solve(&ilp, &cfg, &mut cfg.rng());
    if let BackendStats::Ensemble {
        candidate_values,
        reweighted_value,
        ..
    } = &ens.stats
    {
        println!(
            "candidates: {candidate_values:?} → best {} (re-weighted pass: {reweighted_value})",
            ens.value
        );
    }
}
