//! The two packing algorithms of §4 side by side: the cluster-driven
//! carving solver (the main Theorem 1.2 algorithm) and the §4.2
//! "alternative approach" ensemble (independent decompositions + best
//! candidate + re-weighted final run).
//!
//! ```sh
//! cargo run --release --example ensemble_vs_carving
//! ```

use dapc::core::ensemble::packing_ensemble;
use dapc::core::packing::approximate_packing;
use dapc::core::params::PcParams;
use dapc::graph::gen;
use dapc::ilp::{problems, verify, SolverBudget};

fn main() {
    println!(
        "{:<14} {:>4} {:>6} {:>9} {:>9} {:>11} {:>11}",
        "family", "OPT", "eps", "carving", "ensemble", "carve rnds", "ens rnds"
    );
    let eps = 0.3;
    let families: Vec<(&str, dapc::graph::Graph)> = vec![
        ("cycle C36", gen::cycle(36)),
        ("grid 6×6", gen::grid(6, 6)),
        ("gnp(40,.08)", gen::gnp(40, 0.08, &mut gen::seeded_rng(1))),
        ("reg4 n=36", gen::random_regular(36, 4, &mut gen::seeded_rng(2))),
    ];
    for (name, g) in &families {
        let ilp = problems::max_independent_set_unweighted(g);
        let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());
        let params = PcParams::packing_scaled(eps, g.n() as f64, 0.02, 0.3);
        let carve = approximate_packing(&ilp, &params, &mut gen::seeded_rng(11));
        let ens = packing_ensemble(&ilp, &params, Some(10), &mut gen::seeded_rng(11));
        assert!(ilp.is_feasible(&carve.assignment));
        assert!(ilp.is_feasible(&ens.assignment));
        println!(
            "{:<14} {:>4} {:>6.2} {:>9} {:>9} {:>11} {:>11}",
            name,
            opt,
            eps,
            carve.value,
            ens.value,
            carve.rounds(),
            ens.rounds()
        );
    }
    println!(
        "\nBoth meet (1 − ε); the ensemble's candidate spread shows the\n\
         averaging argument at work (per-run values on the last instance):"
    );
    let g = gen::gnp(40, 0.08, &mut gen::seeded_rng(1));
    let ilp = problems::max_independent_set_unweighted(&g);
    let params = PcParams::packing_scaled(eps, 40.0, 0.02, 0.3);
    let ens = packing_ensemble(&ilp, &params, Some(10), &mut gen::seeded_rng(99));
    println!(
        "candidates: {:?} → best {} (re-weighted pass: {})",
        ens.candidate_values, ens.value, ens.reweighted_value
    );
}
