//! Integration tests for the extension features: the §4.2 ensemble solver,
//! the weighted Theorem 1.1 decomposition, the §1.6 blackbox, the §3.2
//! diameter-improvement step, and solver-budget fault injection.

use dapc::core::covering::approximate_covering;
use dapc::core::ensemble::packing_ensemble;
use dapc::core::packing::approximate_packing;
use dapc::core::params::PcParams;
use dapc::decomp::blackbox::{blackbox_ldd, BlackboxParams};
use dapc::decomp::three_phase::{
    improve_diameter, three_phase_ldd, three_phase_ldd_weighted, LddParams,
};
use dapc::graph::gen;
use dapc::ilp::{problems, verify, SolverBudget};

#[test]
fn ensemble_and_carving_solvers_agree_on_guarantees() {
    let g = gen::gnp(32, 0.09, &mut gen::seeded_rng(50));
    let ilp = problems::max_independent_set_unweighted(&g);
    let eps = 0.3;
    let params = PcParams::packing_scaled(eps, 32.0, 0.02, 0.3);
    let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
    assert!(exact);
    for seed in 0..5 {
        let carving = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
        let ensemble = packing_ensemble(&ilp, &params, Some(8), &mut gen::seeded_rng(seed));
        for (tag, value) in [("carving", carving.value), ("ensemble", ensemble.value)] {
            assert!(
                value as f64 >= (1.0 - eps) * opt as f64,
                "{tag} seed {seed}: {value} < (1−ε)·{opt}"
            );
        }
    }
}

#[test]
fn weighted_ldd_protects_heavy_vertices_statistically() {
    // Uniform-weight deletion treats all vertices alike; the weighted
    // variant's budget is in mass, so heavy vertices must not be deleted
    // disproportionately often.
    let g = gen::gnp(400, 0.012, &mut gen::seeded_rng(51));
    let mut weights = vec![1u64; 400];
    for v in (0..400).step_by(40) {
        weights[v] = 200;
    }
    let total: u64 = weights.iter().sum();
    let eps = 0.25;
    let params = LddParams::scaled(eps, 400.0, 0.05);
    let mut worst_mass_fraction = 0.0f64;
    for seed in 0..10 {
        let out = three_phase_ldd_weighted(&g, &params, &weights, &mut gen::seeded_rng(seed), None);
        out.decomposition.validate(&g, None).unwrap();
        worst_mass_fraction = worst_mass_fraction.max(out.stats.deleted_mass as f64 / total as f64);
    }
    assert!(
        worst_mass_fraction <= eps,
        "weighted budget violated: {worst_mass_fraction}"
    );
}

#[test]
fn diameter_improvement_reaches_the_ideal_bound() {
    let g = gen::cycle(500);
    let eps = 0.2;
    let params = LddParams::scaled(eps, 500.0, 0.1);
    let mut rng = gen::seeded_rng(52);
    let out = three_phase_ldd(&g, &params, &mut rng, None);
    let improved = improve_diameter(&g, &out, &params, &mut rng);
    improved.validate(&g, None).unwrap();
    // The ideal bound of Theorem 1.1 after improvement: O(log ñ/ε); our
    // implementation's constant is 32 (Lemma C.1 at λ = ε/4).
    let bound = 32.0 * 500f64.ln() / eps;
    assert!(f64::from(improved.max_weak_diameter(&g)) <= bound);
}

#[test]
fn blackbox_and_three_phase_quality_parity() {
    let g = gen::gnp(300, 0.015, &mut gen::seeded_rng(53));
    let eps = 0.3;
    let mut worst_bb = 0.0f64;
    let mut worst_tp = 0.0f64;
    for seed in 0..10 {
        let bb = blackbox_ldd(
            &g,
            &BlackboxParams::new(eps, 300.0, 0.02),
            &mut gen::seeded_rng(seed),
        );
        bb.validate(&g, None).unwrap();
        worst_bb = worst_bb.max(bb.deleted_fraction());
        let tp = three_phase_ldd(
            &g,
            &LddParams::scaled(eps, 300.0, 0.05),
            &mut gen::seeded_rng(seed),
            None,
        );
        worst_tp = worst_tp.max(tp.decomposition.deleted_fraction());
    }
    assert!(worst_bb <= eps, "blackbox budget: {worst_bb}");
    assert!(worst_tp <= eps, "three-phase budget: {worst_tp}");
}

#[test]
fn zero_solver_budget_still_yields_feasible_output() {
    // Fault injection: every exact local solve exhausts instantly, so the
    // solvers run on greedy incumbents. Feasibility must survive (the
    // approximation guarantee may not — and the run must say so).
    let g = gen::gnp(28, 0.1, &mut gen::seeded_rng(54));
    let mis = problems::max_independent_set_unweighted(&g);
    let mut params = PcParams::packing_scaled(0.3, 28.0, 0.02, 0.3);
    params.budget = SolverBudget {
        node_limit: 0,
        ..Default::default()
    };
    let out = approximate_packing(&mis, &params, &mut gen::seeded_rng(1));
    assert!(mis.is_feasible(&out.assignment));
    assert!(!out.stats.all_solves_exact, "must report inexactness");

    let vc = problems::min_vertex_cover_unweighted(&g);
    let mut params = PcParams::covering_scaled(0.3, 28.0, 0.02, 0.3, 1.0);
    params.budget = SolverBudget {
        node_limit: 0,
        ..Default::default()
    };
    let out = approximate_covering(&vc, &params, &mut gen::seeded_rng(2));
    assert!(vc.is_feasible(&out.assignment));
    assert!(!out.stats.all_solves_exact, "must report inexactness");
}

#[test]
fn paper_constants_parametrisation_is_usable_on_tiny_graphs() {
    // SolveConfig::paper() produces the printed constants; on a tiny graph
    // the radii dwarf the diameter, every cluster is the whole component,
    // and the answer is exactly optimal.
    use dapc::prelude::*;
    let g = gen::cycle(12);
    let r = GraphProblem::max_independent_set(&g)
        .config(SolveConfig::new().eps(0.3).seed(55).paper())
        .solve_with(&ThreePhase);
    assert_eq!(
        r.weight, 6,
        "paper constants on C12 must be exactly optimal"
    );
    // And the round bill reflects the paper's enormous constants.
    assert!(
        r.rounds() > 100_000,
        "paper-constant rounds should be huge: {}",
        r.rounds()
    );
}
