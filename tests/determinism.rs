//! Determinism suite: two runs with the same `SolveConfig` seed must
//! produce byte-identical `SolveReport`s across all backends.

use dapc::prelude::*;

fn corpus() -> Vec<IlpInstance> {
    vec![
        problems::max_independent_set_unweighted(&gen::gnp(26, 0.1, &mut gen::seeded_rng(1))),
        problems::min_dominating_set_unweighted(&gen::grid(4, 5)),
    ]
}

#[test]
fn same_seed_same_report_for_every_backend() {
    for ilp in &corpus() {
        for backend in engine::BACKENDS {
            let cfg = SolveConfig::new().eps(0.3).seed(1234).ensemble_runs(5);
            let a = engine::solve(backend, ilp, &cfg).unwrap();
            let b = engine::solve(backend, ilp, &cfg).unwrap();
            assert_eq!(a, b, "{backend}: reports differ across identical seeds");
            // Byte-identical in the strictest sense: the full debug
            // serialisation (assignment, ledger phases, stats, verdict)
            // matches too.
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{backend}: debug drift");
        }
    }
}

#[test]
fn builder_solves_are_reproducible() {
    let g = gen::gnp(30, 0.09, &mut gen::seeded_rng(2));
    let run = || {
        GraphProblem::max_independent_set(&g)
            .eps(0.3)
            .seed(77)
            .solve_with(&ThreePhase)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report, b.report);
    assert_eq!(a.vertices, b.vertices);
    assert_eq!(a.weight, b.weight);
}

#[test]
fn different_seeds_are_actually_used() {
    // Not a guarantee for every instance, but on a random graph the
    // randomised backends should not collapse to one trajectory: at least
    // one of several seeds must change the three-phase report.
    let ilp =
        problems::max_independent_set_unweighted(&gen::gnp(40, 0.08, &mut gen::seeded_rng(3)));
    let base = engine::solve("three-phase", &ilp, &SolveConfig::new().seed(0)).unwrap();
    let any_differs = (1u64..6)
        .any(|s| engine::solve("three-phase", &ilp, &SolveConfig::new().seed(s)).unwrap() != base);
    assert!(any_differs, "five different seeds produced identical runs");
}
