//! Cross-crate integration: graph generators → ILP modelling → the
//! unified solver engine → verification, end to end, all through
//! `dapc::prelude`.

use dapc::prelude::*;

#[test]
fn full_stack_mis_on_every_family() {
    let eps = 0.3;
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(30)),
        ("grid", gen::grid(5, 6)),
        ("gnp", gen::gnp(32, 0.09, &mut gen::seeded_rng(1))),
        ("tree", gen::random_tree(30, &mut gen::seeded_rng(2))),
        (
            "regular",
            gen::random_regular(30, 3, &mut gen::seeded_rng(3)),
        ),
        ("star", gen::star(25)),
    ];
    for (name, g) in families {
        let r = GraphProblem::max_independent_set(&g)
            .eps(eps)
            .seed(77)
            .solve_with(&ThreePhase);
        let ilp = problems::max_independent_set_unweighted(&g);
        let v = verify::verdict(&ilp, &r.report.assignment, &SolverBudget::default());
        assert!(v.feasible, "{name}: infeasible");
        assert!(
            v.within_packing(eps),
            "{name}: ratio {} misses 1 − ε",
            v.ratio
        );
    }
}

#[test]
fn full_stack_covering_on_every_family() {
    let eps = 0.4;
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(27)),
        ("grid", gen::grid(4, 6)),
        ("gnp", gen::gnp(28, 0.1, &mut gen::seeded_rng(4))),
        ("tree", gen::random_tree(26, &mut gen::seeded_rng(5))),
    ];
    for (name, g) in families {
        let vc = GraphProblem::min_vertex_cover(&g)
            .eps(eps)
            .seed(8)
            .solve_with(&ThreePhase);
        let vc_ilp = problems::min_vertex_cover_unweighted(&g);
        let v = verify::verdict(&vc_ilp, &vc.report.assignment, &SolverBudget::default());
        assert!(
            v.feasible && v.within_covering(eps),
            "{name}: VC ratio {}",
            v.ratio
        );

        let ds = GraphProblem::min_dominating_set(&g)
            .eps(eps)
            .seed(9)
            .solve_with(&ThreePhase);
        let ds_ilp = problems::min_dominating_set_unweighted(&g);
        let v = verify::verdict(&ds_ilp, &ds.report.assignment, &SolverBudget::default());
        assert!(
            v.feasible && v.within_covering(eps),
            "{name}: DS ratio {}",
            v.ratio
        );
    }
}

#[test]
fn matching_against_blossom_optimum() {
    use dapc::ilp::solvers::blossom;
    let g = gen::random_regular(28, 3, &mut gen::seeded_rng(6));
    let r = GraphProblem::max_matching(&g)
        .eps(0.3)
        .seed(10)
        .solve_with(&ThreePhase);
    let opt = blossom::max_matching(&g).size();
    assert!(
        r.edges.len() as f64 >= 0.7 * opt as f64,
        "matching {} vs blossom OPT {opt}",
        r.edges.len()
    );
    let mut used = vec![false; g.n()];
    for &(u, v) in &r.edges {
        assert!(g.has_edge(u, v));
        assert!(!used[u as usize] && !used[v as usize]);
        used[u as usize] = true;
        used[v as usize] = true;
    }
}

#[test]
fn k_distance_dominating_set_hypergraph_path() {
    // The Definition 1.3 running example end to end, k = 2 on a cycle:
    // exact optimum is ⌈n/5⌉.
    let g = gen::cycle(25);
    let r = GraphProblem::k_dominating_set(&g, 2)
        .eps(0.4)
        .seed(11)
        .solve_with(&ThreePhase);
    let ilp = problems::k_dominating_set(&g, 2, vec![1; 25]);
    let v = verify::verdict(&ilp, &r.report.assignment, &SolverBudget::default());
    assert_eq!(v.opt, 5);
    assert!(v.feasible && v.within_covering(0.4), "ratio {}", v.ratio);
}

#[test]
fn ours_and_gkm_agree_on_guarantees_but_not_rounds() {
    let g = gen::cycle(36);
    let eps = 0.3;
    let ilp = problems::max_independent_set_unweighted(&g);
    let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());

    let ours = GraphProblem::max_independent_set(&g)
        .eps(eps)
        .seed(12)
        .solve_with(&ThreePhase);
    let gkm = GraphProblem::max_independent_set(&g)
        .eps(eps)
        .seed(13)
        .solve_with(&Gkm);

    assert!(ours.weight as f64 >= (1.0 - eps) * opt as f64);
    assert!(gkm.weight as f64 >= (1.0 - eps) * opt as f64);
    // Both charge nontrivial LOCAL rounds; E6 measures the scaling gap.
    assert!(ours.rounds() > 0 && gkm.rounds() > 0);
}

#[test]
fn weighted_problems_preserve_weight_semantics() {
    let g = gen::gnp(24, 0.12, &mut gen::seeded_rng(14));
    let w: Vec<u64> = (0..24).map(|i| 1 + (i as u64 % 7)).collect();
    let mis = GraphProblem::max_independent_set(&g)
        .weights(&w)
        .eps(0.3)
        .seed(15)
        .solve_with(&ThreePhase);
    assert_eq!(
        mis.weight,
        mis.vertices.iter().map(|&v| w[v as usize]).sum::<u64>()
    );
    let vc = GraphProblem::min_vertex_cover(&g)
        .weights(&w)
        .eps(0.3)
        .seed(16)
        .solve_with(&ThreePhase);
    let ilp = problems::min_vertex_cover(&g, w.clone());
    let v = verify::verdict(&ilp, &vc.report.assignment, &SolverBudget::default());
    assert!(v.feasible && v.within_covering(0.3), "ratio {}", v.ratio);
}

#[test]
fn disconnected_graphs_are_handled() {
    // Two components: a cycle and a path, with an isolated vertex.
    let mut b = GraphBuilder::new(16);
    for i in 0..6u32 {
        b.add_edge(i, (i + 1) % 6);
    }
    for i in 7..14u32 {
        b.add_edge(i, i + 1);
    }
    let g = b.build();
    let mis = GraphProblem::max_independent_set(&g)
        .eps(0.3)
        .seed(17)
        .solve_with(&ThreePhase);
    let ilp = problems::max_independent_set_unweighted(&g);
    let v = verify::verdict(&ilp, &mis.report.assignment, &SolverBudget::default());
    assert!(v.feasible && v.within_packing(0.3), "ratio {}", v.ratio);
    // The isolated vertices 6 and 15 must be picked (they are free).
    assert!(mis.vertices.contains(&6));
    assert!(mis.vertices.contains(&15));
}

#[test]
fn registry_and_builder_agree() {
    // The GraphProblem builder and the string-keyed registry must produce
    // identical reports for identical configs.
    let g = gen::cycle(20);
    let cfg = SolveConfig::new().eps(0.3).seed(21);
    let via_builder = GraphProblem::min_vertex_cover(&g)
        .config(cfg.clone())
        .solve_with(&ThreePhase);
    let ilp = problems::min_vertex_cover_unweighted(&g);
    let via_registry = engine::solve("three-phase", &ilp, &cfg).unwrap();
    assert_eq!(via_builder.report, via_registry);
}
