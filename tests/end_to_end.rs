//! Cross-crate integration: graph generators → ILP modelling → distributed
//! solvers → verification, end to end.

use dapc::core::adapters::{
    approx_k_dominating_set, approx_max_independent_set, approx_max_matching,
    approx_min_dominating_set, approx_min_vertex_cover, ScaleKnobs,
};
use dapc::core::gkm::{gkm_solve, GkmParams};
use dapc::graph::gen;
use dapc::ilp::solvers::blossom;
use dapc::ilp::{problems, verify, SolverBudget};

fn mask(n: usize, vs: &[u32]) -> Vec<bool> {
    let mut m = vec![false; n];
    for &v in vs {
        m[v as usize] = true;
    }
    m
}

#[test]
fn full_stack_mis_on_every_family() {
    let knobs = ScaleKnobs::default();
    let eps = 0.3;
    let families: Vec<(&str, dapc::graph::Graph)> = vec![
        ("cycle", gen::cycle(30)),
        ("grid", gen::grid(5, 6)),
        ("gnp", gen::gnp(32, 0.09, &mut gen::seeded_rng(1))),
        ("tree", gen::random_tree(30, &mut gen::seeded_rng(2))),
        ("regular", gen::random_regular(30, 3, &mut gen::seeded_rng(3))),
        ("star", gen::star(25)),
    ];
    for (name, g) in families {
        let r = approx_max_independent_set(
            &g,
            &vec![1; g.n()],
            eps,
            &knobs,
            &mut gen::seeded_rng(77),
        );
        let ilp = problems::max_independent_set_unweighted(&g);
        let v = verify::verdict(&ilp, &mask(g.n(), &r.vertices), &SolverBudget::default());
        assert!(v.feasible, "{name}: infeasible");
        assert!(
            v.within_packing(eps),
            "{name}: ratio {} misses 1 − ε",
            v.ratio
        );
    }
}

#[test]
fn full_stack_covering_on_every_family() {
    let knobs = ScaleKnobs::default();
    let eps = 0.4;
    let families: Vec<(&str, dapc::graph::Graph)> = vec![
        ("cycle", gen::cycle(27)),
        ("grid", gen::grid(4, 6)),
        ("gnp", gen::gnp(28, 0.1, &mut gen::seeded_rng(4))),
        ("tree", gen::random_tree(26, &mut gen::seeded_rng(5))),
    ];
    for (name, g) in families {
        let vc = approx_min_vertex_cover(&g, &vec![1; g.n()], eps, &knobs, &mut gen::seeded_rng(8));
        let vc_ilp = problems::min_vertex_cover_unweighted(&g);
        let v = verify::verdict(&vc_ilp, &mask(g.n(), &vc.vertices), &SolverBudget::default());
        assert!(v.feasible && v.within_covering(eps), "{name}: VC ratio {}", v.ratio);

        let ds = approx_min_dominating_set(&g, &vec![1; g.n()], eps, &knobs, &mut gen::seeded_rng(9));
        let ds_ilp = problems::min_dominating_set_unweighted(&g);
        let v = verify::verdict(&ds_ilp, &mask(g.n(), &ds.vertices), &SolverBudget::default());
        assert!(v.feasible && v.within_covering(eps), "{name}: DS ratio {}", v.ratio);
    }
}

#[test]
fn matching_against_blossom_optimum() {
    let g = gen::random_regular(28, 3, &mut gen::seeded_rng(6));
    let r = approx_max_matching(&g, 0.3, &ScaleKnobs::default(), &mut gen::seeded_rng(10));
    let opt = blossom::max_matching(&g).size();
    assert!(
        r.edges.len() as f64 >= 0.7 * opt as f64,
        "matching {} vs blossom OPT {opt}",
        r.edges.len()
    );
    let mut used = vec![false; g.n()];
    for &(u, v) in &r.edges {
        assert!(g.has_edge(u, v));
        assert!(!used[u as usize] && !used[v as usize]);
        used[u as usize] = true;
        used[v as usize] = true;
    }
}

#[test]
fn k_distance_dominating_set_hypergraph_path() {
    // The Definition 1.3 running example end to end, k = 2 on a cycle:
    // exact optimum is ⌈n/5⌉.
    let g = gen::cycle(25);
    let r = approx_k_dominating_set(
        &g,
        2,
        &vec![1; 25],
        0.4,
        &ScaleKnobs::default(),
        &mut gen::seeded_rng(11),
    );
    let ilp = problems::k_dominating_set(&g, 2, vec![1; 25]);
    let v = verify::verdict(&ilp, &mask(25, &r.vertices), &SolverBudget::default());
    assert_eq!(v.opt, 5);
    assert!(v.feasible && v.within_covering(0.4), "ratio {}", v.ratio);
}

#[test]
fn ours_and_gkm_agree_on_guarantees_but_not_rounds() {
    let g = gen::cycle(36);
    let eps = 0.3;
    let ilp = problems::max_independent_set_unweighted(&g);
    let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());

    let ours = approx_max_independent_set(
        &g,
        &vec![1; 36],
        eps,
        &ScaleKnobs::default(),
        &mut gen::seeded_rng(12),
    );
    let gkm = gkm_solve(&ilp, &GkmParams::new(eps, 36.0, 0.2), &mut gen::seeded_rng(13));

    assert!(ours.weight as f64 >= (1.0 - eps) * opt as f64);
    assert!(gkm.value as f64 >= (1.0 - eps) * opt as f64);
    // Both charge nontrivial LOCAL rounds; E6 measures the scaling gap.
    assert!(ours.rounds > 0 && gkm.rounds() > 0);
}

#[test]
fn weighted_problems_preserve_weight_semantics() {
    let g = gen::gnp(24, 0.12, &mut gen::seeded_rng(14));
    let w: Vec<u64> = (0..24).map(|i| 1 + (i as u64 % 7)).collect();
    let knobs = ScaleKnobs::default();
    let mis = approx_max_independent_set(&g, &w, 0.3, &knobs, &mut gen::seeded_rng(15));
    assert_eq!(
        mis.weight,
        mis.vertices.iter().map(|&v| w[v as usize]).sum::<u64>()
    );
    let vc = approx_min_vertex_cover(&g, &w, 0.3, &knobs, &mut gen::seeded_rng(16));
    let ilp = problems::min_vertex_cover(&g, w.clone());
    let v = verify::verdict(&ilp, &mask(24, &vc.vertices), &SolverBudget::default());
    assert!(v.feasible && v.within_covering(0.3), "ratio {}", v.ratio);
}

#[test]
fn disconnected_graphs_are_handled() {
    // Two components: a cycle and a path, with an isolated vertex.
    let mut b = dapc::graph::GraphBuilder::new(16);
    for i in 0..6u32 {
        b.add_edge(i, (i + 1) % 6);
    }
    for i in 7..14u32 {
        b.add_edge(i, i + 1);
    }
    let g = b.build();
    let knobs = ScaleKnobs::default();
    let mis = approx_max_independent_set(&g, &vec![1; 16], 0.3, &knobs, &mut gen::seeded_rng(17));
    let ilp = problems::max_independent_set_unweighted(&g);
    let v = verify::verdict(&ilp, &mask(16, &mis.vertices), &SolverBudget::default());
    assert!(v.feasible && v.within_packing(0.3), "ratio {}", v.ratio);
    // The isolated vertices 6 and 15 must be picked (they are free).
    assert!(mis.vertices.contains(&6));
    assert!(mis.vertices.contains(&15));
}
