//! Statistical reproduction of the headline theorem guarantees across many
//! seeds — the "whp" claims at integration-test scale.

use dapc::core::covering::approximate_covering;
use dapc::core::packing::approximate_packing;
use dapc::core::params::PcParams;
use dapc::decomp::three_phase::{three_phase_ldd, LddParams};
use dapc::graph::gen;
use dapc::ilp::{problems, verify, SolverBudget};
use dapc::local::RoundCost;

/// Theorem 1.1 at scale: the ε budget holds for every seed (50 trials),
/// and the diameter bound of Lemma 3.2 is never violated.
#[test]
fn theorem_1_1_holds_across_seeds() {
    let g = gen::gnp(300, 0.013, &mut gen::seeded_rng(100));
    let eps = 0.3;
    let params = LddParams::scaled(eps, g.n() as f64, 0.05);
    let bound = params.diameter_bound() as u32;
    for seed in 0..50 {
        let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), None);
        let d = &out.decomposition;
        d.validate(&g, None).unwrap();
        assert!(
            d.deleted_fraction() <= eps,
            "seed {seed}: deleted {:.3} > ε",
            d.deleted_fraction()
        );
        assert!(d.max_weak_diameter(&g) <= bound, "seed {seed}: diameter");
    }
}

/// Theorem 1.2 at scale: (1 − ε) holds for every seed (25 trials each on
/// two instances).
#[test]
fn theorem_1_2_holds_across_seeds() {
    let eps = 0.3;
    let budget = SolverBudget::default();
    for (tag, g) in [
        ("cycle", gen::cycle(30)),
        ("gnp", gen::gnp(30, 0.09, &mut gen::seeded_rng(101))),
    ] {
        let ilp = problems::max_independent_set_unweighted(&g);
        let (opt, exact) = verify::optimum(&ilp, &budget);
        assert!(exact);
        let params = PcParams::packing_scaled(eps, g.n() as f64, 0.02, 0.3);
        for seed in 0..25 {
            let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
            assert!(ilp.is_feasible(&out.assignment), "{tag} seed {seed}");
            assert!(
                out.value as f64 >= (1.0 - eps) * opt as f64,
                "{tag} seed {seed}: {} < (1 − ε)·{opt}",
                out.value
            );
        }
    }
}

/// Theorem 1.3 at scale: (1 + ε) holds for every seed.
#[test]
fn theorem_1_3_holds_across_seeds() {
    let eps = 0.4;
    let budget = SolverBudget::default();
    for (tag, g) in [("cycle", gen::cycle(27)), ("grid", gen::grid(4, 6))] {
        let ilp = problems::min_dominating_set_unweighted(&g);
        let (opt, exact) = verify::optimum(&ilp, &budget);
        assert!(exact);
        let params = PcParams::covering_scaled(eps, g.n() as f64, 0.02, 0.3, 1.0);
        for seed in 0..25 {
            let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
            assert!(ilp.is_feasible(&out.assignment), "{tag} seed {seed}");
            assert!(
                out.value as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                "{tag} seed {seed}: {} > (1 + ε)·{opt}",
                out.value
            );
        }
    }
}

/// The round-complexity ordering of the paper: at fixed ε, our packing
/// solver's charged rounds grow like Õ(log n) while GKM17's grow like
/// O(log³ n) — so the ratio GKM/ours must increase with n.
#[test]
fn round_scaling_ours_vs_gkm() {
    use dapc::core::gkm::{gkm_solve, GkmParams};
    let eps = 0.3;
    let mut ratios = Vec::new();
    for n in [16usize, 64, 256] {
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        let ours = approximate_packing(
            &ilp,
            &PcParams::packing_scaled(eps, n as f64, 0.02, 0.3),
            &mut gen::seeded_rng(5),
        );
        let gkm = gkm_solve(
            &ilp,
            &GkmParams::new(eps, n as f64, 0.2),
            &mut gen::seeded_rng(5),
        );
        ratios.push(gkm.rounds() as f64 / ours.rounds() as f64);
    }
    assert!(
        ratios.windows(2).all(|w| w[1] > w[0] * 0.95),
        "GKM/ours round ratio should grow with n: {ratios:?}"
    );
    assert!(
        ratios.last().unwrap() > ratios.first().unwrap(),
        "no growth: {ratios:?}"
    );
}

/// Packing Phase 2 ablation hook: with identical seeds, the packing solver
/// still meets its guarantee when Phase 2's extra ln(20/ε) boost never
/// fires (tiny prep), because Phase 3 cleans up — the guarantee is
/// end-to-end, not per-phase.
#[test]
fn packing_guarantee_is_end_to_end() {
    let g = gen::cycle(24);
    let ilp = problems::max_independent_set_unweighted(&g);
    let mut params = PcParams::packing_scaled(0.3, 24.0, 0.02, 0.1);
    params.prep_count = 1; // starve the preparation
    let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(3));
    assert!(ilp.is_feasible(&out.assignment));
    assert!(out.value >= 8, "value {}", out.value); // (1−0.3)·12 = 8.4 → ≥ 8 given integrality slack on C24
}
