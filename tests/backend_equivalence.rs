//! Backend-equivalence suite: every registered backend must return a
//! `SolveReport` whose assignment passes `dapc_ilp::verify` on a shared
//! corpus of packing and covering instances, and whose reported rounds
//! match the legacy per-solver accessors it wraps.

use dapc::core::covering::approximate_covering;
use dapc::core::ensemble::packing_ensemble;
use dapc::core::gkm::gkm_solve;
use dapc::core::packing::approximate_packing;
use dapc::prelude::*;

/// The shared corpus: a mix of graph-derived and general instances of
/// both senses.
fn corpus() -> Vec<(&'static str, IlpInstance)> {
    vec![
        (
            "mis/cycle24",
            problems::max_independent_set_unweighted(&gen::cycle(24)),
        ),
        (
            "mis/gnp28",
            problems::max_independent_set_unweighted(&gen::gnp(28, 0.1, &mut gen::seeded_rng(1))),
        ),
        (
            "matching/grid",
            problems::max_matching(&gen::grid(4, 4)).ilp,
        ),
        (
            "pack/random",
            problems::random_packing(22, 16, 3, &mut gen::seeded_rng(2)),
        ),
        (
            "vc/cycle21",
            problems::min_vertex_cover_unweighted(&gen::cycle(21)),
        ),
        (
            "ds/grid4x5",
            problems::min_dominating_set_unweighted(&gen::grid(4, 5)),
        ),
        (
            "cover/random",
            problems::random_covering(18, 14, 3, &mut gen::seeded_rng(3)),
        ),
    ]
}

#[test]
fn every_backend_is_feasible_on_the_whole_corpus() {
    let cfg = SolveConfig::new().eps(0.3).seed(9).ensemble_runs(6);
    for (name, ilp) in &corpus() {
        for backend in engine::BACKENDS {
            let r = engine::solve(backend, ilp, &cfg)
                .unwrap_or_else(|| panic!("backend {backend} missing"));
            // The report's built-in verdict and an independent re-check
            // must both pass.
            assert!(
                r.feasible(),
                "{backend} on {name}: report claims infeasible"
            );
            let independent = verify::check(ilp, &r.assignment);
            assert!(
                independent.feasible,
                "{backend} on {name}: verify::check fails"
            );
            assert_eq!(
                r.value, independent.value,
                "{backend} on {name}: value drift"
            );
            assert_eq!(r.sense, ilp.sense(), "{backend} on {name}: sense mismatch");
            assert!(r.rounds() > 0, "{backend} on {name}: zero-round claim");
        }
    }
}

#[test]
fn three_phase_rounds_match_legacy_packing_accessor() {
    let ilp = problems::max_independent_set_unweighted(&gen::cycle(30));
    let cfg = SolveConfig::new().eps(0.3).seed(4);
    let report = engine::solve("three-phase", &ilp, &cfg).unwrap();
    let legacy = approximate_packing(&ilp, &cfg.packing_params(ilp.n()), &mut cfg.rng());
    assert_eq!(report.rounds(), legacy.ledger.total_rounds());
    assert_eq!(report.assignment, legacy.assignment);
    assert_eq!(report.value, legacy.value);
}

#[test]
fn three_phase_rounds_match_legacy_covering_accessor() {
    let ilp = problems::min_vertex_cover_unweighted(&gen::cycle(30));
    let cfg = SolveConfig::new().eps(0.3).seed(5);
    let report = engine::solve("three-phase", &ilp, &cfg).unwrap();
    let legacy = approximate_covering(&ilp, &cfg.covering_params(ilp.n()), &mut cfg.rng());
    assert_eq!(report.rounds(), legacy.ledger.total_rounds());
    assert_eq!(report.assignment, legacy.assignment);
}

#[test]
fn gkm_rounds_match_legacy_accessor() {
    let ilp = problems::max_independent_set_unweighted(&gen::cycle(24));
    let cfg = SolveConfig::new().eps(0.3).seed(6);
    let report = engine::solve("gkm", &ilp, &cfg).unwrap();
    let legacy = gkm_solve(&ilp, &cfg.gkm_params(ilp.n()), &mut cfg.rng());
    assert_eq!(report.rounds(), legacy.ledger.total_rounds());
    assert_eq!(report.assignment, legacy.assignment);
}

#[test]
fn ensemble_rounds_match_legacy_accessor() {
    let ilp = problems::max_independent_set_unweighted(&gen::cycle(24));
    let cfg = SolveConfig::new().eps(0.3).seed(7).ensemble_runs(6);
    let report = engine::solve("ensemble", &ilp, &cfg).unwrap();
    let legacy = packing_ensemble(
        &ilp,
        &cfg.packing_params(ilp.n()),
        cfg.ensemble_runs,
        &mut cfg.rng(),
    );
    assert_eq!(report.rounds(), legacy.ledger.total_rounds());
    assert_eq!(report.value, legacy.value);
}

#[test]
fn distributed_backends_meet_their_guarantees_on_graph_instances() {
    // Quality spot-check through the engine: the three distributed
    // backends keep the (1 ± ε) guarantees the legacy call paths had.
    let eps = 0.3;
    let mis = problems::max_independent_set_unweighted(&gen::cycle(30));
    let (opt_mis, _) = verify::optimum(&mis, &SolverBudget::default());
    let vc = problems::min_vertex_cover_unweighted(&gen::cycle(30));
    let (opt_vc, _) = verify::optimum(&vc, &SolverBudget::default());
    let cfg = SolveConfig::new().eps(eps).seed(8).ensemble_runs(8);
    for backend in ["three-phase", "gkm", "ensemble"] {
        let r = engine::solve(backend, &mis, &cfg).unwrap();
        assert!(
            r.value as f64 >= (1.0 - eps) * opt_mis as f64,
            "{backend}: packing {} vs OPT {opt_mis}",
            r.value
        );
        let r = engine::solve(backend, &vc, &cfg).unwrap();
        assert!(
            r.value as f64 <= (1.0 + eps) * opt_vc as f64 + 1e-9,
            "{backend}: covering {} vs OPT {opt_vc}",
            r.value
        );
    }
}
