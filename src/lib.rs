//! # dapc — Distributed Approximation of Packing & Covering ILPs
//!
//! A full reproduction of **Chang & Li, “The Complexity of Distributed
//! Approximation of Packing and Covering Integer Linear Programs”
//! (PODC 2023)** as a Rust workspace: the three-phase low-diameter
//! decomposition of Theorem 1.1, the `(1 − ε)`-packing and
//! `(1 + ε)`-covering solvers of Theorems 1.2–1.3, the classical
//! decompositions and the GKM17 baseline they improve on, the Appendix B
//! lower-bound machinery (including LPS Ramanujan graphs), and the
//! Appendix C counterexample families — all implemented from scratch.
//!
//! This crate is the facade: it re-exports the workspace members and hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).
//!
//! ## Quickstart
//!
//! ```
//! use dapc::core::adapters::{approx_max_independent_set, ScaleKnobs};
//! use dapc::graph::gen;
//!
//! let g = gen::gnp(40, 0.08, &mut gen::seeded_rng(7));
//! let result = approx_max_independent_set(
//!     &g, &vec![1; 40], 0.3, &ScaleKnobs::default(), &mut gen::seeded_rng(1));
//! // A (1 − ε)-approximate independent set plus its LOCAL round cost.
//! assert!(!result.vertices.is_empty());
//! assert!(result.rounds > 0);
//! ```
//!
//! ## Layout
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | CSR graphs, generators, LPS Ramanujan graphs, hypergraphs |
//! | [`conc`] | samplers + Appendix A concentration bounds |
//! | [`local`] | LOCAL model simulator (message passing + charged rounds) |
//! | [`ilp`] | packing/covering instances, restrictions, exact solvers |
//! | [`decomp`] | Theorem 1.1 LDD, Elkin–Neiman, MPX, sparse covers, … |
//! | [`core`] | Theorems 1.2–1.3 solvers, GKM17 baseline, adapters |
//! | [`lower`] | Appendix B lower-bound machinery |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dapc_conc as conc;
pub use dapc_core as core;
pub use dapc_decomp as decomp;
pub use dapc_graph as graph;
pub use dapc_ilp as ilp;
pub use dapc_local as local;
pub use dapc_lower as lower;
