//! # dapc — Distributed Approximation of Packing & Covering ILPs
//!
//! A full reproduction of **Chang & Li, “The Complexity of Distributed
//! Approximation of Packing and Covering Integer Linear Programs”
//! (PODC 2023)** as a Rust workspace: the three-phase low-diameter
//! decomposition of Theorem 1.1, the `(1 − ε)`-packing and
//! `(1 + ε)`-covering solvers of Theorems 1.2–1.3, the classical
//! decompositions and the GKM17 baseline they improve on, the Appendix B
//! lower-bound machinery (including LPS Ramanujan graphs), and the
//! Appendix C counterexample families — all implemented from scratch.
//!
//! This crate is the facade: it re-exports the workspace members, hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`), and provides the [`prelude`] for the unified solver
//! engine.
//!
//! ## Quickstart
//!
//! Every backend is a [`prelude::Solver`]; graph problems are built with
//! [`prelude::GraphProblem`] and run against any of them:
//!
//! ```
//! use dapc::prelude::*;
//!
//! let g = gen::gnp(40, 0.08, &mut gen::seeded_rng(7));
//! let r = GraphProblem::max_independent_set(&g)
//!     .eps(0.3)
//!     .seed(1)
//!     .solve_with(&ThreePhase);
//! // A (1 − ε)-approximate independent set plus its LOCAL round cost.
//! assert!(!r.vertices.is_empty());
//! assert!(r.report.feasible());
//! assert!(r.rounds() > 0);
//! ```
//!
//! Raw ILP instances go through the engine directly, by value or through
//! the string-keyed registry:
//!
//! ```
//! use dapc::prelude::*;
//!
//! let ilp = problems::min_vertex_cover_unweighted(&gen::cycle(18));
//! let cfg = SolveConfig::new().eps(0.4).seed(3);
//! for name in engine::BACKENDS {
//!     let report = engine::solve(name, &ilp, &cfg).unwrap();
//!     assert!(report.feasible(), "{name} must return a feasible cover");
//! }
//! ```
//!
//! ## Configuration
//!
//! [`prelude::SolveConfig`] absorbs every knob the solvers take: `ε`, the
//! RNG seed, the size hint `ñ`, the exact-solver budget and the scaling
//! knobs for the paper's leading constants. The default
//! [`prelude::ScaleKnobs`] are the laptop-scale constants
//! (`r_scale = 0.02`, `prep_scale = 0.3`, `covering_t_slack = 1`) used by
//! every example and test; `SolveConfig::new().paper()` switches to the
//! constants printed in the paper (`200`, `16`, `+8`) — correct but with
//! radii that dwarf any simulable diameter, so every cluster becomes the
//! whole graph and the round bill is astronomically honest.
//!
//! ## Layout
//!
//! | Module | Contents |
//! |---|---|
//! | [`graph`] | CSR graphs, generators, LPS Ramanujan graphs, hypergraphs |
//! | [`conc`] | samplers + Appendix A concentration bounds |
//! | [`local`] | LOCAL model simulator (message passing + charged rounds) |
//! | [`ilp`] | packing/covering instances, restrictions, exact solvers |
//! | [`decomp`] | Theorem 1.1 LDD, Elkin–Neiman, MPX, sparse covers, … |
//! | [`core`] | the solver engine, Theorems 1.2–1.3, GKM17, adapters |
//! | [`lower`] | Appendix B lower-bound machinery |
//! | [`serve`] | fault-tolerant sweep orchestration + the solve daemon |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dapc_conc as conc;
pub use dapc_core as core;
pub use dapc_decomp as decomp;
pub use dapc_exec as exec;
pub use dapc_graph as graph;
pub use dapc_ilp as ilp;
pub use dapc_local as local;
pub use dapc_lower as lower;
pub use dapc_runtime as runtime;
pub use dapc_serve as serve;

/// One-stop imports for the unified solver engine and the batch runtime.
///
/// A single solve goes through the string-keyed registry:
///
/// ```
/// use dapc::prelude::*;
///
/// let report = engine::solve(
///     "bnb",
///     &problems::max_independent_set_unweighted(&gen::cycle(10)),
///     &SolveConfig::new(),
/// )
/// .unwrap();
/// assert_eq!(report.value, 5);
/// ```
///
/// Sweeps go through `dapc-runtime`: build a [`prelude::Corpus`] of
/// `(instance × backend × ε × seed)` jobs and fan it out with
/// [`prelude::solve_many`] — or stream arbitrarily large corpora through
/// [`prelude::solve_many_streaming`]'s `on_result` hook without holding
/// the result vector, or split them across cooperating processes with
/// [`prelude::solve_shard`] and merge the compact [`prelude::ShardReport`]
/// snapshots back into the identical aggregation. Across-job and
/// intra-prep parallelism share one process-wide executor ([`exec`]);
/// results are byte-identical to sequential execution at any worker
/// count — and to any shard split — and seeds of one instance family
/// share their preparation work through the prep cache:
///
/// ```
/// use dapc::prelude::*;
///
/// let corpus = Corpus::builder()
///     .instance(
///         "MIS/cycle20",
///         problems::max_independent_set_unweighted(&gen::cycle(20)),
///     )
///     .backend("three-phase")
///     .backend("bnb")
///     .eps(0.3)
///     .seeds(0..4)
///     .build();
/// let report = solve_many(&corpus, &RuntimeConfig::new().jobs(4));
/// assert_eq!(report.results.len(), 1 * 2 * 1 * 4);
/// assert!(report.results.iter().all(|r| r.report.feasible()));
/// assert!(report.cache.hits > 0, "seeds share prep work");
/// let worst = report.group("MIS/cycle20", "three-phase", 0.3).unwrap();
/// assert!(worst.meets_guarantee()); // min ratio ≥ 1 − ε
/// ```
pub mod prelude {
    pub use dapc_core::adapters::{GraphProblem, GraphSolveResult};
    pub use dapc_core::engine::{
        self, BackendStats, BranchAndBound, Ensemble, Gkm, Greedy, SharedSubsetCache, SolveConfig,
        SolveReport, Solver, ThreePhase,
    };
    pub use dapc_core::params::{PcParams, ScaleKnobs};
    pub use dapc_exec as exec;
    pub use dapc_exec::Executor;
    pub use dapc_graph::{gen, Graph, GraphBuilder, Hypergraph, Vertex};
    pub use dapc_ilp::{problems, verify, IlpInstance, Sense, SolverBudget};
    pub use dapc_local::{RoundCost, RoundLedger};
    pub use dapc_runtime::{
        solve_many, solve_many_streaming, solve_many_streaming_with_cache, solve_many_with_cache,
        solve_shard, solve_shard_with_cache, BatchAggregator, BatchReport, Corpus, GroupStats,
        GroupSummary, JobKey, JobResult, PrepCache, RuntimeConfig, ShardReport, StreamReport,
    };
}
