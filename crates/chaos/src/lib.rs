//! # dapc-chaos
//!
//! Deterministic fault injection for the serve layer: a seeded
//! [`FaultPlan`] that injection *sites* (named I/O and process
//! boundaries — checkpoint writes, snapshot loads, socket frames,
//! worker lifecycles) consult before doing their real work. The plan is
//! derived from a `u64` seed with the workspace's FNV-1a folds and is
//! completely separate from the solvers' key-derived RNG streams, so an
//! armed plan can *never* change what a surviving run computes — only
//! which I/O operations fail, stall, or corrupt on the way.
//!
//! Determinism and convergence are the two design rules:
//!
//! 1. **Decisions are pure.** Whether the `n`-th consultation of site
//!    `s` injects a fault is a pure function of `(seed, salt, s, n)` —
//!    replaying a process with the same plan and the same (single-
//!    threaded) call sequence replays the same faults. The salt
//!    (`DAPC_CHAOS_SALT`, conventionally the supervisor's attempt
//!    number) gives retried worker processes a *different* fault
//!    schedule, so a retry is not doomed to trip over the same wire.
//! 2. **Budgets are bounded.** Every site stops firing after a small
//!    per-process budget of injected faults, so any retry loop that
//!    survives bounded failures (the supervisor, the daemon client's
//!    backoff) converges to a clean pass instead of flaking forever.
//!
//! The plan is process-global and armed at most once — from the
//! `DAPC_CHAOS` environment variable (a decimal `u64` seed) on first
//! consultation, or programmatically via [`arm`]. Unarmed, every site
//! check is one relaxed atomic load and injects nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dapc_ilp::hash::{fnv1a, fnv1a_u64, FNV_OFFSET};
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable holding the decimal `u64` fault-plan seed; when
/// set, the plan arms itself on the first site consultation.
pub const CHAOS_ENV: &str = "DAPC_CHAOS";

/// Environment variable holding the decimal `u64` plan salt (default 0).
/// Supervisors set it to the attempt number of each spawned worker so
/// retries draw a fresh fault schedule from the same seed.
pub const SALT_ENV: &str = "DAPC_CHAOS_SALT";

/// Per-site injection policy: fire roughly one consultation in `rate`,
/// at most `budget` times per process. Sites whose faults are fatal to
/// a whole attempt (signal death, dropped connections) get low budgets;
/// harmless delay sites can fire more often.
const fn site_policy(site: &str) -> (u64, u64) {
    // (rate, budget) — matched on the site name's first bytes because
    // const fns cannot match on &str directly.
    match site.as_bytes() {
        b"part.write" => (6, 2),
        b"part.load" => (10, 2),
        b"shard.load" => (8, 2),
        b"shard.write" => (4, 2),
        b"manifest.load" => (16, 1),
        b"worker.stall" => (4, 4),
        b"worker.abort" => (10, 1),
        b"spawn.delay" => (3, 4),
        b"proto.write" => (10, 2),
        b"proto.read" => (6, 4),
        b"daemon.accept" => (8, 2),
        _ => (8, 2),
    }
}

/// A seeded, deterministic fault plan. Most callers use the process
/// globals ([`roll`], [`stall`], [`corrupt_reader`]); owning a plan
/// directly is for tests that need several plans in one process.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    root: u64,
}

impl FaultPlan {
    /// Derives a plan from `seed` and `salt`: the root state is
    /// `fnv1a_u64(fnv1a_u64(FNV_OFFSET, seed), salt)`, and every site
    /// folds its name on top — disjoint from every solver RNG stream,
    /// which seed from job keys, not from this chain.
    pub fn new(seed: u64, salt: u64) -> Self {
        FaultPlan {
            root: fnv1a_u64(fnv1a_u64(FNV_OFFSET, seed), salt),
        }
    }

    /// Whether the `hit`-th consultation of `site` injects a fault
    /// (ignoring budgets, which are process state, not plan state).
    /// Pure: same `(seed, salt, site, hit)` → same answer, with a
    /// [`Roll`] whose picks are equally reproducible.
    pub fn decide(&self, site: &str, hit: u64) -> Option<Roll> {
        let stream = fnv1a(self.root, site.as_bytes());
        let draw = fnv1a_u64(stream, hit);
        let (rate, _budget) = site_policy(site);
        draw.is_multiple_of(rate).then_some(Roll { state: draw })
    }
}

/// One injected fault's variant selector: a deterministic stream of
/// small picks (which failure mode, which byte offset, how long a
/// stall) drawn from the decision that fired.
#[derive(Clone, Copy, Debug)]
pub struct Roll {
    state: u64,
}

impl Roll {
    /// Draws the next pick in `0..n` (`n` must be nonzero). Successive
    /// picks advance the roll's own FNV chain, so one fault can make
    /// several independent choices.
    pub fn pick(&mut self, n: usize) -> usize {
        self.state = fnv1a_u64(self.state, 0x9e37_79b9_7f4a_7c15);
        (self.state % n.max(1) as u64) as usize
    }
}

/// The armed plan, or `None`. Arm-once: the first writer wins, whether
/// that's [`arm`] or the lazy environment read below.
static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();

fn plan() -> Option<&'static FaultPlan> {
    PLAN.get_or_init(|| {
        let seed: u64 = std::env::var(CHAOS_ENV).ok()?.trim().parse().ok()?;
        let salt: u64 = std::env::var(SALT_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        Some(FaultPlan::new(seed, salt))
    })
    .as_ref()
}

/// Per-site `(hits, fires)` counters — process state that makes budgets
/// and hit numbering work across threads.
fn counters() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static C: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Arms the process-global plan programmatically (e.g. from a
/// `--chaos-seed` flag). Also exports the seed and salt into this
/// process's environment so spawned children inherit the plan. Returns
/// `false` when the arm lost — a plan was consulted (and armed, or
/// resolved to "unarmed") before this call; the first resolution wins.
pub fn arm(seed: u64, salt: u64) -> bool {
    if std::env::var(CHAOS_ENV).is_err() {
        std::env::set_var(CHAOS_ENV, seed.to_string());
    }
    if std::env::var(SALT_ENV).is_err() {
        std::env::set_var(SALT_ENV, salt.to_string());
    }
    PLAN.set(Some(FaultPlan::new(seed, salt))).is_ok()
}

/// Whether a fault plan is armed in this process. One lazy lookup, then
/// cheap — unarmed processes pay a single atomic load per site check.
pub fn enabled() -> bool {
    plan().is_some()
}

/// Consults the plan at `site`: `Some(roll)` means *inject a fault
/// here*, with the roll choosing the variant. Counts the site's hit
/// (for decision numbering) and enforces its fire budget; records
/// `serve.chaos.*` counters when observability is on.
pub fn roll(site: &str) -> Option<Roll> {
    let plan = plan()?;
    let (_rate, budget) = site_policy(site);
    let decision = {
        let mut map = counters().lock().expect("chaos counters");
        let (hits, fires) = map.entry(site.to_string()).or_insert((0, 0));
        let hit = *hits;
        *hits += 1;
        if *fires >= budget {
            return None;
        }
        let decision = plan.decide(site, hit);
        if decision.is_some() {
            *fires += 1;
        }
        decision
    };
    if decision.is_some() && dapc_obs::enabled() {
        dapc_obs::counter("serve.chaos.injected").inc();
        dapc_obs::counter(&format!("serve.chaos.{site}")).inc();
    }
    decision
}

/// Sleeps a plan-chosen duration up to `max_millis` when `site` fires —
/// the "stalled read" / "delayed spawn" / "straggler" family of faults.
/// Stalls never change any result; they exercise timeouts and deadline
/// paths.
pub fn stall(site: &str, max_millis: u64) {
    if let Some(mut roll) = roll(site) {
        let millis = roll.pick(max_millis.max(1) as usize + 1) as u64;
        std::thread::sleep(Duration::from_millis(millis));
    }
}

/// The read-side fault of one [`corrupt_reader`].
#[derive(Clone, Copy, Debug)]
enum ReadFault {
    /// Flip one bit of the byte at stream offset `at` (no-op when the
    /// stream is shorter — the injection is then harmless).
    Flip { at: u64, bit: u8 },
    /// Report end-of-stream from offset `at` on — a truncated snapshot.
    Truncate { at: u64 },
}

/// A reader that corrupts the stream it wraps according to the plan:
/// either one flipped bit or an early EOF, at a deterministic offset.
/// Built by [`corrupt_reader`]; passes bytes through untouched when the
/// site did not fire.
pub struct ChaosRead<R> {
    inner: R,
    offset: u64,
    fault: Option<ReadFault>,
}

impl<R: Read> Read for ChaosRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.fault {
            None => self.inner.read(buf),
            Some(ReadFault::Truncate { at }) => {
                if self.offset >= at {
                    return Ok(0);
                }
                let cap = usize::try_from(at - self.offset)
                    .unwrap_or(usize::MAX)
                    .min(buf.len());
                let n = self.inner.read(&mut buf[..cap])?;
                self.offset += n as u64;
                Ok(n)
            }
            Some(ReadFault::Flip { at, bit }) => {
                let n = self.inner.read(buf)?;
                let start = self.offset;
                self.offset += n as u64;
                if at >= start && at < start + n as u64 {
                    buf[(at - start) as usize] ^= 1 << bit;
                }
                Ok(n)
            }
        }
    }
}

/// Wraps `inner` in a [`ChaosRead`] that — when `site` fires — either
/// flips one bit or truncates the stream at a plan-chosen offset in the
/// first 4 KiB. Loaders behind a wrapped reader must surface every such
/// corruption as an `Err` (the sealed-snapshot envelope guarantees it);
/// the chaos drills prove they do.
pub fn corrupt_reader<R: Read>(site: &str, inner: R) -> ChaosRead<R> {
    let fault = roll(site).map(|mut roll| {
        if roll.pick(2) == 0 {
            ReadFault::Flip {
                at: roll.pick(4096) as u64,
                bit: roll.pick(8) as u8,
            }
        } else {
            ReadFault::Truncate {
                at: roll.pick(4096) as u64,
            }
        }
    });
    ChaosRead {
        inner,
        offset: 0,
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_salt_site_hit() {
        let a = FaultPlan::new(42, 0);
        let b = FaultPlan::new(42, 0);
        for site in ["part.write", "proto.read", "made.up"] {
            for hit in 0..200 {
                assert_eq!(a.decide(site, hit).is_some(), b.decide(site, hit).is_some());
            }
        }
    }

    #[test]
    fn seed_salt_and_site_all_matter() {
        let fires = |plan: FaultPlan, site: &str| -> Vec<u64> {
            (0..400)
                .filter(|&h| plan.decide(site, h).is_some())
                .collect()
        };
        let base = fires(FaultPlan::new(7, 0), "part.write");
        assert!(!base.is_empty(), "rate 1/6 over 400 hits must fire");
        assert_ne!(base, fires(FaultPlan::new(8, 0), "part.write"), "seed");
        assert_ne!(base, fires(FaultPlan::new(7, 1), "part.write"), "salt");
        assert_ne!(base, fires(FaultPlan::new(7, 0), "part.load"), "site");
    }

    #[test]
    fn rolls_replay_their_picks() {
        let plan = FaultPlan::new(99, 3);
        let hit = (0..500)
            .find(|&h| plan.decide("shard.write", h).is_some())
            .expect("some hit fires");
        let mut a = plan.decide("shard.write", hit).unwrap();
        let mut b = plan.decide("shard.write", hit).unwrap();
        for n in [2usize, 3, 4096, 8, 17] {
            assert_eq!(a.pick(n), b.pick(n));
        }
    }

    #[test]
    fn flip_reader_flips_exactly_one_bit() {
        let data: Vec<u8> = (0..64).collect();
        let mut r = ChaosRead {
            inner: data.as_slice(),
            offset: 0,
            fault: Some(ReadFault::Flip { at: 10, bit: 3 }),
        };
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), data.len());
        let diff: Vec<usize> = (0..out.len()).filter(|&i| out[i] != data[i]).collect();
        assert_eq!(diff, vec![10]);
        assert_eq!(out[10], data[10] ^ (1 << 3));
    }

    #[test]
    fn truncate_reader_ends_the_stream_early() {
        let data = vec![0xABu8; 64];
        let mut r = ChaosRead {
            inner: data.as_slice(),
            offset: 0,
            fault: Some(ReadFault::Truncate { at: 20 }),
        };
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![0xABu8; 20]);
    }

    #[test]
    fn flip_beyond_the_stream_is_a_no_op() {
        let data = vec![1u8, 2, 3];
        let mut r = ChaosRead {
            inner: data.as_slice(),
            offset: 0,
            fault: Some(ReadFault::Flip { at: 4000, bit: 0 }),
        };
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
