//! Elkin–Neiman as a *real* message-passing LOCAL algorithm.
//!
//! Everything else in this crate computes decompositions centrally and
//! charges rounds (see `dapc-local`'s charged accounting). This module
//! closes the loop: it implements Lemma C.1 as a genuine [`NodeProgram`] —
//! every vertex broadcasts its shifted clock `T_v` outward, labels decay by
//! one per hop, each vertex keeps its top two — and the tests verify that,
//! given the *same shifts*, the distributed run produces **exactly** the
//! same decomposition as the centralised [`crate::elkin_neiman`] in exactly
//! the charged number of rounds. This is the faithfulness certificate for
//! the rest of the workspace.

use crate::result::Decomposition;
use dapc_graph::{Graph, Vertex};
use dapc_local::network::{Network, NodeCtx, NodeProgram, Outbox};
use dapc_local::RoundLedger;

/// A label in flight: `(source, value at the receiving vertex)`.
type ShiftMsg = Vec<(Vertex, f64)>;

/// Per-vertex state of the distributed Elkin–Neiman run.
#[derive(Clone, Debug)]
pub struct EnProgram {
    shift: f64,
    rounds_total: usize,
    rounds_done: usize,
    /// Top-2 labels from distinct sources, best first.
    labels: Vec<(Vertex, f64)>,
    /// Labels learned this round (to forward next round).
    fresh: Vec<(Vertex, f64)>,
}

impl EnProgram {
    /// Creates the program for one vertex with its drawn shift and the
    /// `4 ln ñ / λ` round budget.
    pub fn new(shift: f64, rounds_total: usize) -> Self {
        EnProgram {
            shift,
            rounds_total,
            rounds_done: 0,
            labels: Vec::new(),
            fresh: Vec::new(),
        }
    }

    fn consider(&mut self, source: Vertex, value: f64) {
        if self.labels.iter().any(|&(s, _)| s == source) {
            return; // keep only the best value per source: first arrival
                    // along a shortest path is the best, and BFS delivery
                    // order guarantees it arrives no later than any other.
        }
        // Insert in decreasing value order, keep top 2.
        let pos = self
            .labels
            .iter()
            .position(|&(_, v)| value > v)
            .unwrap_or(self.labels.len());
        if pos < 2 {
            self.labels.insert(pos, (source, value));
            self.labels.truncate(2);
            self.fresh.push((source, value));
        }
    }

    /// The decomposition label after the run: `None` = deleted.
    pub fn verdict(&self) -> Option<Vertex> {
        match self.labels.as_slice() {
            [] => None,
            [(s, _)] => Some(*s),
            [(s1, v1), (_, v2), ..] => {
                if *v2 >= *v1 - 1.0 {
                    None
                } else {
                    Some(*s1)
                }
            }
        }
    }
}

impl NodeProgram for EnProgram {
    type Message = ShiftMsg;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<ShiftMsg> {
        self.consider(ctx.id, self.shift);
        let out: ShiftMsg = self.fresh.drain(..).map(|(s, v)| (s, v - 1.0)).collect();
        if out.is_empty() {
            Outbox::Silent
        } else {
            Outbox::Broadcast(out)
        }
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: Vec<(usize, ShiftMsg)>) -> Outbox<ShiftMsg> {
        self.rounds_done += 1;
        for (_, msgs) in inbox {
            for (source, value) in msgs {
                self.consider(source, value);
            }
        }
        let out: ShiftMsg = self.fresh.drain(..).map(|(s, v)| (s, v - 1.0)).collect();
        if out.is_empty() || self.rounds_done >= self.rounds_total {
            Outbox::Silent
        } else {
            Outbox::Broadcast(out)
        }
    }

    fn halted(&self) -> bool {
        self.rounds_done >= self.rounds_total
    }
}

/// Runs Lemma C.1 by real message passing with caller-provided shifts, and
/// returns the decomposition plus the exact number of communication
/// rounds executed.
///
/// # Panics
///
/// Panics if `shifts.len() != g.n()`.
pub fn elkin_neiman_distributed(
    g: &Graph,
    shifts: &[f64],
    rounds: usize,
) -> (Decomposition, usize) {
    assert_eq!(shifts.len(), g.n());
    let mut net = Network::new(g, |v, _| EnProgram::new(shifts[v as usize], rounds), g.n());
    let stats = net.run(rounds + 1);
    let labels: Vec<Option<Vertex>> = net.nodes().iter().map(|p| p.verdict()).collect();
    let mut ledger = RoundLedger::new();
    ledger.begin_phase("distributed elkin-neiman");
    ledger.charge_gather(stats.rounds);
    ledger.end_phase();
    (
        Decomposition::from_labels(g.n(), &labels, None, ledger),
        stats.rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::{draw_shifts, propagate, Keep};
    use dapc_graph::gen;

    /// The centralised propagation and the message-passing run agree on
    /// every vertex's verdict, shift-for-shift.
    #[test]
    fn distributed_matches_centralized_exactly() {
        for seed in 0..10 {
            let g = gen::gnp(80, 0.05, &mut gen::seeded_rng(seed));
            let mut rng = gen::seeded_rng(1000 + seed);
            let lambda = 0.4;
            let n_tilde = 80.0;
            let shifts = draw_shifts(g.n(), lambda, n_tilde, &mut rng, None);
            let rounds = (4.0 * n_tilde.ln() / lambda).ceil() as usize;

            // Centralised.
            let labels = propagate(&g, &shifts, Keep::Top(2), None);
            let central: Vec<Option<dapc_graph::Vertex>> = (0..g.n())
                .map(|v| match labels[v].as_slice() {
                    [] => None,
                    [l] => Some(l.source),
                    [l1, l2, ..] => {
                        if l2.value >= l1.value - 1.0 {
                            None
                        } else {
                            Some(l1.source)
                        }
                    }
                })
                .collect();

            // Distributed.
            let (dist, executed) = elkin_neiman_distributed(&g, &shifts, rounds);
            assert!(executed <= rounds);
            for (v, c_label) in central.iter().enumerate() {
                let dist_label = dist.cluster_of[v].map(|c| dist.clusters[c as usize][0]);
                // Compare verdicts: deleted-vs-clustered must agree, and
                // clustered vertices must group identically.
                assert_eq!(
                    c_label.is_none(),
                    dist_label.is_none(),
                    "seed {seed}, vertex {v}: deletion verdicts differ"
                );
            }
            // Cluster groupings agree: two vertices share a centralised
            // centre iff they share a distributed cluster.
            for u in 0..g.n() {
                for v in (u + 1)..g.n() {
                    if central[u].is_some() && central[v].is_some() {
                        assert_eq!(
                            central[u] == central[v],
                            dist.cluster_of[u] == dist.cluster_of[v],
                            "seed {seed}: grouping of {u},{v} differs"
                        );
                    }
                }
            }
        }
    }

    /// The distributed run halts within the Lemma C.1 round budget.
    #[test]
    fn distributed_round_budget() {
        let g = gen::grid(10, 10);
        let mut rng = gen::seeded_rng(5);
        let shifts = draw_shifts(100, 0.5, 100.0, &mut rng, None);
        let budget = (4.0 * 100f64.ln() / 0.5).ceil() as usize;
        let (d, executed) = elkin_neiman_distributed(&g, &shifts, budget);
        assert!(executed <= budget);
        d.validate(&g, None).unwrap();
    }

    /// Degenerate shifts: all zeros → everything deleted except isolated
    /// vertices (every pair of adjacent vertices ties within 1).
    #[test]
    fn all_zero_shifts_delete_neighbourhoods() {
        let g = gen::cycle(10);
        let (d, _) = elkin_neiman_distributed(&g, &[0.0; 10], 5);
        // With all-equal shifts every vertex hears a second source at
        // value ≥ own − 1, so everyone is deleted.
        assert_eq!(d.deleted_count(), 10);
    }

    /// One huge shift: a single cluster swallowing the whole graph.
    #[test]
    fn single_dominant_shift_wins_everywhere() {
        let g = gen::path(12);
        let mut shifts = vec![0.0; 12];
        shifts[0] = 100.0;
        let (d, _) = elkin_neiman_distributed(&g, &shifts, 50);
        assert_eq!(d.deleted_count(), 0);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.clusters[0].len(), 12);
    }
}
