//! The Miller–Peng–Xu random-shift clustering (edge-cutting variant).
//!
//! Every vertex joins the cluster of the source maximising
//! `m_u(v) = T_u − dist(u, v)`; an edge is *deleted* when its endpoints land
//! in different clusters. The expected number of deleted edges is
//! `O(λ·|E|)`, but — Claim C.2 of the paper — there are graph families on
//! which a `(1 − O(1/n))` fraction of the edges is deleted with probability
//! `Ω(λ)`. The experiment E2 reproduces that failure mode.

use crate::shift::{draw_shifts, propagate, Keep};
use dapc_graph::{Graph, Vertex};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Result of an MPX clustering run.
#[derive(Clone, Debug)]
pub struct MpxClustering {
    /// The winning centre per vertex.
    pub center_of: Vec<Vertex>,
    /// Edges whose endpoints disagree (the deleted edges).
    pub cut_edges: Vec<(Vertex, Vertex)>,
    /// LOCAL round cost.
    pub ledger: RoundLedger,
}

impl MpxClustering {
    /// Fraction of edges cut.
    pub fn cut_fraction(&self, g: &Graph) -> f64 {
        if g.m() == 0 {
            0.0
        } else {
            self.cut_edges.len() as f64 / g.m() as f64
        }
    }
}

/// Runs MPX with rate `lambda` and size hint `n_tilde`.
///
/// ```
/// use dapc_decomp::mpx::mpx;
/// use dapc_graph::gen;
///
/// let g = gen::grid(10, 10);
/// let c = mpx(&g, 0.3, 100.0, &mut gen::seeded_rng(1));
/// // Clusters partition the vertices; cut edges join different clusters.
/// for &(u, v) in &c.cut_edges {
///     assert_ne!(c.center_of[u as usize], c.center_of[v as usize]);
/// }
/// ```
pub fn mpx(g: &Graph, lambda: f64, n_tilde: f64, rng: &mut StdRng) -> MpxClustering {
    let n = g.n();
    let shifts = draw_shifts(n, lambda, n_tilde, rng, None);
    let labels = propagate(g, &shifts, Keep::Top(1), None);
    let center_of: Vec<Vertex> = (0..n)
        .map(|v| labels[v].first().map(|l| l.source).unwrap_or(v as Vertex))
        .collect();
    let cut_edges: Vec<(Vertex, Vertex)> = g
        .edges()
        .filter(|&(u, v)| center_of[u as usize] != center_of[v as usize])
        .collect();
    let mut ledger = RoundLedger::new();
    ledger.begin_phase("mpx broadcast");
    ledger.charge_gather((4.0 * n_tilde.ln() / lambda).ceil() as usize);
    ledger.end_phase();
    MpxClustering {
        center_of,
        cut_edges,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn clusters_cover_all_vertices() {
        let g = gen::grid(9, 9);
        let c = mpx(&g, 0.3, 81.0, &mut gen::seeded_rng(4));
        assert_eq!(c.center_of.len(), 81);
    }

    #[test]
    fn clusters_are_connected_to_their_centres() {
        // MPX clusters are "shortest-path" clusters: walking from v toward
        // its centre stays in the cluster. We verify connectivity of each
        // cluster's induced subgraph.
        let g = gen::gnp(120, 0.04, &mut gen::seeded_rng(5));
        let c = mpx(&g, 0.4, 120.0, &mut gen::seeded_rng(6));
        let mut members: std::collections::HashMap<Vertex, Vec<Vertex>> = Default::default();
        for (v, &ctr) in c.center_of.iter().enumerate() {
            members.entry(ctr).or_default().push(v as Vertex);
        }
        for (ctr, vs) in members {
            let (sub, _) = g.induced_subgraph(&vs);
            let (_, k) = sub.connected_components();
            assert_eq!(k, 1, "cluster of centre {ctr} disconnected");
        }
    }

    #[test]
    fn expected_cut_fraction_scales_with_lambda() {
        // On a bounded-degree graph the cut fraction tracks O(λ).
        let g = gen::grid(40, 40);
        let mut rng = gen::seeded_rng(7);
        let mut frac_small = 0.0;
        let mut frac_large = 0.0;
        let trials = 8;
        for _ in 0..trials {
            frac_small += mpx(&g, 0.05, 1600.0, &mut rng).cut_fraction(&g);
            frac_large += mpx(&g, 0.5, 1600.0, &mut rng).cut_fraction(&g);
        }
        frac_small /= trials as f64;
        frac_large /= trials as f64;
        assert!(
            frac_small < frac_large,
            "cut fraction must grow with lambda ({frac_small} vs {frac_large})"
        );
        assert!(
            frac_small < 0.25,
            "λ=0.05 should cut few edges: {frac_small}"
        );
    }

    #[test]
    fn cut_edges_are_exactly_the_disagreements() {
        let g = gen::cycle(50);
        let c = mpx(&g, 0.3, 50.0, &mut gen::seeded_rng(8));
        let recount = g
            .edges()
            .filter(|&(u, v)| c.center_of[u as usize] != c.center_of[v as usize])
            .count();
        assert_eq!(recount, c.cut_edges.len());
    }
}
