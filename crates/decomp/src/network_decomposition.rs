//! Randomised network decomposition (Linial–Saks style, via Elkin–Neiman
//! recursion) — the substrate of the GKM17 baseline (§1.2 of the paper).
//!
//! A `(C, D)` network decomposition partitions `V` into clusters of weak
//! diameter `≤ D`, each coloured from `{1, …, C}` so that no two adjacent
//! clusters share a colour. Repeating Lemma C.1 at `λ = 1/2` on the
//! residual vertex set clusters a constant fraction per round; `O(log n)`
//! rounds give `C = O(log n)` colours of diameter `O(log n)` clusters with
//! probability `1 − 1/poly(n)` — the classical [LS93] bounds.

use crate::elkin_neiman::{elkin_neiman, EnParams};
use dapc_graph::{traversal, Graph, Vertex};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// A coloured clustering of the whole vertex set.
#[derive(Clone, Debug)]
pub struct NetworkDecomposition {
    /// Colour per vertex (`= the phase in which it clustered`).
    pub color_of: Vec<u32>,
    /// Cluster id per vertex.
    pub cluster_of: Vec<u32>,
    /// For each cluster: its colour and sorted members.
    pub clusters: Vec<(u32, Vec<Vertex>)>,
    /// Number of colours used.
    pub colors: u32,
    /// LOCAL round cost.
    pub ledger: RoundLedger,
}

impl NetworkDecomposition {
    /// Checks that same-coloured clusters are mutually non-adjacent and
    /// that clusters partition `V`.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        for (u, v) in g.edges() {
            let (cu, cv) = (self.cluster_of[u as usize], self.cluster_of[v as usize]);
            if cu != cv && self.color_of[u as usize] == self.color_of[v as usize] {
                return Err(format!("adjacent same-colour clusters at edge ({u}, {v})"));
            }
        }
        let mut seen = vec![false; self.color_of.len()];
        for (_, members) in &self.clusters {
            for &v in members {
                if seen[v as usize] {
                    return Err(format!("vertex {v} in two clusters"));
                }
                seen[v as usize] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("some vertex is unclustered".into());
        }
        Ok(())
    }

    /// Maximum weak diameter over clusters.
    pub fn max_weak_diameter(&self, g: &Graph) -> u32 {
        self.clusters
            .iter()
            .map(|(_, c)| traversal::weak_diameter(g, c).expect("clusters connected"))
            .max()
            .unwrap_or(0)
    }
}

/// Computes an `(O(log ñ), O(log ñ))` network decomposition by repeating
/// Lemma C.1 at `λ = 1/2` on the residual vertices; phase `i` clusters get
/// colour `i`.
///
/// # Panics
///
/// Panics if `n_tilde <= 1`.
///
/// ```
/// use dapc_decomp::network_decomposition::network_decomposition;
/// use dapc_graph::gen;
///
/// let g = gen::grid(9, 9);
/// let nd = network_decomposition(&g, 81.0, &mut gen::seeded_rng(2));
/// nd.validate(&g).unwrap();
/// assert!(nd.colors as f64 <= 4.0 * 81f64.ln());
/// ```
pub fn network_decomposition(g: &Graph, n_tilde: f64, rng: &mut StdRng) -> NetworkDecomposition {
    assert!(n_tilde > 1.0);
    let n = g.n();
    let params = EnParams::new(0.5, n_tilde);
    let mut remaining: Vec<bool> = vec![true; n];
    let mut color_of = vec![u32::MAX; n];
    let mut cluster_of = vec![u32::MAX; n];
    let mut clusters: Vec<(u32, Vec<Vertex>)> = Vec::new();
    let mut ledger = RoundLedger::new();
    let mut color = 0u32;
    // Whp O(log n) phases suffice; the hard cap keeps adversarial seeds
    // terminating (the tail phases cluster greedily).
    let max_colors = (8.0 * n_tilde.ln()).ceil() as u32 + 2;
    while remaining.iter().any(|&r| r) {
        if color >= max_colors {
            // Give every leftover vertex its own singleton cluster in a
            // fresh colour each — preserves validity, costs colours.
            for v in 0..n {
                if remaining[v] {
                    color_of[v] = color;
                    cluster_of[v] = clusters.len() as u32;
                    clusters.push((color, vec![v as Vertex]));
                    color += 1;
                }
            }
            break;
        }
        let d = elkin_neiman(g, &params, rng, Some(&remaining));
        ledger.absorb(d.ledger.clone());
        for (i, members) in d.clusters.iter().enumerate() {
            let _ = i;
            let id = clusters.len() as u32;
            for &v in members {
                color_of[v as usize] = color;
                cluster_of[v as usize] = id;
                remaining[v as usize] = false;
            }
            clusters.push((color, members.clone()));
        }
        // Deleted vertices stay for the next phase.
        color += 1;
    }
    NetworkDecomposition {
        color_of,
        cluster_of,
        clusters,
        colors: color,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn valid_on_families() {
        let mut rng = gen::seeded_rng(51);
        for g in [
            gen::grid(10, 10),
            gen::cycle(120),
            gen::gnp(100, 0.05, &mut rng),
            gen::complete(30),
        ] {
            let nd = network_decomposition(&g, g.n() as f64, &mut rng);
            nd.validate(&g).unwrap();
        }
    }

    #[test]
    fn colors_are_logarithmic() {
        let mut rng = gen::seeded_rng(52);
        let g = gen::grid(20, 20);
        let nd = network_decomposition(&g, 400.0, &mut rng);
        assert!(
            (nd.colors as f64) <= 6.0 * 400f64.ln(),
            "colors {} not O(log n)",
            nd.colors
        );
        assert!(nd.colors >= 1);
    }

    #[test]
    fn diameter_is_logarithmic() {
        let mut rng = gen::seeded_rng(53);
        let g = gen::gnp(200, 0.02, &mut rng);
        let nd = network_decomposition(&g, 200.0, &mut rng);
        let bound = 16.0 * 200f64.ln(); // 8 ln ñ / λ with λ = 1/2
        assert!(f64::from(nd.max_weak_diameter(&g)) <= bound);
    }

    #[test]
    fn every_vertex_has_color_and_cluster() {
        let mut rng = gen::seeded_rng(54);
        let g = gen::random_tree(150, &mut rng);
        let nd = network_decomposition(&g, 150.0, &mut rng);
        assert!(nd.color_of.iter().all(|&c| c != u32::MAX));
        assert!(nd.cluster_of.iter().all(|&c| c != u32::MAX));
    }

    #[test]
    fn rounds_are_polylog() {
        let mut rng = gen::seeded_rng(55);
        let g = gen::grid(15, 15);
        let nd = network_decomposition(&g, 225.0, &mut rng);
        // colors * (8 ln ñ / λ) = O(log² n).
        let per_phase = (4.0 * 225f64.ln() / 0.5).ceil() as usize;
        assert!(nd.ledger.total_rounds() <= (nd.colors as usize + 1) * per_phase);
    }
}
