//! # dapc-decomp
//!
//! Low-diameter decompositions for the `dapc` workspace — the algorithmic
//! core of Chang & Li (PODC 2023), plus every baseline the paper measures
//! against:
//!
//! * [`three_phase`] — **Theorem 1.1**: the paper's three-phase
//!   ball-growing-and-carving LDD whose `|D| ≤ ε|V|` guarantee holds with
//!   high probability (plus the optional diameter-improvement step);
//! * [`elkin_neiman`] — Lemma C.1, the classical exponential-shift LDD
//!   (in-expectation guarantee only — see Claim C.1);
//! * [`mpx`] — the Miller–Peng–Xu edge-cutting variant (Claim C.2);
//! * [`sparse_cover`] — Lemma C.2, the hyperedge sparse cover driving the
//!   covering algorithm;
//! * [`network_decomposition`] — Linial–Saks-style `(O(log n), O(log n))`
//!   network decomposition (substrate of the GKM17 baseline);
//! * [`blackbox`] — the §1.6 Coiteux-Roy et al. improvement
//!   (`log(1/ε)` instead of `log³(1/ε)`);
//! * [`shift`] — the shared exponential-shift label propagation engine;
//! * [`result`] — the common [`result::Decomposition`] output type with
//!   Definition 1.4 validators.
//!
//! ```
//! use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
//! use dapc_graph::gen;
//!
//! let g = gen::grid(8, 8);
//! let params = LddParams::scaled(0.3, 64.0, 0.05);
//! let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(0), None);
//! assert!(out.decomposition.deleted_fraction() <= 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackbox;
pub mod elkin_neiman;
pub mod message_passing;
pub mod mpx;
pub mod network_decomposition;
pub mod result;
pub mod shift;
pub mod sparse_cover;
pub mod three_phase;

pub use result::Decomposition;
pub use sparse_cover::SparseCover;
pub use three_phase::{LddParams, ThreePhaseOutcome};
