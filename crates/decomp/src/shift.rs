//! Exponential-shift label propagation — the engine shared by the
//! Elkin–Neiman decomposition (Lemma C.1), the Miller–Peng–Xu clustering
//! and the hyperedge sparse cover (Lemma C.2).
//!
//! Every vertex draws `T_v ~ Exponential(λ)` (capped per Lemma C.1) and
//! conceptually broadcasts it `⌊T_v⌋` hops; vertex `v` ranks sources by
//! `m_u(v) = T_u − dist(u, v)`. The different algorithms differ only in how
//! many top labels per vertex they need:
//!
//! * Miller–Peng–Xu: the top **1** label (join its cluster);
//! * Elkin–Neiman: the top **2** labels (delete if they are within 1);
//! * sparse cover: **all** labels within 1 of the maximum (join all).
//!
//! All three reduce to a best-first (max-heap) multi-source propagation in
//! which values decrease by exactly 1 per hop; the heap therefore pops in
//! globally non-increasing value order, so the first pop of a
//! `(vertex, source)` pair is that source's true `m` value at that vertex,
//! and per-vertex pruning is safe (a label dominated at `v` stays dominated
//! downstream of `v`).

use dapc_conc::dist::Exponential;
use dapc_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A label: source `u` reaching some vertex with value `m_u = T_u − dist`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Label {
    /// The originating centre.
    pub source: Vertex,
    /// `T_source − dist(source, here)`.
    pub value: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct HeapEntry {
    value: f64,
    source: Vertex,
    vertex: Vertex,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on value; tie-break on (source, vertex) for determinism.
        self.value
            .partial_cmp(&other.value)
            .expect("shift values are finite")
            .then_with(|| other.source.cmp(&self.source))
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// How many labels each vertex retains.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Keep {
    /// Keep the top `k` labels from distinct sources.
    Top(usize),
    /// Keep every label within `slack` of the per-vertex maximum.
    WithinSlackOfBest(f64),
}

/// Draws the capped exponential shifts of Lemma C.1: `T_v ~ Exp(λ)` with
/// values `≥ 4·ln ñ / λ` reset to zero. Dead vertices get 0.
pub fn draw_shifts(
    n: usize,
    lambda: f64,
    n_tilde: f64,
    rng: &mut StdRng,
    alive: Option<&[bool]>,
) -> Vec<f64> {
    let exp = Exponential::new(lambda);
    let cap = 4.0 * n_tilde.ln() / lambda;
    (0..n)
        .map(|v| {
            if alive.is_none_or(|a| a[v]) {
                exp.sample_reset_at(rng, cap)
            } else {
                0.0
            }
        })
        .collect()
}

/// Propagates shifted labels over `g` (restricted to `alive`) and returns,
/// per vertex, the retained labels in decreasing value order.
///
/// Only alive vertices seed labels or relay them. Each retained label is
/// relayed to neighbours with value − 1; labels that fall outside the keep
/// policy at a vertex are pruned there (and, by the monotonicity argument
/// in the module docs, everywhere downstream).
pub fn propagate(g: &Graph, shifts: &[f64], keep: Keep, alive: Option<&[bool]>) -> Vec<Vec<Label>> {
    assert_eq!(shifts.len(), g.n());
    let is_alive = |v: Vertex| alive.is_none_or(|a| a[v as usize]);
    let n = g.n();
    let mut labels: Vec<Vec<Label>> = vec![Vec::new(); n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for v in 0..n as Vertex {
        if is_alive(v) {
            heap.push(HeapEntry {
                value: shifts[v as usize],
                source: v,
                vertex: v,
            });
        }
    }
    while let Some(HeapEntry {
        value,
        source,
        vertex,
    }) = heap.pop()
    {
        let kept = &mut labels[vertex as usize];
        // Drop when the policy is already saturated or the source known.
        let admissible = match keep {
            Keep::Top(k) => kept.len() < k,
            Keep::WithinSlackOfBest(slack) => {
                kept.first().is_none_or(|best| value >= best.value - slack)
            }
        };
        if !admissible || kept.iter().any(|l| l.source == source) {
            continue;
        }
        kept.push(Label { source, value });
        // Relay. Values below any plausible future threshold could be
        // pruned here; one extra hop of dead labels is cheap and keeps the
        // code obviously correct.
        for &w in g.neighbors(vertex) {
            if is_alive(w) {
                heap.push(HeapEntry {
                    value: value - 1.0,
                    source,
                    vertex: w,
                });
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    /// Labels on a path with hand-picked shifts.
    #[test]
    fn values_are_shift_minus_distance() {
        let g = gen::path(5);
        // Only vertex 0 has a large shift; everyone hears it.
        let shifts = vec![10.0, 0.0, 0.0, 0.0, 0.0];
        let labels = propagate(&g, &shifts, Keep::Top(1), None);
        for (v, label) in labels.iter().enumerate() {
            assert_eq!(label[0].source, 0);
            assert!((label[0].value - (10.0 - v as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn top2_keeps_distinct_sources_in_order() {
        let g = gen::path(5);
        let shifts = vec![10.0, 0.0, 0.0, 0.0, 9.0];
        let labels = propagate(&g, &shifts, Keep::Top(2), None);
        // Middle vertex 2: m_0 = 8, m_4 = 7.
        assert_eq!(labels[2].len(), 2);
        assert_eq!(labels[2][0].source, 0);
        assert!((labels[2][0].value - 8.0).abs() < 1e-9);
        assert_eq!(labels[2][1].source, 4);
        assert!((labels[2][1].value - 7.0).abs() < 1e-9);
    }

    #[test]
    fn top2_matches_brute_force() {
        let mut rng = gen::seeded_rng(5);
        for _ in 0..20 {
            let g = gen::gnp(25, 0.12, &mut rng);
            let shifts = draw_shifts(25, 0.5, 25.0, &mut rng, None);
            let labels = propagate(&g, &shifts, Keep::Top(2), None);
            // Brute force: all m values per vertex.
            for v in g.vertices() {
                let dist = dapc_graph::traversal::bfs_distances(&g, v);
                let mut ms: Vec<(f64, Vertex)> = g
                    .vertices()
                    .filter(|&u| dist[u as usize] != dapc_graph::traversal::UNREACHABLE)
                    .map(|u| (shifts[u as usize] - dist[u as usize] as f64, u))
                    .collect();
                ms.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                let got = &labels[v as usize];
                assert!((got[0].value - ms[0].0).abs() < 1e-9, "best at {v}");
                if ms.len() > 1 {
                    assert!((got[1].value - ms[1].0).abs() < 1e-9, "second at {v}");
                }
            }
        }
    }

    #[test]
    fn slack_keep_returns_all_near_best() {
        let g = gen::path(3);
        let shifts = vec![5.0, 4.5, 5.2];
        // At vertex 1: m_0 = 4, m_1 = 4.5, m_2 = 4.2 — all within 1 of 4.5.
        let labels = propagate(&g, &shifts, Keep::WithinSlackOfBest(1.0), None);
        assert_eq!(labels[1].len(), 3);
        assert_eq!(labels[1][0].source, 1);
        // At vertex 0: m_0 = 5, m_1 = 3.5 (pruned), m_2 = 3.2 (pruned).
        assert_eq!(labels[0].len(), 1);
    }

    #[test]
    fn dead_vertices_neither_seed_nor_relay() {
        let g = gen::path(3);
        let alive = vec![true, false, true];
        let shifts = vec![10.0, 99.0, 1.0];
        let labels = propagate(&g, &shifts, Keep::Top(2), Some(&alive));
        // Vertex 2 cannot hear vertex 0 through the dead vertex 1.
        assert_eq!(labels[2].len(), 1);
        assert_eq!(labels[2][0].source, 2);
        assert!(labels[1].is_empty());
    }

    #[test]
    fn shifts_respect_cap() {
        let mut rng = gen::seeded_rng(1);
        let shifts = draw_shifts(10_000, 0.5, 100.0, &mut rng, None);
        let cap = 4.0 * 100f64.ln() / 0.5;
        assert!(shifts.iter().all(|&t| t < cap));
        assert!(shifts.iter().any(|&t| t > 0.0));
    }
}
