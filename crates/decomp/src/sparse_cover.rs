//! The hyperedge sparse cover of Lemma C.2.
//!
//! A variant of the random-shift decomposition in which nothing is deleted:
//! every vertex joins the cluster of **every** source whose value comes
//! within 1 of its maximum. Guarantees:
//!
//! * every hyperedge is completely contained in at least one cluster;
//! * the number of clusters containing a vertex is dominated by
//!   `Geometric(e^{−λ}) + ñ^{−2}`;
//! * weak diameter `≤ 8 ln ñ / λ`, in `4 ln ñ / λ` rounds.
//!
//! This is the engine of the covering algorithm (§5): local covering
//! solutions on the clusters are OR-combined (Lemma C.3), and the
//! multiplicity bound caps the overcounting.

use dapc_graph::{EdgeId, Hypergraph, Vertex};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A sparse cover: overlapping clusters covering every hyperedge.
#[derive(Clone, Debug)]
pub struct SparseCover {
    /// Sorted vertex lists per cluster.
    pub clusters: Vec<Vec<Vertex>>,
    /// Cluster ids containing each vertex.
    pub membership: Vec<Vec<u32>>,
    /// LOCAL round cost.
    pub ledger: RoundLedger,
}

impl dapc_local::RoundCost for SparseCover {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

impl SparseCover {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the cover has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The multiplicity `X_v` (number of clusters containing `v`).
    pub fn multiplicity(&self, v: Vertex) -> usize {
        self.membership[v as usize].len()
    }

    /// Mean multiplicity over vertices with non-zero multiplicity.
    pub fn mean_multiplicity(&self) -> f64 {
        let covered: Vec<usize> = self
            .membership
            .iter()
            .map(Vec::len)
            .filter(|&x| x > 0)
            .collect();
        if covered.is_empty() {
            0.0
        } else {
            covered.iter().sum::<usize>() as f64 / covered.len() as f64
        }
    }

    /// Ids of alive hyperedges *not* fully contained in any cluster
    /// (Lemma C.2 guarantees this is empty).
    pub fn uncovered_edges(
        &self,
        h: &Hypergraph,
        alive_vertices: Option<&[bool]>,
        alive_edges: Option<&[bool]>,
    ) -> Vec<EdgeId> {
        let mut cluster_sets: Vec<std::collections::BTreeSet<Vertex>> = self
            .clusters
            .iter()
            .map(|c| c.iter().copied().collect())
            .collect();
        // Sort by size descending: big clusters cover most edges, so check
        // them first.
        let mut order: Vec<usize> = (0..cluster_sets.len()).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(cluster_sets[i].len()));
        cluster_sets = order.iter().map(|&i| cluster_sets[i].clone()).collect();
        h.hyperedges()
            .filter(|&(e, members)| {
                if alive_edges.is_some_and(|a| !a[e as usize]) {
                    return false; // dead edges need no coverage
                }
                let live: Vec<Vertex> = members
                    .iter()
                    .copied()
                    .filter(|&v| alive_vertices.is_none_or(|a| a[v as usize]))
                    .collect();
                if live.is_empty() {
                    return false;
                }
                !cluster_sets
                    .iter()
                    .any(|cs| live.iter().all(|v| cs.contains(v)))
            })
            .map(|(e, _)| e)
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct HeapEntry {
    value: f64,
    source: Vertex,
    vertex: Vertex,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .partial_cmp(&other.value)
            .expect("finite values")
            .then_with(|| other.source.cmp(&self.source))
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a sparse cover of the alive part of `h` (Lemma C.2) with rate
/// `lambda` and size hint `n_tilde`.
///
/// # Examples
///
/// ```
/// use dapc_decomp::sparse_cover::sparse_cover;
/// use dapc_graph::{gen, Hypergraph};
///
/// let g = gen::grid(6, 6);
/// let h = Hypergraph::from_graph(&g);
/// let cover = sparse_cover(&h, 0.3, 36.0, &mut gen::seeded_rng(3), None, None);
/// assert!(cover.uncovered_edges(&h, None, None).is_empty());
/// ```
pub fn sparse_cover(
    h: &Hypergraph,
    lambda: f64,
    n_tilde: f64,
    rng: &mut StdRng,
    alive_vertices: Option<&[bool]>,
    alive_edges: Option<&[bool]>,
) -> SparseCover {
    let n = h.n();
    let v_ok = |v: Vertex| alive_vertices.is_none_or(|a| a[v as usize]);
    let e_ok = |e: EdgeId| alive_edges.is_none_or(|a| a[e as usize]);
    let shifts = crate::shift::draw_shifts(n, lambda, n_tilde, rng, alive_vertices);
    // Threshold-pruned multi-label propagation in the primal metric.
    let mut labels: Vec<Vec<(Vertex, f64)>> = vec![Vec::new(); n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for v in 0..n as Vertex {
        if v_ok(v) {
            heap.push(HeapEntry {
                value: shifts[v as usize],
                source: v,
                vertex: v,
            });
        }
    }
    while let Some(HeapEntry {
        value,
        source,
        vertex,
    }) = heap.pop()
    {
        let kept = &mut labels[vertex as usize];
        let admissible = kept.first().is_none_or(|&(_, best)| value >= best - 1.0);
        if !admissible || kept.iter().any(|&(s, _)| s == source) {
            continue;
        }
        kept.push((source, value));
        for &e in h.incident_edges(vertex) {
            if !e_ok(e) {
                continue;
            }
            for &w in h.edge(e) {
                if w != vertex && v_ok(w) {
                    heap.push(HeapEntry {
                        value: value - 1.0,
                        source,
                        vertex: w,
                    });
                }
            }
        }
    }
    // Group into clusters by source.
    let mut cluster_id: std::collections::BTreeMap<Vertex, u32> = Default::default();
    let mut clusters: Vec<Vec<Vertex>> = Vec::new();
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        for &(s, _) in &labels[v] {
            let id = *cluster_id.entry(s).or_insert_with(|| {
                clusters.push(Vec::new());
                (clusters.len() - 1) as u32
            });
            clusters[id as usize].push(v as Vertex);
            membership[v].push(id);
        }
    }
    for c in &mut clusters {
        c.sort_unstable();
    }
    let mut ledger = RoundLedger::new();
    ledger.begin_phase("sparse-cover broadcast");
    ledger.charge_gather((4.0 * n_tilde.ln() / lambda).ceil() as usize);
    ledger.end_phase();
    SparseCover {
        clusters,
        membership,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::{gen, Hypergraph};

    #[test]
    fn every_edge_is_covered() {
        let mut rng = gen::seeded_rng(21);
        for seed in 0..5 {
            let g = gen::gnp(100, 0.04, &mut gen::seeded_rng(seed));
            let h = Hypergraph::from_graph(&g);
            let cover = sparse_cover(&h, 0.4, 100.0, &mut rng, None, None);
            assert!(
                cover.uncovered_edges(&h, None, None).is_empty(),
                "seed {seed}: some edge uncovered"
            );
        }
    }

    #[test]
    fn genuine_hyperedges_are_covered() {
        // Random 4-uniform hypergraph.
        let mut rng = gen::seeded_rng(22);
        use rand::RngExt;
        let n = 80;
        let edges: Vec<Vec<Vertex>> = (0..120)
            .map(|_| {
                let mut e: Vec<Vertex> = Vec::new();
                while e.len() < 4 {
                    let v = rng.random_range(0..n) as Vertex;
                    if !e.contains(&v) {
                        e.push(v);
                    }
                }
                e
            })
            .collect();
        let h = Hypergraph::new(n, edges);
        let cover = sparse_cover(&h, 0.3, n as f64, &mut rng, None, None);
        assert!(cover.uncovered_edges(&h, None, None).is_empty());
    }

    #[test]
    fn multiplicity_is_near_one_for_small_lambda() {
        // E[X_v] ≤ e^{λ} ≈ 1 + λ; empirical mean should be close.
        let g = gen::grid(25, 25);
        let h = Hypergraph::from_graph(&g);
        let mut rng = gen::seeded_rng(23);
        let lambda = 0.1f64;
        let mut mean = 0.0;
        let trials = 5;
        for _ in 0..trials {
            let cover = sparse_cover(&h, lambda, 625.0, &mut rng, None, None);
            mean += cover.mean_multiplicity();
        }
        mean /= trials as f64;
        let bound = lambda.exp();
        assert!(
            mean <= bound * 1.25,
            "mean multiplicity {mean} far above e^λ = {bound}"
        );
        assert!(mean >= 1.0);
    }

    #[test]
    fn every_vertex_is_in_some_cluster() {
        let g = gen::cycle(100);
        let h = Hypergraph::from_graph(&g);
        let cover = sparse_cover(&h, 0.5, 100.0, &mut gen::seeded_rng(24), None, None);
        for v in 0..100 {
            assert!(
                cover.multiplicity(v) >= 1,
                "vertex {v} uncovered (sparse covers never delete)"
            );
        }
    }

    #[test]
    fn weak_diameter_bound_holds() {
        let g = gen::gnp(150, 0.025, &mut gen::seeded_rng(25));
        let h = Hypergraph::from_graph(&g);
        let lambda = 0.5;
        let cover = sparse_cover(&h, lambda, 150.0, &mut gen::seeded_rng(26), None, None);
        let bound = 8.0 * 150f64.ln() / lambda;
        for c in &cover.clusters {
            let d = h.weak_diameter(c).expect("cluster connected in H");
            assert!(
                f64::from(d) <= bound,
                "cluster diameter {d} > bound {bound}"
            );
        }
    }

    #[test]
    fn masked_cover_ignores_dead_parts() {
        let h = Hypergraph::new(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let alive_v = vec![true, true, true, false, false, false];
        let alive_e = vec![true, true, false];
        let cover = sparse_cover(
            &h,
            0.5,
            6.0,
            &mut gen::seeded_rng(27),
            Some(&alive_v),
            Some(&alive_e),
        );
        // Dead vertices belong to no cluster.
        for v in 3..6 {
            assert_eq!(cover.multiplicity(v), 0);
        }
        // Edge 0 is alive and fully alive-supported: must be covered.
        assert!(cover
            .uncovered_edges(&h, Some(&alive_v), Some(&alive_e))
            .is_empty());
    }
}
