//! The blackbox LDD construction of Coiteux-Roy et al. (§1.6 of the paper,
//! [CRdG+23, Theorem 3.10]).
//!
//! Given any whp `(1/2, O(log n))` decomposition (we use Theorem 1.1 at
//! `ε = 1/2`), an `(ε, O(log n/ε))` decomposition follows in
//! `O(log(1/ε)·log n/ε)` rounds — replacing the `log³(1/ε)` factor of
//! Theorem 1.1 by `log(1/ε)`:
//!
//! 1. run the half decomposition on the power graph `G^k`, `k = Θ(1/ε)`;
//! 2. clusters are `> k`-separated in `G`; each ball-grows `k/2` hops and
//!    deletes its sparsest layer;
//! 3. repeat on the leftovers `O(log(1/ε))` times (≥ half the vertices
//!    leave per round), then delete what remains (`O(εn)` whp).

use crate::result::Decomposition;
use crate::three_phase::{three_phase_ldd, LddParams};
use dapc_graph::{power, traversal, Graph, Vertex};
use dapc_local::{RoundCost, RoundLedger};
use rand::rngs::StdRng;

/// Parameters of the blackbox construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlackboxParams {
    /// Target deleted fraction `ε`.
    pub eps: f64,
    /// Size hint `ñ ≥ n`.
    pub n_tilde: f64,
    /// Hop separation `k = ⌈k_scale/ε⌉`.
    pub k: usize,
    /// Number of repetitions (`⌈log₂(1/ε)⌉ + 1` by default).
    pub repetitions: usize,
    /// `r_scale` forwarded to the inner Theorem 1.1 run at `ε = 1/2`.
    pub inner_r_scale: f64,
}

impl BlackboxParams {
    /// Default parametrisation: `k = ⌈2/ε⌉`, `⌈log₂(1/ε)⌉ + 1` repetitions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `n_tilde > 1`.
    pub fn new(eps: f64, n_tilde: f64, inner_r_scale: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(n_tilde > 1.0, "n_tilde must exceed 1");
        BlackboxParams {
            eps,
            n_tilde,
            k: (2.0 / eps).ceil() as usize,
            repetitions: (1.0 / eps).log2().ceil() as usize + 1,
            inner_r_scale,
        }
    }
}

/// Runs the blackbox construction.
///
/// ```
/// use dapc_decomp::blackbox::{blackbox_ldd, BlackboxParams};
/// use dapc_graph::gen;
///
/// let g = gen::grid(9, 9);
/// let params = BlackboxParams::new(0.3, 81.0, 0.02);
/// let d = blackbox_ldd(&g, &params, &mut gen::seeded_rng(5));
/// d.validate(&g, None).unwrap();
/// ```
pub fn blackbox_ldd(g: &Graph, params: &BlackboxParams, rng: &mut StdRng) -> Decomposition {
    let n = g.n();
    let mut alive = vec![true; n]; // not yet clustered or deleted
    let mut labels: Vec<Option<Vertex>> = vec![None; n];
    let mut next_label = 0u32;
    let mut ledger = RoundLedger::new();
    let inner = LddParams::scaled(0.5, params.n_tilde, params.inner_r_scale);
    let grow = (params.k / 2).max(1);

    for rep in 0..params.repetitions {
        if !alive.iter().any(|&a| a) {
            break;
        }
        // 1. Half-decomposition on the power graph of the residual.
        //    Building G^k[alive] centrally; one round of G^k costs k rounds
        //    of G, and the ledger charges accordingly.
        let gk = power_of_residual(g, params.k, &alive);
        let half = three_phase_ldd(&gk, &inner, rng, Some(&alive));
        ledger.begin_phase(format!("rep{rep}: half-LDD on G^k (×k rounds)"));
        ledger.charge_gather(half.decomposition.rounds() * params.k);
        ledger.end_phase();

        // 2. Ball-grow each cluster k/2 hops in G, carve sparsest layer.
        ledger.begin_phase(format!("rep{rep}: grow {grow} hops and carve"));
        ledger.charge_gather(grow);
        ledger.end_phase();
        let mut to_delete: Vec<Vertex> = Vec::new();
        let mut to_cluster: Vec<(Vertex, u32)> = Vec::new();
        for cluster in &half.decomposition.clusters {
            let ball = traversal::ball(g, cluster, grow, Some(&alive));
            // Sparsest layer in [1, grow] (empty layers short-circuit).
            let mut j_star = 1usize;
            let mut best = usize::MAX;
            for j in 1..=grow {
                let s = ball.level(j).len();
                if s < best {
                    best = s;
                    j_star = j;
                    if s == 0 {
                        break;
                    }
                }
            }
            for &v in ball.level(j_star) {
                to_delete.push(v);
            }
            let label = next_label;
            next_label += 1;
            for v in ball.within(j_star - 1) {
                to_cluster.push((v, label));
            }
        }
        // Different clusters' balls are disjoint (clusters are > k apart in
        // G and we grow ≤ k/2), so the assignments never conflict.
        for v in to_delete {
            alive[v as usize] = false; // deleted: label stays None
        }
        for (v, label) in to_cluster {
            if alive[v as usize] {
                labels[v as usize] = Some(label);
                alive[v as usize] = false;
            }
        }
        // Unclustered vertices of the half-LDD stay alive for next rep.
    }
    // Whatever is still alive is deleted (O(εn) whp).
    Decomposition::from_labels(n, &labels, None, ledger)
}

/// The `k`-th power of the alive subgraph (edges between alive vertices at
/// residual distance `≤ k`).
fn power_of_residual(g: &Graph, k: usize, alive: &[bool]) -> Graph {
    if alive.iter().all(|&a| a) {
        return power::power_graph(g, k);
    }
    let mut b = dapc_graph::GraphBuilder::new(g.n());
    for v in g.vertices() {
        if !alive[v as usize] {
            continue;
        }
        let ball = traversal::ball(g, &[v], k, Some(alive));
        for u in ball.iter() {
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn valid_on_families() {
        let mut rng = gen::seeded_rng(61);
        for g in [
            gen::grid(9, 9),
            gen::cycle(100),
            gen::random_tree(90, &mut rng),
        ] {
            let params = BlackboxParams::new(0.3, g.n() as f64, 0.02);
            let d = blackbox_ldd(&g, &params, &mut rng);
            d.validate(&g, None).unwrap();
        }
    }

    #[test]
    fn deletion_budget_reasonable() {
        let g = gen::grid(16, 16);
        let mut worst = 0.0f64;
        for seed in 0..10 {
            let params = BlackboxParams::new(0.4, 256.0, 0.02);
            let d = blackbox_ldd(&g, &params, &mut gen::seeded_rng(seed));
            worst = worst.max(d.deleted_fraction());
        }
        assert!(worst <= 0.4 + 1e-9, "deleted fraction {worst} above ε");
    }

    #[test]
    fn balls_of_distinct_clusters_never_collide() {
        // Structural property: the function must never try to assign one
        // vertex to two clusters. `from_labels` + validate would catch
        // duplicates via cluster/id mismatch; run a few seeds.
        let g = gen::gnp(150, 0.03, &mut gen::seeded_rng(3));
        for seed in 0..5 {
            let params = BlackboxParams::new(0.25, 150.0, 0.02);
            let d = blackbox_ldd(&g, &params, &mut gen::seeded_rng(seed));
            d.validate(&g, None).unwrap();
        }
    }

    #[test]
    fn rounds_grow_slower_in_one_over_eps_than_three_phase() {
        // The headline of §1.6 is asymptotic: log(1/ε) vs log³(1/ε) in the
        // round complexity. At simulable sizes the constants differ, so we
        // compare *growth* as ε shrinks 16×: the blackbox's round count
        // must grow by a smaller factor than the three-phase LDD's.
        let g = gen::cycle(64);
        let (eps_large, eps_small) = (0.2, 0.0125);
        let rounds_bb = |eps: f64| {
            let p = BlackboxParams::new(eps, 64.0, 0.02);
            blackbox_ldd(&g, &p, &mut gen::seeded_rng(1)).rounds()
        };
        let rounds_tp = |eps: f64| {
            let p = LddParams::scaled(eps, 64.0, 0.02);
            three_phase_ldd(&g, &p, &mut gen::seeded_rng(1), None)
                .decomposition
                .rounds()
        };
        let growth_bb = rounds_bb(eps_small) as f64 / rounds_bb(eps_large) as f64;
        let growth_tp = rounds_tp(eps_small) as f64 / rounds_tp(eps_large) as f64;
        assert!(
            growth_bb < growth_tp,
            "blackbox growth {growth_bb:.2} should undercut three-phase growth {growth_tp:.2}"
        );
    }
}
