//! The paper's low-diameter decomposition (Theorem 1.1, §3).
//!
//! Three phases of ball-growing-and-carving sparsify the graph until the
//! classical Elkin–Neiman decomposition concentrates:
//!
//! * **Phase 1** — `t = ⌈log₂(20/ε)⌉` iterations; in iteration `i` each
//!   surviving vertex becomes a centre with probability
//!   `p_{v,i} = 2^i·ln ñ / n_v` and carves the sparsest level of its ball
//!   in the interval `I_i = [(t−i+2)R+1, (t−i+3)R]` (Algorithm 1 / 2);
//! * **Phase 2** — one extra iteration at probability
//!   `2^{t+1}·ln ñ·ln(20/ε)/n_v` on the interval `[R+1, 2R]` (Algorithm 3);
//! * **Phase 3** — Lemma C.1 at `λ = ε/10` on the residual graph.
//!
//! Deleted vertices are the unclustered set `D`; the clusters are the
//! connected components of `G[V∖D]`, of weak diameter `O(t·R)`
//! (Lemma 3.2). Unlike the classical algorithms, `|D| ≤ ε|V|` holds **with
//! high probability** (Lemmas 3.3–3.7), not merely in expectation — this is
//! contribution (C1).

use crate::elkin_neiman::{elkin_neiman, EnParams};
use crate::result::Decomposition;
use dapc_conc::dist::bernoulli;
use dapc_graph::{traversal, Graph, Vertex};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Parameters of the three-phase decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LddParams {
    /// Target deleted fraction `ε`.
    pub eps: f64,
    /// Size hint `ñ ≥ n`.
    pub n_tilde: f64,
    /// Number of Phase 1 iterations `t`.
    pub t: usize,
    /// Interval length `R`.
    pub r: usize,
    /// Whether to run Phase 2 (the LDD and packing algorithms do; the
    /// covering algorithm instead increases `t`, see §1.4.3).
    pub run_phase2: bool,
    /// Phase 3 Elkin–Neiman rate (the paper uses `ε/10`).
    pub phase3_lambda: f64,
}

impl LddParams {
    /// The paper's exact constants: `t = ⌈log₂(20/ε)⌉`,
    /// `R = ⌈200·t·ln ñ/ε⌉`, Phase 3 at `λ = ε/10`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `n_tilde > 1`.
    pub fn paper(eps: f64, n_tilde: f64) -> Self {
        Self::scaled(eps, n_tilde, 200.0)
    }

    /// Same structure with the leading constant `200` replaced by
    /// `r_scale` — the knob experiments use to reach the interesting
    /// regime at simulable sizes (see DESIGN.md §2, item 3). The number of
    /// iterations, interval layout and sampling ratios are untouched.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`, `n_tilde > 1` and `r_scale > 0`.
    pub fn scaled(eps: f64, n_tilde: f64, r_scale: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(n_tilde > 1.0, "n_tilde must exceed 1");
        assert!(r_scale > 0.0, "r_scale must be positive");
        let t = (20.0 / eps).log2().ceil() as usize;
        let r = ((r_scale * t as f64 * n_tilde.ln()) / eps).ceil() as usize;
        LddParams {
            eps,
            n_tilde,
            t,
            r: r.max(2),
            run_phase2: true,
            phase3_lambda: eps / 10.0,
        }
    }

    /// The interval `I_i = [a_i, b_i] = [(t−i+2)R+1, (t−i+3)R]` of §3.1.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= i <= t + 1` (index `t + 1` is Phase 2's
    /// `[R+1, 2R]`).
    pub fn interval(&self, i: usize) -> (usize, usize) {
        assert!(i >= 1 && i <= self.t + 1, "iteration index out of range");
        let k = self.t + 2 - i; // t+1 maps to k = 1: [R+1, 2R]
        (k * self.r + 1, (k + 1) * self.r)
    }

    /// The radius `4tR` used for the `n_v` estimate.
    pub fn estimate_radius(&self) -> usize {
        4 * self.t * self.r
    }

    /// Centre-sampling probability for vertex with estimate `n_v` in
    /// iteration `i` (Phase 2 is `i = t + 1`).
    pub fn sampling_probability(&self, i: usize, n_v: usize) -> f64 {
        self.sampling_probability_mass(i, 1, n_v as u64)
    }

    /// Weighted centre-sampling probability (the §4.2 extension):
    /// `p_{v,i} = 2^i·ln ñ·w_v / W(N^{4tR}(v))`; reduces to the unweighted
    /// rule for unit weights.
    pub fn sampling_probability_mass(&self, i: usize, w_v: u64, ball_mass: u64) -> f64 {
        if w_v == 0 || ball_mass == 0 {
            return 0.0;
        }
        let base = 2f64.powi(i as i32) * self.n_tilde.ln() * w_v as f64 / ball_mass as f64;
        if i == self.t + 1 {
            base * (20.0 / self.eps).ln()
        } else {
            base
        }
    }

    /// The weak-diameter guarantee `2(t+2)R` of Lemma 3.2 for carved
    /// clusters (Phase 3 components are smaller).
    pub fn diameter_bound(&self) -> usize {
        2 * (self.t + 2) * self.r
    }
}

/// Per-phase accounting of a three-phase run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreePhaseStats {
    /// Centres sampled per Phase 1 iteration (index 0 = iteration 1).
    pub centers_per_iteration: Vec<usize>,
    /// Centres sampled in Phase 2.
    pub centers_phase2: usize,
    /// Vertices deleted in Phase 1 (all iterations).
    pub deleted_phase1: usize,
    /// Vertices deleted in Phase 2.
    pub deleted_phase2: usize,
    /// Vertices deleted in Phase 3 (Elkin–Neiman).
    pub deleted_phase3: usize,
    /// Vertices removed (clustered) during Phases 1–2.
    pub removed_carving: usize,
    /// Total mass (weight) of deleted vertices across all phases — equals
    /// the deleted vertex count in the unweighted case.
    pub deleted_mass: u64,
}

/// Result of the three-phase decomposition.
#[derive(Clone, Debug)]
pub struct ThreePhaseOutcome {
    /// The decomposition: clusters are connected components of `G[V∖D]`.
    pub decomposition: Decomposition,
    /// Phase-by-phase counters.
    pub stats: ThreePhaseStats,
}

impl dapc_local::RoundCost for ThreePhaseOutcome {
    fn ledger(&self) -> &RoundLedger {
        &self.decomposition.ledger
    }
}

/// Runs the Theorem 1.1 decomposition on the alive subgraph of `g`.
///
/// # Examples
///
/// ```
/// use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
/// use dapc_graph::gen;
///
/// let g = gen::grid(10, 10);
/// let params = LddParams::scaled(0.3, 100.0, 0.05);
/// let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(1), None);
/// out.decomposition.validate(&g, None).unwrap();
/// ```
pub fn three_phase_ldd(
    g: &Graph,
    params: &LddParams,
    rng: &mut StdRng,
    alive: Option<&[bool]>,
) -> ThreePhaseOutcome {
    run_three_phase(g, params, None, rng, alive)
}

/// The **weighted** three-phase decomposition — the extension the paper's
/// §4.2 footnote asks for: every count is replaced by vertex mass, so the
/// guarantee becomes "the deleted *weight* is at most ε·w(V) whp". Centres
/// sample with `p_{v,i} = 2^i·ln ñ·w_v/W(N^{4tR}(v))` and the carve deletes
/// the *lightest* level of the interval. Unit weights reproduce
/// [`three_phase_ldd`] exactly (same RNG draws).
///
/// # Panics
///
/// Panics if `weights.len() != g.n()`.
pub fn three_phase_ldd_weighted(
    g: &Graph,
    params: &LddParams,
    weights: &[u64],
    rng: &mut StdRng,
    alive: Option<&[bool]>,
) -> ThreePhaseOutcome {
    assert_eq!(weights.len(), g.n(), "one weight per vertex");
    run_three_phase(g, params, Some(weights), rng, alive)
}

fn run_three_phase(
    g: &Graph,
    params: &LddParams,
    weights: Option<&[u64]>,
    rng: &mut StdRng,
    alive: Option<&[bool]>,
) -> ThreePhaseOutcome {
    let n = g.n();
    let mass = |v: usize| weights.map_or(1u64, |w| w[v]);
    let mut ledger = RoundLedger::new();
    let mut stats = ThreePhaseStats::default();

    let initial_alive: Vec<bool> = match alive {
        Some(a) => {
            assert_eq!(a.len(), n, "alive mask length mismatch");
            a.to_vec()
        }
        None => vec![true; n],
    };
    // `state[v]`: 0 = active, 1 = removed (carved into a cluster),
    // 2 = deleted, 3 = dead (outside the alive mask).
    let mut state: Vec<u8> = initial_alive
        .iter()
        .map(|&a| if a { 0 } else { 3 })
        .collect();

    // n_v = |N^{4tR}(v)| (Algorithm 2, line 1). Radii this large almost
    // always cover whole components; certify with one eccentricity check
    // per component and only fall back to per-vertex truncated BFS when
    // the certificate fails.
    ledger.begin_phase("estimate n_v (radius 4tR)");
    ledger.charge_gather(params.estimate_radius());
    ledger.end_phase();
    let n_v = estimate_ball_mass(g, params.estimate_radius(), &initial_alive, weights);

    // Phases 1 and 2.
    for i in 1..=params.t + 1 {
        let is_phase2 = i == params.t + 1;
        if is_phase2 && !params.run_phase2 {
            break;
        }
        let (a_i, b_i) = params.interval(i);
        ledger.begin_phase(if is_phase2 {
            "phase2 carve [R+1,2R]".to_string()
        } else {
            format!("phase1/iter{i} carve")
        });
        ledger.charge_gather(b_i);
        let active: Vec<bool> = state.iter().map(|&s| s == 0).collect();
        let mut centers: Vec<Vertex> = Vec::new();
        for v in 0..n as Vertex {
            if active[v as usize]
                && bernoulli(
                    rng,
                    params.sampling_probability_mass(i, mass(v as usize), n_v[v as usize]),
                )
            {
                centers.push(v);
            }
        }
        if is_phase2 {
            stats.centers_phase2 = centers.len();
        } else {
            stats.centers_per_iteration.push(centers.len());
        }
        // All centres carve against the same residual graph; deletions
        // dominate removals (§3.1.2).
        let mut to_delete = vec![false; n];
        let mut to_remove = vec![false; n];
        for &c in &centers {
            let ball = traversal::ball(g, &[c], b_i, Some(&active));
            let j_star = match weights {
                None => sparsest_level(&ball, a_i, b_i),
                Some(w) => lightest_level(&ball, a_i, b_i, w),
            };
            for &v in ball.level(j_star) {
                to_delete[v as usize] = true;
            }
            for v in ball.within(j_star.saturating_sub(1)) {
                to_remove[v as usize] = true;
            }
        }
        for v in 0..n {
            if state[v] != 0 {
                continue;
            }
            if to_delete[v] {
                state[v] = 2;
                stats.deleted_mass += mass(v);
                if is_phase2 {
                    stats.deleted_phase2 += 1;
                } else {
                    stats.deleted_phase1 += 1;
                }
            } else if to_remove[v] {
                state[v] = 1;
                stats.removed_carving += 1;
            }
        }
        ledger.end_phase();
    }

    // Phase 3: Elkin–Neiman on the residual graph.
    let residual: Vec<bool> = state.iter().map(|&s| s == 0).collect();
    let en = elkin_neiman(
        g,
        &EnParams::new(params.phase3_lambda, params.n_tilde),
        rng,
        Some(&residual),
    );
    for v in 0..n {
        if residual[v] && en.deleted[v] {
            state[v] = 2;
            stats.deleted_mass += mass(v);
            stats.deleted_phase3 += 1;
        }
    }
    ledger.absorb(en.ledger);

    // Final decomposition: clusters = connected components of G[V ∖ D].
    let survivors: Vec<bool> = state.iter().map(|&s| s == 0 || s == 1).collect();
    let (comp, _k) = g.connected_components_masked(&survivors);
    let labels: Vec<Option<Vertex>> = (0..n)
        .map(|v| {
            if survivors[v] {
                // Use the smallest vertex of the component as its label.
                Some(component_representative(&comp, v))
            } else {
                None
            }
        })
        .collect();
    let decomposition = Decomposition::from_labels(n, &labels, Some(&initial_alive), ledger);
    ThreePhaseOutcome {
        decomposition,
        stats,
    }
}

/// Representative label for a component: the component id itself is a
/// stable label, so just use it (offset encoding keeps `Vertex` type).
fn component_representative(comp: &[u32], v: usize) -> Vertex {
    comp[v]
}

/// Index `j* ∈ [a, b]` of the smallest level set (ties: smallest `j`).
/// Levels past the reached radius are empty, so a ball that dies before
/// `a` yields `j* = a` with nothing deleted — the centre swallows its
/// whole residual component.
fn sparsest_level(ball: &traversal::Ball, a: usize, b: usize) -> usize {
    let mut best = a;
    let mut best_size = ball.level(a).len();
    for j in a + 1..=b {
        let s = ball.level(j).len();
        if s < best_size {
            best = j;
            best_size = s;
            if s == 0 {
                break;
            }
        }
    }
    best
}

/// Index `j* ∈ [a, b]` of the lightest level set by vertex mass
/// (ties: smallest `j`).
fn lightest_level(ball: &traversal::Ball, a: usize, b: usize, weights: &[u64]) -> usize {
    let level_mass = |j: usize| -> u64 { ball.level(j).iter().map(|&v| weights[v as usize]).sum() };
    let mut best = a;
    let mut best_mass = level_mass(a);
    for j in a + 1..=b {
        let m = level_mass(j);
        if m < best_mass {
            best = j;
            best_mass = m;
            if m == 0 {
                break;
            }
        }
    }
    best
}

/// Mass of `N^r(v)` for every alive vertex (vertex count when `weights`
/// is `None`), with a per-component shortcut when the radius provably
/// covers the component.
fn estimate_ball_mass(g: &Graph, r: usize, alive: &[bool], weights: Option<&[u64]>) -> Vec<u64> {
    let mass = |v: usize| weights.map_or(1u64, |w| w[v]);
    let n = g.n();
    let (comp, k) = g.connected_components_masked(alive);
    let mut comp_mass = vec![0u64; k];
    let mut comp_seen_vertex: Vec<Option<Vertex>> = vec![None; k];
    for v in 0..n {
        if alive[v] {
            comp_mass[comp[v] as usize] += mass(v);
            comp_seen_vertex[comp[v] as usize].get_or_insert(v as Vertex);
        }
    }
    let mut covered = vec![false; k];
    for c in 0..k {
        if let Some(v) = comp_seen_vertex[c] {
            let dist = traversal::bfs_distances_masked(g, &[v], alive);
            let ecc = dist
                .iter()
                .filter(|&&d| d != traversal::UNREACHABLE)
                .max()
                .copied()
                .unwrap_or(0);
            covered[c] = 2 * ecc as usize <= r;
        }
    }
    (0..n)
        .map(|v| {
            if !alive[v] {
                0
            } else if covered[comp[v] as usize] {
                comp_mass[comp[v] as usize]
            } else {
                traversal::ball(g, &[v as Vertex], r, Some(alive))
                    .iter()
                    .map(|u| mass(u as usize))
                    .sum()
            }
        })
        .collect()
}

/// `|N^r(v)|` for every alive vertex, with a per-component shortcut when
/// the radius provably covers the component.
#[allow(dead_code)]
fn estimate_ball_sizes(g: &Graph, r: usize, alive: &[bool]) -> Vec<usize> {
    let n = g.n();
    let (comp, k) = g.connected_components_masked(alive);
    let mut comp_size = vec![0usize; k];
    let mut comp_seen_vertex: Vec<Option<Vertex>> = vec![None; k];
    for v in 0..n {
        if alive[v] {
            comp_size[comp[v] as usize] += 1;
            comp_seen_vertex[comp[v] as usize].get_or_insert(v as Vertex);
        }
    }
    // Certificate: diameter(component) <= 2·ecc(any vertex).
    let mut covered = vec![false; k];
    for c in 0..k {
        if let Some(v) = comp_seen_vertex[c] {
            let dist = traversal::bfs_distances_masked(g, &[v], alive);
            let ecc = dist
                .iter()
                .filter(|&&d| d != traversal::UNREACHABLE)
                .max()
                .copied()
                .unwrap_or(0);
            covered[c] = 2 * ecc as usize <= r;
        }
    }
    (0..n)
        .map(|v| {
            if !alive[v] {
                0
            } else if covered[comp[v] as usize] {
                comp_size[comp[v] as usize]
            } else {
                traversal::ball(g, &[v as Vertex], r, Some(alive)).len()
            }
        })
        .collect()
}

/// The optional diameter-improvement step (§3.2, proof of Theorem 1.1):
/// every cluster locally re-decomposes itself with Lemma C.1 at
/// `λ = ε/4` (retrying until at most `ε/2` of the cluster is deleted —
/// local computation is free in the LOCAL model), improving the diameter to
/// `O(log ñ / ε)` at the cost of one extra gather over the old diameter.
pub fn improve_diameter(
    g: &Graph,
    outcome: &ThreePhaseOutcome,
    params: &LddParams,
    rng: &mut StdRng,
) -> Decomposition {
    let n = g.n();
    let lambda = params.eps / 4.0;
    let en_params = EnParams::new(lambda, params.n_tilde);
    let mut labels: Vec<Option<Vertex>> = vec![None; n];
    let mut ledger = outcome.decomposition.ledger.clone();
    let mut max_old_diameter = 0usize;
    for cluster in &outcome.decomposition.clusters {
        let mask = {
            let mut m = vec![false; n];
            for &v in cluster {
                m[v as usize] = true;
            }
            m
        };
        max_old_diameter =
            max_old_diameter.max(traversal::weak_diameter(g, cluster).unwrap_or(0) as usize);
        // Retry until the deleted fraction is within budget (Markov: each
        // attempt succeeds with probability ≥ 1/2; cap attempts for
        // robustness and keep the best).
        let mut best: Option<Decomposition> = None;
        for _ in 0..50 {
            let d = elkin_neiman(g, &en_params, rng, Some(&mask));
            let better = best
                .as_ref()
                .is_none_or(|b| d.deleted_count() < b.deleted_count());
            if better {
                best = Some(d);
            }
            if best.as_ref().unwrap().deleted_count() as f64
                <= params.eps / 2.0 * cluster.len() as f64
            {
                break;
            }
        }
        let d = best.expect("at least one attempt");
        for v in cluster {
            if let Some(cid) = d.cluster_of[*v as usize] {
                // Label sub-clusters by their smallest member, offset to
                // avoid collisions across parent clusters.
                labels[*v as usize] = Some(d.clusters[cid as usize][0]);
            }
        }
    }
    ledger.begin_phase("diameter improvement (local re-decomposition)");
    ledger.charge_gather(max_old_diameter);
    ledger.end_phase();
    let alive: Vec<bool> = (0..n)
        .map(|v| outcome.decomposition.cluster_of[v].is_some() || outcome.decomposition.deleted[v])
        .collect();
    Decomposition::from_labels(n, &labels, Some(&alive), ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_local::RoundCost;

    fn small_params(eps: f64, n: usize) -> LddParams {
        // Tiny R so tests exercise all phases on small graphs.
        LddParams::scaled(eps, n as f64, 0.01)
    }

    #[test]
    fn intervals_are_disjoint_and_ordered() {
        let p = LddParams::paper(0.2, 1000.0);
        // I_{i+1} ends exactly where I_i begins (a_i = b_{i+1} + 1).
        for i in 1..=p.t {
            let (a_i, b_i) = p.interval(i);
            let (a_next, b_next) = p.interval(i + 1);
            assert_eq!(b_i - a_i + 1, p.r, "interval length");
            assert_eq!(a_i, b_next + 1, "adjacent intervals");
            assert!(a_next < a_i);
            let _ = b_next;
        }
        // Phase 2 interval is [R+1, 2R].
        assert_eq!(p.interval(p.t + 1), (p.r + 1, 2 * p.r));
        // First interval ends at (t+2)R.
        assert_eq!(p.interval(1).1, (p.t + 2) * p.r);
    }

    #[test]
    fn paper_parameters_match_formulas() {
        let p = LddParams::paper(0.2, 1000.0);
        assert_eq!(p.t, 7);
        assert_eq!(p.r, ((200.0 * 7.0 * 1000f64.ln()) / 0.2).ceil() as usize);
        assert!((p.phase3_lambda - 0.02).abs() < 1e-12);
    }

    #[test]
    fn sampling_probability_grows_with_iteration() {
        let p = LddParams::paper(0.2, 1000.0);
        let n_v = 500;
        for i in 1..p.t {
            assert!(p.sampling_probability(i, n_v) < p.sampling_probability(i + 1, n_v));
        }
        // Phase 2 has the extra ln(20/ε) factor.
        assert!(p.sampling_probability(p.t + 1, n_v) > 2.0 * p.sampling_probability(p.t, n_v));
    }

    #[test]
    fn decomposition_is_valid_on_families() {
        let mut rng = gen::seeded_rng(41);
        for g in [
            gen::grid(12, 12),
            gen::cycle(150),
            gen::random_tree(120, &mut rng),
            gen::gnp(120, 0.03, &mut rng),
        ] {
            let params = small_params(0.3, g.n());
            let out = three_phase_ldd(&g, &params, &mut rng, None);
            out.decomposition.validate(&g, None).unwrap();
        }
    }

    #[test]
    fn deletion_budget_holds_on_bounded_degree_graphs() {
        // With real (unscaled-in-structure) parameters the guarantee is
        // whp; with scaled constants we still expect the budget to hold
        // on easy instances across many seeds — but not at the fully
        // degenerate R = 2 (r_scale <= 0.02 here), where the deleted
        // fraction genuinely straddles ε and only the in-expectation
        // bound survives. R = 3 is the smallest non-degenerate interval.
        let g = gen::grid(15, 15);
        let params = LddParams::scaled(0.4, g.n() as f64, 0.03);
        let mut worst = 0.0f64;
        for seed in 0..20 {
            let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), None);
            worst = worst.max(out.decomposition.deleted_fraction());
        }
        assert!(
            worst <= 0.4 + 1e-9,
            "worst deleted fraction {worst} above ε across seeds"
        );
    }

    #[test]
    fn weak_diameter_bound_of_lemma_3_2() {
        let mut rng = gen::seeded_rng(43);
        let g = gen::gnp(200, 0.02, &mut rng);
        let params = small_params(0.3, 200);
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        let bound = params.diameter_bound() as u32;
        assert!(
            out.decomposition.max_weak_diameter(&g) <= bound,
            "diameter exceeds Lemma 3.2 bound"
        );
    }

    #[test]
    fn phase_accounting_sums_to_deleted() {
        let mut rng = gen::seeded_rng(44);
        let g = gen::grid(14, 14);
        let params = small_params(0.3, g.n());
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        assert_eq!(
            out.stats.deleted_phase1 + out.stats.deleted_phase2 + out.stats.deleted_phase3,
            out.decomposition.deleted_count()
        );
        assert_eq!(out.stats.centers_per_iteration.len(), params.t);
    }

    #[test]
    fn rounds_scale_as_t_squared_r() {
        let g = gen::path(20);
        let params = small_params(0.3, 1000);
        let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(4), None);
        let rounds = out.decomposition.rounds();
        // Upper bound: estimate 4tR + Σ_i b_i + 2R + EN rounds.
        let mut expected = 4 * params.t * params.r;
        for i in 1..=params.t {
            expected += params.interval(i).1;
        }
        expected += 2 * params.r;
        expected += (4.0 * params.n_tilde.ln() / params.phase3_lambda).ceil() as usize;
        assert_eq!(rounds, expected);
    }

    #[test]
    fn masked_run_respects_alive() {
        let mut rng = gen::seeded_rng(45);
        let g = gen::grid(10, 10);
        let alive: Vec<bool> = (0..100).map(|v| v % 7 != 0).collect();
        let params = small_params(0.3, 100);
        let out = three_phase_ldd(&g, &params, &mut rng, Some(&alive));
        out.decomposition.validate(&g, Some(&alive)).unwrap();
    }

    #[test]
    fn skip_phase2_variant_still_valid() {
        let mut rng = gen::seeded_rng(46);
        let g = gen::grid(10, 10);
        let mut params = small_params(0.3, 100);
        params.run_phase2 = false;
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        out.decomposition.validate(&g, None).unwrap();
        assert_eq!(out.stats.centers_phase2, 0);
    }

    #[test]
    fn improve_diameter_tightens_and_stays_valid() {
        let mut rng = gen::seeded_rng(47);
        let g = gen::cycle(300);
        let params = small_params(0.25, 300);
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        let improved = improve_diameter(&g, &out, &params, &mut rng);
        improved.validate(&g, None).unwrap();
        // Deleted fraction grows by at most ~ε/2 over the original.
        assert!(
            improved.deleted_fraction()
                <= out.decomposition.deleted_fraction() + params.eps / 2.0 + 0.05
        );
        // Diameter is within the Lemma C.1 bound for λ = ε/4.
        let bound = 8.0 * params.n_tilde.ln() / (params.eps / 4.0);
        assert!(f64::from(improved.max_weak_diameter(&g)) <= bound);
    }

    #[test]
    fn sparsest_level_picks_zero_when_ball_exhausted() {
        let g = gen::path(5);
        let ball = traversal::ball(&g, &[0], 10, None);
        // Levels 5.. are empty.
        assert_eq!(sparsest_level(&ball, 5, 8), 5);
        assert_eq!(sparsest_level(&ball, 2, 3), 2);
    }

    #[test]
    fn weighted_unit_weights_match_unweighted_exactly() {
        // Same RNG stream → identical decomposition.
        let g = gen::gnp(150, 0.03, &mut gen::seeded_rng(90));
        let params = small_params(0.3, 150);
        let a = three_phase_ldd(&g, &params, &mut gen::seeded_rng(7), None);
        let b = three_phase_ldd_weighted(&g, &params, &vec![1; 150], &mut gen::seeded_rng(7), None);
        assert_eq!(a.decomposition.deleted, b.decomposition.deleted);
        assert_eq!(a.decomposition.clusters, b.decomposition.clusters);
        assert_eq!(
            b.stats.deleted_mass as usize,
            b.decomposition.deleted_count()
        );
    }

    #[test]
    fn weighted_budget_holds_on_weighted_graphs() {
        // Skewed weights: a few heavy vertices; the deleted *mass* must
        // stay within ε·W across seeds.
        let g = gen::grid(14, 14);
        let weights: Vec<u64> = (0..196)
            .map(|v| if v % 29 == 0 { 100 } else { 1 })
            .collect();
        let total: u64 = weights.iter().sum();
        let eps = 0.3;
        let params = small_params(eps, 196);
        for seed in 0..15 {
            let out =
                three_phase_ldd_weighted(&g, &params, &weights, &mut gen::seeded_rng(seed), None);
            out.decomposition.validate(&g, None).unwrap();
            assert!(
                out.stats.deleted_mass as f64 <= eps * total as f64,
                "seed {seed}: deleted mass {} > ε·W = {}",
                out.stats.deleted_mass,
                eps * total as f64
            );
        }
    }

    #[test]
    fn weighted_carve_avoids_heavy_levels() {
        // A path where one interval level is heavy: the lightest-level rule
        // must never delete the heavy vertex when a lighter level is in
        // range.
        let g = gen::path(40);
        let mut weights = vec![1u64; 40];
        weights[20] = 1_000;
        let ball = traversal::ball(&g, &[0], 30, None);
        let j = lightest_level(&ball, 18, 24, &weights);
        assert_ne!(j, 20, "heavy level must not be the lightest");
    }
}
