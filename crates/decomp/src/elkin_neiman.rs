//! The Elkin–Neiman low-diameter decomposition (Lemma C.1).
//!
//! Every vertex draws a capped exponential shift `T_v ~ Exp(λ)` and ranks
//! all vertices by `m_u(v) = T_u − dist(u, v)`; `v` is **deleted** when the
//! runner-up comes within 1 of the maximum, otherwise `v` joins the cluster
//! of the argmax. Guarantees (Lemma C.1): strong diameter `≤ 8 ln ñ / λ`,
//! per-vertex deletion probability `≤ 1 − e^{−λ} + ñ^{−3}`, and `4 ln ñ/λ`
//! rounds — but the *global* deletion count holds only **in expectation**,
//! which is exactly the deficiency (C1) that Theorem 1.1 repairs (see
//! Claim C.1 and the `three_phase` module).

use crate::result::Decomposition;
use crate::shift::{draw_shifts, propagate, Keep};
use dapc_graph::{Graph, Vertex};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Parameters of the Elkin–Neiman decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnParams {
    /// Exponential rate `λ`; deletion probability is `≈ 1 − e^{−λ} ≈ λ`.
    pub lambda: f64,
    /// The global size hint `ñ ≥ n` (caps shifts at `4 ln ñ / λ`).
    pub n_tilde: f64,
}

impl EnParams {
    /// Parameters matching a target deletion fraction `λ` on an `ñ`-vertex
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda` and `n_tilde > 1`.
    pub fn new(lambda: f64, n_tilde: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(n_tilde > 1.0, "n_tilde must exceed 1");
        EnParams { lambda, n_tilde }
    }

    /// The round cost `⌈4 ln ñ / λ⌉` of one run (Lemma C.1).
    pub fn rounds(&self) -> usize {
        (4.0 * self.n_tilde.ln() / self.lambda).ceil() as usize
    }

    /// The strong-diameter guarantee `8 ln ñ / λ`.
    pub fn diameter_bound(&self) -> f64 {
        8.0 * self.n_tilde.ln() / self.lambda
    }

    /// The per-vertex deletion probability bound `1 − e^{−λ} + ñ^{−3}`.
    pub fn deletion_probability_bound(&self) -> f64 {
        1.0 - (-self.lambda).exp() + self.n_tilde.powf(-3.0)
    }
}

/// Runs the Elkin–Neiman decomposition on the alive subgraph of `g`.
///
/// # Examples
///
/// ```
/// use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
/// use dapc_graph::gen;
///
/// let g = gen::grid(12, 12);
/// let mut rng = gen::seeded_rng(7);
/// let params = EnParams::new(0.4, 144.0);
/// let d = elkin_neiman(&g, &params, &mut rng, None);
/// d.validate(&g, None).unwrap();
/// assert!(f64::from(d.max_weak_diameter(&g)) <= params.diameter_bound());
/// ```
pub fn elkin_neiman(
    g: &Graph,
    params: &EnParams,
    rng: &mut StdRng,
    alive: Option<&[bool]>,
) -> Decomposition {
    let n = g.n();
    let shifts = draw_shifts(n, params.lambda, params.n_tilde, rng, alive);
    let labels = propagate(g, &shifts, Keep::Top(2), alive);
    let mut label_of: Vec<Option<Vertex>> = vec![None; n];
    for v in 0..n {
        if !alive.is_none_or(|a| a[v]) {
            continue;
        }
        let ls = &labels[v];
        match ls.len() {
            0 => {} // unreachable for alive vertices (own label), keep None
            1 => label_of[v] = Some(ls[0].source),
            _ => {
                if ls[1].value >= ls[0].value - 1.0 {
                    label_of[v] = None; // deleted
                } else {
                    label_of[v] = Some(ls[0].source);
                }
            }
        }
    }
    let mut ledger = RoundLedger::new();
    ledger.begin_phase("elkin-neiman broadcast");
    ledger.charge_gather(params.rounds());
    ledger.end_phase();
    Decomposition::from_labels(n, &label_of, alive, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_local::RoundCost;

    #[test]
    fn decomposition_is_valid_on_families() {
        let mut rng = gen::seeded_rng(11);
        for g in [
            gen::grid(10, 10),
            gen::cycle(60),
            gen::random_regular(80, 4, &mut rng),
            gen::random_tree(70, &mut rng),
        ] {
            let params = EnParams::new(0.3, g.n() as f64);
            let d = elkin_neiman(&g, &params, &mut rng, None);
            d.validate(&g, None).unwrap();
        }
    }

    #[test]
    fn diameter_bound_holds() {
        let mut rng = gen::seeded_rng(13);
        for seed in 0..10 {
            let g = gen::gnp(150, 0.02, &mut gen::seeded_rng(seed));
            let params = EnParams::new(0.5, 150.0);
            let d = elkin_neiman(&g, &params, &mut rng, None);
            let diam = d.max_strong_diameter(&g).expect("clusters connected");
            assert!(
                f64::from(diam) <= params.diameter_bound(),
                "strong diameter {diam} exceeds bound {}",
                params.diameter_bound()
            );
        }
    }

    #[test]
    fn deletion_rate_tracks_lambda_on_bounded_degree_graphs() {
        // On a large cycle the deletion probability should be ≈ 1 − e^{−λ}
        // (well below the generous per-vertex bound).
        let mut rng = gen::seeded_rng(17);
        let g = gen::cycle(4000);
        let params = EnParams::new(0.2, 4000.0);
        let mut total_deleted = 0usize;
        let trials = 10;
        for _ in 0..trials {
            let d = elkin_neiman(&g, &params, &mut rng, None);
            total_deleted += d.deleted_count();
        }
        let rate = total_deleted as f64 / (trials * g.n()) as f64;
        let expected = 1.0 - (-params.lambda_for_tests()).exp();
        assert!(
            rate < 2.0 * expected + 0.02,
            "deletion rate {rate} far above expectation {expected}"
        );
        assert!(rate > 0.0, "some deletions must occur at this scale");
    }

    #[test]
    fn masked_run_only_touches_alive() {
        let mut rng = gen::seeded_rng(19);
        let g = gen::grid(8, 8);
        let alive: Vec<bool> = (0..64).map(|v| v % 3 != 0).collect();
        let params = EnParams::new(0.4, 64.0);
        let d = elkin_neiman(&g, &params, &mut rng, Some(&alive));
        d.validate(&g, Some(&alive)).unwrap();
        for (v, &live) in alive.iter().enumerate() {
            if !live {
                assert!(d.cluster_of[v].is_none());
                assert!(!d.deleted[v]);
            }
        }
    }

    #[test]
    fn rounds_match_lemma() {
        let params = EnParams::new(0.25, 1000.0);
        let mut rng = gen::seeded_rng(2);
        let g = gen::path(10);
        let d = elkin_neiman(&g, &params, &mut rng, None);
        assert_eq!(d.rounds(), (4.0 * 1000f64.ln() / 0.25).ceil() as usize);
    }

    #[test]
    fn everything_clusters_when_lambda_tiny() {
        // λ so small that shifts dwarf the graph: one cluster, no deletions
        // (almost surely).
        let mut rng = gen::seeded_rng(3);
        let g = gen::path(30);
        let params = EnParams::new(0.01, 30.0);
        let d = elkin_neiman(&g, &params, &mut rng, None);
        assert!(d.deleted_fraction() < 0.5);
        d.validate(&g, None).unwrap();
    }

    impl EnParams {
        pub(crate) fn lambda_for_tests(&self) -> f64 {
            self.lambda
        }
    }
}
