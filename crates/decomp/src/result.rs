//! The common output type of all low-diameter decompositions.

use dapc_graph::{traversal, Graph, Vertex};
use dapc_local::{RoundCost, RoundLedger};

/// A low-diameter decomposition (Definition 1.4): a partition of the alive
/// vertices into mutually non-adjacent clusters plus a set of deleted
/// ("unclustered") vertices.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Cluster id per vertex; `None` = deleted (or outside the alive mask).
    pub cluster_of: Vec<Option<u32>>,
    /// Vertex lists per cluster (sorted).
    pub clusters: Vec<Vec<Vertex>>,
    /// Deletion mask (only meaningful for alive vertices).
    pub deleted: Vec<bool>,
    /// LOCAL round cost of computing the decomposition.
    pub ledger: RoundLedger,
}

impl Decomposition {
    /// Assembles a decomposition from a per-vertex cluster-centre label:
    /// clusters are the groups of equal `Some(centre)`; `None` = deleted.
    /// Vertices outside `alive` are neither deleted nor clustered.
    pub fn from_labels(
        n: usize,
        label: &[Option<Vertex>],
        alive: Option<&[bool]>,
        ledger: RoundLedger,
    ) -> Self {
        assert_eq!(label.len(), n);
        let is_alive = |v: usize| alive.is_none_or(|a| a[v]);
        let mut centre_ids: std::collections::BTreeMap<Vertex, u32> =
            std::collections::BTreeMap::new();
        let mut clusters: Vec<Vec<Vertex>> = Vec::new();
        let mut cluster_of = vec![None; n];
        let mut deleted = vec![false; n];
        for v in 0..n {
            if !is_alive(v) {
                continue;
            }
            match label[v] {
                Some(c) => {
                    let id = *centre_ids.entry(c).or_insert_with(|| {
                        clusters.push(Vec::new());
                        (clusters.len() - 1) as u32
                    });
                    clusters[id as usize].push(v as Vertex);
                    cluster_of[v] = Some(id);
                }
                None => deleted[v] = true,
            }
        }
        for c in &mut clusters {
            c.sort_unstable();
        }
        Decomposition {
            cluster_of,
            clusters,
            deleted,
            ledger,
        }
    }

    /// Number of deleted (unclustered) vertices.
    pub fn deleted_count(&self) -> usize {
        self.deleted.iter().filter(|&&d| d).count()
    }

    /// Number of alive vertices (clustered + deleted).
    pub fn alive_count(&self) -> usize {
        self.deleted_count() + self.clusters.iter().map(Vec::len).sum::<usize>()
    }

    /// Fraction of alive vertices that were deleted.
    pub fn deleted_fraction(&self) -> f64 {
        let alive = self.alive_count();
        if alive == 0 {
            0.0
        } else {
            self.deleted_count() as f64 / alive as f64
        }
    }

    /// Checks Definition 1.4's separation property: no edge of `g` joins
    /// two different clusters.
    pub fn clusters_are_separated(&self, g: &Graph) -> bool {
        g.edges().all(
            |(u, v)| match (self.cluster_of[u as usize], self.cluster_of[v as usize]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            },
        )
    }

    /// Maximum weak diameter over clusters (`0` when there are none).
    ///
    /// # Panics
    ///
    /// Panics if some cluster is disconnected in `g` (weak diameter is then
    /// undefined — decompositions never produce such clusters).
    pub fn max_weak_diameter(&self, g: &Graph) -> u32 {
        self.clusters
            .iter()
            .map(|c| traversal::weak_diameter(g, c).expect("cluster must be connected in G"))
            .max()
            .unwrap_or(0)
    }

    /// Maximum strong diameter over clusters.
    pub fn max_strong_diameter(&self, g: &Graph) -> Option<u32> {
        let mut best = 0;
        for c in &self.clusters {
            best = best.max(traversal::strong_diameter(g, c)?);
        }
        Some(best)
    }

    /// Full Definition 1.4 validation: separation plus partition sanity.
    pub fn validate(&self, g: &Graph, alive: Option<&[bool]>) -> Result<(), String> {
        let n = g.n();
        let is_alive = |v: usize| alive.is_none_or(|a| a[v]);
        for v in 0..n {
            let in_cluster = self.cluster_of[v].is_some();
            let del = self.deleted[v];
            if is_alive(v) {
                if in_cluster == del {
                    return Err(format!(
                        "vertex {v}: must be exactly one of clustered/deleted (clustered={in_cluster}, deleted={del})"
                    ));
                }
            } else if in_cluster || del {
                return Err(format!("vertex {v} is dead but labelled"));
            }
        }
        if !self.clusters_are_separated(g) {
            return Err("adjacent clusters detected".into());
        }
        for (i, c) in self.clusters.iter().enumerate() {
            for &v in c {
                if self.cluster_of[v as usize] != Some(i as u32) {
                    return Err(format!("cluster list/id mismatch at vertex {v}"));
                }
            }
        }
        Ok(())
    }
}

impl RoundCost for Decomposition {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn from_labels_groups_by_centre() {
        let g = gen::path(5);
        // Clusters {0,1} (centre 0) and {3,4} (centre 4); vertex 2 deleted.
        let labels = vec![Some(0), Some(0), None, Some(4), Some(4)];
        let d = Decomposition::from_labels(5, &labels, None, RoundLedger::new());
        assert_eq!(d.clusters.len(), 2);
        assert_eq!(d.deleted_count(), 1);
        assert!((d.deleted_fraction() - 0.2).abs() < 1e-12);
        assert!(d.clusters_are_separated(&g));
        d.validate(&g, None).unwrap();
        assert_eq!(d.max_weak_diameter(&g), 1);
        assert_eq!(d.max_strong_diameter(&g), Some(1));
    }

    #[test]
    fn separation_violation_detected() {
        let g = gen::path(3);
        let labels = vec![Some(0), Some(2), Some(2)];
        let d = Decomposition::from_labels(3, &labels, None, RoundLedger::new());
        assert!(!d.clusters_are_separated(&g));
        assert!(d.validate(&g, None).is_err());
    }

    #[test]
    fn alive_mask_respected() {
        let g = gen::path(4);
        let alive = vec![true, true, false, false];
        let labels = vec![Some(0), Some(0), None, None];
        let d = Decomposition::from_labels(4, &labels, Some(&alive), RoundLedger::new());
        assert_eq!(d.alive_count(), 2);
        assert_eq!(d.deleted_count(), 0);
        d.validate(&g, Some(&alive)).unwrap();
    }

    #[test]
    fn empty_decomposition() {
        let g = gen::path(2);
        let d = Decomposition::from_labels(2, &[None, None], None, RoundLedger::new());
        assert_eq!(d.deleted_fraction(), 1.0);
        assert_eq!(d.max_weak_diameter(&g), 0);
        d.validate(&g, None).unwrap();
    }
}
