//! Property-based tests on the Definition 1.4 invariants of every
//! decomposition algorithm.

use dapc_decomp::blackbox::{blackbox_ldd, BlackboxParams};
use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc_decomp::mpx::mpx;
use dapc_decomp::network_decomposition::network_decomposition;
use dapc_decomp::sparse_cover::sparse_cover;
use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
use dapc_graph::{gen, Graph, Hypergraph, Vertex};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as Vertex, 0..n as Vertex), 0..(2 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Elkin–Neiman always emits a valid Definition 1.4 decomposition with
    /// clusters within the diameter bound.
    #[test]
    fn elkin_neiman_invariants(g in arb_graph(60), seed in 0u64..50, lam in 1usize..8) {
        let lambda = lam as f64 / 10.0;
        let params = EnParams::new(lambda, g.n().max(2) as f64);
        let d = elkin_neiman(&g, &params, &mut gen::seeded_rng(seed), None);
        prop_assert!(d.validate(&g, None).is_ok());
        if !d.clusters.is_empty() {
            let diam = d.max_strong_diameter(&g);
            prop_assert!(diam.is_some(), "clusters must be connected");
            prop_assert!(f64::from(diam.unwrap()) <= params.diameter_bound());
        }
    }

    /// The three-phase LDD maintains the same invariants on arbitrary
    /// graphs, masks included.
    #[test]
    fn three_phase_invariants(g in arb_graph(50), seed in 0u64..20) {
        let params = LddParams::scaled(0.3, g.n() as f64, 0.02);
        let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), None);
        prop_assert!(out.decomposition.validate(&g, None).is_ok());
        // Phase accounting is consistent.
        let s = &out.stats;
        prop_assert_eq!(
            s.deleted_phase1 + s.deleted_phase2 + s.deleted_phase3,
            out.decomposition.deleted_count()
        );
    }

    /// Masked three-phase runs never label dead vertices.
    #[test]
    fn three_phase_mask_safety(g in arb_graph(40), seed in 0u64..10, modulus in 2usize..5) {
        let alive: Vec<bool> = (0..g.n()).map(|v| v % modulus != 0).collect();
        let params = LddParams::scaled(0.25, g.n() as f64, 0.02);
        let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), Some(&alive));
        prop_assert!(out.decomposition.validate(&g, Some(&alive)).is_ok());
        for (v, &live) in alive.iter().enumerate() {
            if !live {
                prop_assert!(out.decomposition.cluster_of[v].is_none());
                prop_assert!(!out.decomposition.deleted[v]);
            }
        }
    }

    /// MPX assigns every vertex a centre in its own component, and cut
    /// edges are exactly the inter-cluster edges.
    #[test]
    fn mpx_invariants(g in arb_graph(50), seed in 0u64..20) {
        let c = mpx(&g, 0.3, g.n().max(2) as f64, &mut gen::seeded_rng(seed));
        let (comp, _) = g.connected_components();
        for v in 0..g.n() {
            let ctr = c.center_of[v];
            prop_assert_eq!(comp[v], comp[ctr as usize], "centre in same component");
        }
        for &(u, v) in &c.cut_edges {
            prop_assert_ne!(c.center_of[u as usize], c.center_of[v as usize]);
        }
    }

    /// Sparse covers cover every hyperedge and every vertex.
    #[test]
    fn sparse_cover_invariants(g in arb_graph(40), seed in 0u64..20) {
        let h = Hypergraph::from_graph(&g);
        let cover = sparse_cover(&h, 0.4, g.n().max(2) as f64, &mut gen::seeded_rng(seed), None, None);
        prop_assert!(cover.uncovered_edges(&h, None, None).is_empty());
        for v in 0..g.n() as Vertex {
            prop_assert!(cover.multiplicity(v) >= 1);
        }
        // Membership lists agree with cluster lists.
        for (id, cluster) in cover.clusters.iter().enumerate() {
            for &v in cluster {
                prop_assert!(cover.membership[v as usize].contains(&(id as u32)));
            }
        }
    }

    /// Network decompositions are proper colourings of valid clusterings.
    #[test]
    fn network_decomposition_invariants(g in arb_graph(40), seed in 0u64..20) {
        let nd = network_decomposition(&g, g.n().max(2) as f64, &mut gen::seeded_rng(seed));
        prop_assert!(nd.validate(&g).is_ok());
        prop_assert!(nd.colors >= 1);
    }

    /// The blackbox construction obeys Definition 1.4 too.
    #[test]
    fn blackbox_invariants(g in arb_graph(40), seed in 0u64..10) {
        let params = BlackboxParams::new(0.3, g.n() as f64, 0.02);
        let d = blackbox_ldd(&g, &params, &mut gen::seeded_rng(seed));
        prop_assert!(d.validate(&g, None).is_ok());
    }
}
