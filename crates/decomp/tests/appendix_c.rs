//! Reproduction of Appendix C: the classical low-diameter decompositions
//! fail their deletion budget with probability `Ω(ε)` on specific graph
//! families, while the Theorem 1.1 algorithm does not (experiment E2).

use dapc_conc::FailureCounter;
use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc_decomp::mpx::mpx;
use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
use dapc_graph::gen;

/// Claim C.1: on the clique `K_n`, Elkin–Neiman deletes `n − 1` vertices
/// whenever the top two shifts are within 1 of each other — an event of
/// probability `1 − e^{−ε} = Ω(ε)`.
#[test]
fn claim_c1_elkin_neiman_catastrophe_on_clique() {
    let n = 60;
    let eps = 0.3;
    let g = gen::complete(n);
    let params = EnParams::new(eps, n as f64);
    let mut rng = gen::seeded_rng(0xC1);
    let mut counter = FailureCounter::new();
    for _ in 0..300 {
        let d = elkin_neiman(&g, &params, &mut rng, None);
        counter.record(d.deleted_count() >= n - 1);
    }
    // Theory: catastrophe probability ≈ 1 − e^{−ε} ≈ 0.26 (gap of the top
    // two of n exponentials is Exp(ε)). Demand a healthy fraction of it.
    let rate = counter.rate();
    assert!(
        rate > 0.10,
        "catastrophe rate {rate} not Ω(ε); Claim C.1 not reproduced"
    );
    // And the deletion budget ε|V| is blown in every such trial:
    // n−1 ≥ ε·n for any ε < 1.
    assert!((n - 1) as f64 >= eps * n as f64);
}

/// The flip side of Claim C.1: the same catastrophe *cannot* persist for
/// the three-phase algorithm — on the clique its very first carve removes
/// the whole graph as one cluster, whp deleting almost nothing.
#[test]
fn three_phase_has_no_clique_catastrophe() {
    let n = 60;
    let eps = 0.3;
    let g = gen::complete(n);
    let params = LddParams::scaled(eps, n as f64, 0.05);
    let mut rng = gen::seeded_rng(0xC2);
    let mut counter = FailureCounter::new();
    for _ in 0..100 {
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        counter.record(out.decomposition.deleted_fraction() > eps);
    }
    assert_eq!(
        counter.failures(),
        0,
        "three-phase blew its ε budget {} times on the clique",
        counter.failures()
    );
}

/// Claim C.2: on the gadget family (complete bipartite core `L × R` with
/// pendant blocks and two hubs), MPX cuts **all** `t²` core edges — a
/// `(1 − O(1/n))` fraction — with probability `Ω(ε)`.
#[test]
fn claim_c2_mpx_catastrophe_on_gadget() {
    let t = 10;
    let eps = 0.3;
    let (g, layout) = gen::mpx_gadget(t);
    let core_edges = t * t;
    let mut rng = gen::seeded_rng(0xC3);
    let mut counter = FailureCounter::new();
    for _ in 0..2000 {
        let c = mpx(&g, eps, g.n() as f64, &mut rng);
        let core_cut = c
            .cut_edges
            .iter()
            .filter(|&&(u, v)| {
                layout.l.contains(&u) && layout.r.contains(&v)
                    || layout.l.contains(&v) && layout.r.contains(&u)
            })
            .count();
        counter.record(core_cut == core_edges);
    }
    // The event of the Claim C.2 proof has probability
    // ≈ 1/8 · e^{−4ε} · (1 − e^{−ε}) ≈ 0.01 at ε = 0.3, and it is only a
    // sufficient condition. Demand a clearly non-negligible rate.
    let rate = counter.rate();
    assert!(
        rate > 0.003,
        "full-core-cut rate {rate} not Ω(ε); Claim C.2 not reproduced"
    );
    // Cutting the whole core is a (1 − O(1/n)) fraction of all edges.
    assert!(core_edges as f64 / g.m() as f64 > 1.0 - 5.0 / t as f64);
}

/// The three-phase algorithm keeps its budget on the MPX gadget family
/// too (vertex deletions, the Definition 1.4 measure).
#[test]
fn three_phase_keeps_budget_on_gadget() {
    let t = 10;
    let eps = 0.3;
    let (g, _) = gen::mpx_gadget(t);
    let params = LddParams::scaled(eps, g.n() as f64, 0.05);
    let mut rng = gen::seeded_rng(0xC4);
    let mut counter = FailureCounter::new();
    for _ in 0..100 {
        let out = three_phase_ldd(&g, &params, &mut rng, None);
        counter.record(out.decomposition.deleted_fraction() > eps);
    }
    assert_eq!(counter.failures(), 0);
}

/// Scaling check for Claim C.1: the catastrophe probability does **not**
/// vanish as n grows (it is Ω(ε) independently of n).
#[test]
fn claim_c1_rate_is_n_independent() {
    let eps = 0.3;
    let mut rng = gen::seeded_rng(0xC5);
    let mut rates = Vec::new();
    for n in [20usize, 40, 80] {
        let g = gen::complete(n);
        let params = EnParams::new(eps, n as f64);
        let mut counter = FailureCounter::new();
        for _ in 0..200 {
            let d = elkin_neiman(&g, &params, &mut rng, None);
            counter.record(d.deleted_count() >= n - 1);
        }
        rates.push(counter.rate());
    }
    for (i, r) in rates.iter().enumerate() {
        assert!(*r > 0.08, "rate at size index {i} dropped to {r}");
    }
}
