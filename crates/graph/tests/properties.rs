//! Property-based tests for the graph substrate.

use dapc_graph::{gen, girth, power, subdivide, traversal, Graph, Hypergraph, Vertex};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as Vertex, 0..n as Vertex), 0..(3 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn csr_degree_sum_is_twice_m(g in arb_graph(60)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph(40)) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            prop_assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in arb_graph(40)) {
        // For every edge (u,v) and source s: |d(s,u) − d(s,v)| <= 1.
        let d = traversal::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let du = d[u as usize];
            let dv = d[v as usize];
            if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    #[test]
    fn ball_levels_match_bfs_distances(g in arb_graph(40), r in 0usize..6) {
        let b = traversal::ball(&g, &[0], r, None);
        let d = traversal::bfs_distances(&g, 0);
        for (lvl, vs) in b.levels.iter().enumerate() {
            for &v in vs {
                prop_assert_eq!(d[v as usize] as usize, lvl);
            }
        }
        let in_ball = b.len();
        let expected = d.iter().filter(|&&x| x != traversal::UNREACHABLE && x as usize <= r).count();
        prop_assert_eq!(in_ball, expected);
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(50)) {
        let (comp, k) = g.connected_components();
        prop_assert!(comp.iter().all(|&c| (c as usize) < k));
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in arb_graph(30)) {
        let keep: Vec<Vertex> = g.vertices().filter(|v| v % 2 == 0).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(back[a as usize], back[b as usize]));
        }
        // Count edges of g with both endpoints kept.
        let kept: std::collections::HashSet<_> = keep.iter().copied().collect();
        let expected = g.edges().filter(|(u, v)| kept.contains(u) && kept.contains(v)).count();
        prop_assert_eq!(sub.m(), expected);
    }

    #[test]
    fn power_graph_edges_iff_distance_at_most_k(g in arb_graph(25), k in 0usize..4) {
        let gk = power::power_graph(&g, k);
        for u in g.vertices() {
            let d = traversal::bfs_distances(&g, u);
            for v in g.vertices() {
                if v <= u { continue; }
                let close = d[v as usize] != traversal::UNREACHABLE && (d[v as usize] as usize) <= k && d[v as usize] >= 1;
                prop_assert_eq!(gk.has_edge(u, v), close, "u={} v={} k={}", u, v, k);
            }
        }
    }

    #[test]
    fn subdivision_distance_scales(g in arb_graph(20), x in 1usize..3) {
        let s = subdivide::subdivide(&g, x);
        let scale = (2 * x + 1) as u32;
        for u in g.vertices() {
            let d0 = traversal::bfs_distances(&g, u);
            let d1 = traversal::bfs_distances(&s.graph, u);
            for v in g.vertices() {
                if d0[v as usize] != traversal::UNREACHABLE {
                    prop_assert_eq!(d1[v as usize], d0[v as usize] * scale);
                }
            }
        }
    }

    #[test]
    fn subdivision_girth_scales(n in 3usize..9) {
        let g = gen::cycle(n);
        let s = subdivide::subdivide(&g, 2);
        prop_assert_eq!(girth::girth(&s.graph), Some(5 * n as u32));
    }

    #[test]
    fn hypergraph_primal_distance_matches_graph(g in arb_graph(30)) {
        let h = Hypergraph::from_graph(&g);
        let hd = h.distances(&[0], None, None);
        let gd = traversal::bfs_distances(&g, 0);
        prop_assert_eq!(hd, gd);
    }

    #[test]
    fn gnp_is_simple(n in 2usize..60, seed in 0u64..50) {
        let g = gen::gnp(n, 0.2, &mut gen::seeded_rng(seed));
        for v in g.vertices() {
            prop_assert!(!g.has_edge(v, v));
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1], "adjacency not strictly sorted");
            }
        }
    }

    #[test]
    fn random_regular_degree(seed in 0u64..20) {
        let g = gen::random_regular(30, 3, &mut gen::seeded_rng(seed));
        prop_assert!(g.is_regular(3));
    }

    #[test]
    fn random_tree_is_connected_acyclic(n in 1usize..80, seed in 0u64..20) {
        let t = gen::random_tree(n, &mut gen::seeded_rng(seed));
        prop_assert_eq!(t.m(), n - 1);
        let (_, k) = t.connected_components();
        prop_assert_eq!(k, 1);
        prop_assert_eq!(girth::girth(&t), None);
    }
}
