//! Breadth-first traversal, distances and ball extraction.
//!
//! The decomposition algorithms of the paper are phrased entirely in terms
//! of radius-`r` neighbourhoods `N^r(v)` and per-distance level sets `S_j`
//! (Algorithm 1 of the paper, "Grow-and-Carve"). This module provides those
//! primitives, in both plain and *masked* (residual-graph) form — the
//! three-phase algorithms repeatedly delete and remove vertices, and all
//! subsequent distance computations must respect the residual graph.

use crate::graph::{Graph, Vertex};
use std::collections::VecDeque;

/// Sentinel distance for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// A radius-`r` ball around a set of sources, grouped by exact distance.
///
/// `levels[j]` is the set `S_j` of vertices at distance exactly `j` from the
/// source set (so `levels[0]` is the source set itself, intersected with the
/// alive mask). The flattened ball `N^r(S)` is the concatenation of all
/// levels.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Ball {
    /// Vertices grouped by exact distance from the source set.
    pub levels: Vec<Vec<Vertex>>,
}

impl Ball {
    /// Total number of vertices in the ball.
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether the ball contains no vertices.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(Vec::is_empty)
    }

    /// Radius actually reached (may be smaller than requested if the
    /// component was exhausted).
    pub fn radius(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Iterates over every vertex in the ball.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.levels.iter().flatten().copied()
    }

    /// All vertices with distance `<= r` from the sources.
    pub fn within(&self, r: usize) -> impl Iterator<Item = Vertex> + '_ {
        self.levels.iter().take(r + 1).flatten().copied()
    }

    /// The level set `S_j` (empty slice if `j` exceeds the reached radius).
    pub fn level(&self, j: usize) -> &[Vertex] {
        self.levels.get(j).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// BFS distances from a single source. Unreachable vertices get
/// [`UNREACHABLE`].
///
/// ```
/// use dapc_graph::{Graph, traversal};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d, vec![0, 1, 2, traversal::UNREACHABLE]);
/// ```
pub fn bfs_distances(g: &Graph, source: Vertex) -> Vec<u32> {
    bfs_distances_multi(g, std::slice::from_ref(&source))
}

/// BFS distances from a set of sources (distance to the nearest source).
pub fn bfs_distances_multi(g: &Graph, sources: &[Vertex]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] != 0 || !queue.contains(&s) {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Masked multi-source BFS distances: traversal only passes through vertices
/// with `alive[v] == true`; dead vertices keep [`UNREACHABLE`]. Sources that
/// are dead are ignored.
///
/// # Panics
///
/// Panics if `alive.len() != g.n()`.
pub fn bfs_distances_masked(g: &Graph, sources: &[Vertex], alive: &[bool]) -> Vec<u32> {
    assert_eq!(alive.len(), g.n(), "alive mask length mismatch");
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if alive[s as usize] && dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if alive[w as usize] && dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Reusable BFS scratch for [`ball`]-family traversals (graph and
/// hypergraph alike).
///
/// The ball extractions sit on the hottest path of the solvers — the
/// preparation step and every carving iteration call them once per
/// cluster — and each call used to allocate fresh `vec![false; n]`
/// visited masks. A `BallScratch` amortises those: the marker vectors are
/// grown once and *self-cleaning* (each traversal clears exactly the
/// entries it set before returning), so a scratch can be reused across
/// any sequence of calls on graphs of any size.
///
/// Invariant: between calls every entry of `seen_v` / `seen_e` is `false`
/// and `touched_e` is empty; the traversals restore this on every exit
/// path in `O(|ball|)` time.
#[derive(Debug, Default)]
pub struct BallScratch {
    pub(crate) seen_v: Vec<bool>,
    pub(crate) seen_e: Vec<bool>,
    pub(crate) touched_e: Vec<u32>,
}

impl BallScratch {
    /// Creates an empty scratch; marker storage grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the vertex markers to cover `n` vertices.
    pub(crate) fn ensure_vertices(&mut self, n: usize) {
        if self.seen_v.len() < n {
            self.seen_v.resize(n, false);
        }
    }

    /// Grows the edge markers to cover `m` hyperedges.
    pub(crate) fn ensure_edges(&mut self, m: usize) {
        if self.seen_e.len() < m {
            self.seen_e.resize(m, false);
        }
    }
}

/// Extracts the radius-`r` ball `N^r(sources)` with per-distance levels,
/// restricted to the `alive` mask. Pass `None` for an unmasked traversal.
///
/// This is the "gather the topology of its b-radius neighbourhood" step of
/// Grow-and-Carve (Algorithm 1 in the paper).
pub fn ball(g: &Graph, sources: &[Vertex], r: usize, alive: Option<&[bool]>) -> Ball {
    ball_with_scratch(g, sources, r, alive, &mut BallScratch::new())
}

/// [`ball`] against a caller-owned [`BallScratch`], so repeated
/// extractions (one per cluster, per iteration) stop allocating visited
/// masks. Output is identical to [`ball`].
pub fn ball_with_scratch(
    g: &Graph,
    sources: &[Vertex],
    r: usize,
    alive: Option<&[bool]>,
    scratch: &mut BallScratch,
) -> Ball {
    if let Some(a) = alive {
        assert_eq!(a.len(), g.n(), "alive mask length mismatch");
    }
    let is_alive = |v: Vertex| alive.is_none_or(|a| a[v as usize]);
    scratch.ensure_vertices(g.n());
    let seen = &mut scratch.seen_v;
    let mut levels: Vec<Vec<Vertex>> = Vec::new();
    let mut frontier: Vec<Vertex> = Vec::new();
    for &s in sources {
        if is_alive(s) && !seen[s as usize] {
            seen[s as usize] = true;
            frontier.push(s);
        }
    }
    if frontier.is_empty() {
        return Ball { levels };
    }
    levels.push(frontier);
    for _depth in 1..=r {
        let mut next: Vec<Vertex> = Vec::new();
        for &u in levels.last().expect("frontier level pushed above") {
            for &w in g.neighbors(u) {
                if is_alive(w) && !seen[w as usize] {
                    seen[w as usize] = true;
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    // Restore the scratch invariant: clear exactly the marks we set.
    for level in &levels {
        for &v in level {
            seen[v as usize] = false;
        }
    }
    Ball { levels }
}

/// Size of `N^r(v)` in the residual graph, without materialising the ball.
pub fn ball_size(g: &Graph, source: Vertex, r: usize, alive: Option<&[bool]>) -> usize {
    ball(g, &[source], r, alive).len()
}

/// Eccentricity of `v` within its connected component.
pub fn eccentricity(g: &Graph, v: Vertex) -> u32 {
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter (max eccentricity over all vertices; `0` for empty or
/// edgeless graphs, ignoring unreachable pairs).
///
/// Runs a BFS per vertex — `O(n·m)`; fine for the graph sizes used in tests
/// and experiments.
pub fn diameter(g: &Graph) -> u32 {
    g.vertices().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Weak diameter of a vertex subset: `max_{u,v ∈ S} dist_G(u, v)` where the
/// distance is measured in the *whole* graph `g` (Definition 1.4 of the
/// paper). Returns `None` if some pair of `S` is disconnected in `g`.
pub fn weak_diameter(g: &Graph, s: &[Vertex]) -> Option<u32> {
    let mut best = 0u32;
    for &u in s {
        let dist = bfs_distances(g, u);
        for &v in s {
            let d = dist[v as usize];
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Strong diameter of a vertex subset: the diameter of the induced subgraph
/// `G[S]`. Returns `None` if `G[S]` is disconnected.
pub fn strong_diameter(g: &Graph, s: &[Vertex]) -> Option<u32> {
    let (sub, _) = g.induced_subgraph(s);
    let mut best = 0u32;
    for v in sub.vertices() {
        let dist = bfs_distances(&sub, v);
        for d in dist {
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Distance between two vertex sets: `min_{u ∈ a, v ∈ b} dist(u, v)`, or
/// `None` if unreachable.
pub fn set_distance(g: &Graph, a: &[Vertex], b: &[Vertex]) -> Option<u32> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let dist = bfs_distances_multi(g, a);
    b.iter()
        .map(|&v| dist[v as usize])
        .min()
        .filter(|&d| d != UNREACHABLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn single_source_distances_on_path() {
        let g = gen::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = gen::path(5);
        let d = bfs_distances_multi(&g, &[0, 4]);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn masked_bfs_respects_mask() {
        let g = gen::path(5);
        let alive = vec![true, true, false, true, true];
        let d = bfs_distances_masked(&g, &[0], &alive);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn ball_levels_are_exact_distances() {
        let g = gen::cycle(8);
        let b = ball(&g, &[0], 3, None);
        assert_eq!(b.level(0), &[0]);
        assert_eq!(b.level(1).len(), 2);
        assert_eq!(b.level(2).len(), 2);
        assert_eq!(b.level(3).len(), 2);
        assert_eq!(b.len(), 7);
        assert_eq!(b.radius(), 3);
    }

    #[test]
    fn ball_stops_early_when_exhausted() {
        let g = gen::path(3);
        let b = ball(&g, &[1], 10, None);
        assert_eq!(b.radius(), 1);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn ball_from_dead_source_is_empty() {
        let g = gen::path(3);
        let alive = vec![false, true, true];
        let b = ball(&g, &[0], 2, Some(&alive));
        assert!(b.is_empty());
    }

    #[test]
    fn ball_within_truncates() {
        let g = gen::path(7);
        let b = ball(&g, &[3], 3, None);
        let within1: Vec<_> = b.within(1).collect();
        assert_eq!(within1.len(), 3);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&gen::cycle(8)), 4);
        assert_eq!(diameter(&gen::cycle(9)), 4);
        assert_eq!(diameter(&gen::path(6)), 5);
    }

    #[test]
    fn weak_vs_strong_diameter() {
        // C6 with S = two antipodal-ish vertices plus their midpoint on one
        // side only: weak diameter uses the full cycle, strong uses G[S].
        let g = gen::cycle(6);
        // S = {0, 2}: dist in G is 2, but G[S] is disconnected.
        assert_eq!(weak_diameter(&g, &[0, 2]), Some(2));
        assert_eq!(strong_diameter(&g, &[0, 2]), None);
        // S = {0, 1, 2}: path inside the cycle.
        assert_eq!(strong_diameter(&g, &[0, 1, 2]), Some(2));
    }

    #[test]
    fn set_distance_basic() {
        let g = gen::path(6);
        assert_eq!(set_distance(&g, &[0, 1], &[4, 5]), Some(3));
        assert_eq!(set_distance(&g, &[], &[1]), None);
    }

    #[test]
    fn scratch_reuse_matches_fresh_calls() {
        let g = gen::grid(6, 6);
        let h = gen::cycle(50); // different size: scratch must regrow
        let mut scratch = BallScratch::new();
        for r in 0..6 {
            assert_eq!(
                ball_with_scratch(&g, &[7], r, None, &mut scratch),
                ball(&g, &[7], r, None)
            );
            assert_eq!(
                ball_with_scratch(&h, &[3, 40], r, None, &mut scratch),
                ball(&h, &[3, 40], r, None)
            );
        }
        let alive: Vec<bool> = (0..g.n()).map(|v| v % 3 != 0).collect();
        for r in 0..6 {
            assert_eq!(
                ball_with_scratch(&g, &[8], r, Some(&alive), &mut scratch),
                ball(&g, &[8], r, Some(&alive))
            );
        }
        // Self-cleaning invariant: no marks survive a traversal.
        assert!(scratch.seen_v.iter().all(|&s| !s));
    }

    #[test]
    fn ball_size_matches_ball() {
        let g = gen::grid(5, 5);
        for r in 0..5 {
            assert_eq!(ball_size(&g, 12, r, None), ball(&g, &[12], r, None).len());
        }
    }
}
