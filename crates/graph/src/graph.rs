//! Compressed-sparse-row (CSR) undirected graph.
//!
//! [`Graph`] is the workhorse topology type of the workspace: every
//! decomposition, every ILP hypergraph primal view and every simulator
//! network is ultimately a `Graph`. Vertices are dense `u32` identifiers
//! `0..n`; the adjacency of each vertex is stored sorted, so edge queries
//! are `O(log deg)` and neighbourhood scans are cache-friendly.

use crate::builder::GraphBuilder;

/// A vertex identifier. Vertices of an *n*-vertex graph are `0..n as u32`.
pub type Vertex = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Construct one with [`GraphBuilder`], [`Graph::from_edges`], or any of the
/// generators in [`crate::gen`].
///
/// # Examples
///
/// ```
/// use dapc_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert!(g.has_edge(1, 2));
/// assert!(!g.has_edge(0, 3));
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Graph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) adjacency: Vec<Vertex>,
    pub(crate) m: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adjacency: Vec::new(),
            m: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Self-loops are dropped and duplicate edges are merged; the pairs may
    /// be listed in either orientation.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbour slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n() as Vertex
    }

    /// Iterates over all edges as ordered pairs `(u, v)` with `u < v`.
    ///
    /// ```
    /// use dapc_graph::Graph;
    /// let g = Graph::from_edges(3, &[(2, 1), (0, 2)]);
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// ```
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Whether every vertex has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        self.vertices().all(|v| self.degree(v) == d)
    }

    /// Connected components; returns `(component_id_per_vertex, count)`.
    ///
    /// Component ids are dense, assigned in order of the smallest vertex of
    /// each component.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s as Vertex);
            while let Some(u) = stack.pop() {
                for &w in self.neighbors(u) {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Connected components restricted to vertices with `alive[v] == true`.
    ///
    /// Dead vertices get component id `u32::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len() != self.n()`.
    pub fn connected_components_masked(&self, alive: &[bool]) -> (Vec<u32>, usize) {
        assert_eq!(alive.len(), self.n(), "alive mask length mismatch");
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for s in 0..n {
            if !alive[s] || comp[s] != u32::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s as Vertex);
            while let Some(u) = stack.pop() {
                for &w in self.neighbors(u) {
                    if alive[w as usize] && comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// The subgraph induced by `keep`, together with the map from new vertex
    /// ids to original ids.
    ///
    /// Vertices are renumbered `0..keep.len()` in the order given; duplicate
    /// entries in `keep` are forbidden.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or duplicate vertex.
    ///
    /// ```
    /// use dapc_graph::Graph;
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    /// let (sub, back) = g.induced_subgraph(&[1, 2, 3]);
    /// assert_eq!(sub.n(), 3);
    /// assert_eq!(sub.m(), 2);
    /// assert_eq!(back, vec![1, 2, 3]);
    /// ```
    pub fn induced_subgraph(&self, keep: &[Vertex]) -> (Graph, Vec<Vertex>) {
        let mut new_id = vec![u32::MAX; self.n()];
        for (i, &v) in keep.iter().enumerate() {
            assert!(
                new_id[v as usize] == u32::MAX,
                "duplicate vertex {v} in induced_subgraph"
            );
            new_id[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(keep.len());
        for (i, &v) in keep.iter().enumerate() {
            for &w in self.neighbors(v) {
                let nw = new_id[w as usize];
                if nw != u32::MAX && (i as u32) < nw {
                    b.add_edge(i as u32, nw);
                }
            }
        }
        (b.build(), keep.to_vec())
    }

    /// Complement mask: vertices of degree zero.
    pub fn isolated_vertices(&self) -> Vec<Vertex> {
        self.vertices().filter(|&v| self.degree(v) == 0).collect()
    }

    /// Returns `true` if the graph is bipartite (2-colourable).
    pub fn is_bipartite(&self) -> bool {
        self.bipartition().is_some()
    }

    /// A proper 2-colouring if one exists (one side per vertex), else `None`.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let n = self.n();
        let mut side = vec![2u8; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if side[s] != 2 {
                continue;
            }
            side[s] = 0;
            queue.push_back(s as Vertex);
            while let Some(u) = queue.pop_front() {
                let su = side[u as usize];
                for &w in self.neighbors(u) {
                    if side[w as usize] == 2 {
                        side[w as usize] = 1 - su;
                        queue.push_back(w);
                    } else if side[w as usize] == su {
                        return None;
                    }
                }
            }
        }
        Some(side.into_iter().map(|s| s == 1).collect())
    }

    /// Sum of degrees (`2m`); useful as a quick consistency check.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }
}

impl std::fmt::Display for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.isolated_vertices().len(), 5);
    }

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(3, 1), (2, 0), (1, 0)]);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 3)]);
        assert_eq!(e.len(), g.m());
    }

    #[test]
    fn connected_components_basic() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let (comp, k) = g.connected_components();
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn masked_components_ignore_dead() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let alive = vec![true, false, true, true];
        let (comp, k) = g.connected_components_masked(&alive);
        assert_eq!(k, 2);
        assert_eq!(comp[1], u32::MAX);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(comp[2], comp[3]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let (sub, back) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.m(), 3); // (1,2), (2,3), (1,3)
        assert_eq!(back.len(), 3);
        assert!(sub.has_edge(0, 2));
    }

    #[test]
    fn bipartition_detects_odd_cycle() {
        let even = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(even.is_bipartite());
        let odd = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!odd.is_bipartite());
    }

    #[test]
    fn bipartition_sides_are_proper() {
        let g = Graph::from_edges(6, &[(0, 3), (0, 4), (1, 4), (1, 5), (2, 5)]);
        let side = g.bipartition().expect("bipartite");
        for (u, v) in g.edges() {
            assert_ne!(side[u as usize], side[v as usize]);
        }
    }

    #[test]
    #[should_panic]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::empty(3);
        let _ = g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn display_mentions_sizes() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(format!("{g}"), "Graph(n=2, m=1)");
    }
}
