//! Lubotzky–Phillips–Sarnak Ramanujan graphs `X^{p,q}` (Theorem B.1).
//!
//! The lower bounds of Appendix B are proved on the LPS family with
//! `p = 17`: depending on the Legendre symbol `(p|q)` the graph is either a
//! bipartite `(p+1)`-regular graph on `q(q²−1)` vertices or a non-bipartite
//! one on `q(q²−1)/2` vertices whose maximum independent set is at most
//! `2√p/(p+1) · n`. Both have girth `Ω(log_p q)`, which is what makes
//! `o(log n)`-round algorithms unable to tell them apart.
//!
//! The construction implemented here is the classical one: the `p + 1`
//! integer quaternions of norm `p` (odd positive real part, even imaginary
//! parts) are mapped to `PGL₂(𝔽_q)` via a square root of `−1 (mod q)`, and
//! the Cayley graph of the generated subgroup is returned. When `(p|q)=1`
//! the generators have square determinant and generate (the image of)
//! `PSL₂(𝔽_q)`; otherwise they generate all of `PGL₂(𝔽_q)` and the graph is
//! bipartite with the square-determinant cosets as sides.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};
use std::collections::BTreeMap;

/// Modular exponentiation `b^e mod m` (for `m < 2^32`).
pub fn mod_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    acc
}

/// Legendre symbol `(a|p)` for odd prime `p`: `1` if `a` is a nonzero
/// quadratic residue, `-1` if a non-residue, `0` if `p | a`.
pub fn legendre(a: u64, p: u64) -> i32 {
    let a = a % p;
    if a == 0 {
        return 0;
    }
    let r = mod_pow(a, (p - 1) / 2, p);
    if r == 1 {
        1
    } else {
        -1
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow_u128(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod_u128(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod_u128(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn mod_pow_u128(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod_u128(acc, b, m);
        }
        b = mul_mod_u128(b, b, m);
        e >>= 1;
    }
    acc
}

/// A square root of `−1` modulo prime `q ≡ 1 (mod 4)`.
///
/// # Panics
///
/// Panics if no root exists (i.e. `q ≢ 1 (mod 4)` or `q` not prime).
pub fn sqrt_minus_one(q: u64) -> u64 {
    // For a quadratic non-residue n, n^((q-1)/4) is a square root of -1.
    for n in 2..q {
        if legendre(n, q) == -1 {
            let r = mod_pow(n, (q - 1) / 4, q);
            assert_eq!(r * r % q, q - 1, "q must be a prime ≡ 1 (mod 4)");
            return r;
        }
    }
    panic!("no quadratic non-residue found; q = {q} is not an odd prime");
}

/// The `p + 1` integer quaternions `a₀ + a₁i + a₂j + a₃k` with
/// `a₀² + a₁² + a₂² + a₃² = p`, `a₀ > 0` odd and `a₁, a₂, a₃` even
/// (for `p ≡ 1 (mod 4)`).
pub fn norm_p_quaternions(p: i64) -> Vec<[i64; 4]> {
    let mut out = Vec::new();
    let bound = (p as f64).sqrt() as i64 + 1;
    let mut a0 = 1i64;
    while a0 * a0 <= p {
        let rem0 = p - a0 * a0;
        let mut a1 = -bound;
        while a1 <= bound {
            if a1 % 2 == 0 && a1 * a1 <= rem0 {
                let rem1 = rem0 - a1 * a1;
                let mut a2 = -bound;
                while a2 <= bound {
                    if a2 % 2 == 0 && a2 * a2 <= rem1 {
                        let rem2 = rem1 - a2 * a2;
                        let a3 = (rem2 as f64).sqrt().round() as i64;
                        for s in [a3, -a3] {
                            if s % 2 == 0 && s * s == rem2 && !(s == 0 && a3 != 0 && s != a3) {
                                out.push([a0, a1, a2, s]);
                                if s == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    a2 += 1;
                }
            }
            a1 += 1;
        }
        a0 += 2;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A projective 2×2 matrix over `𝔽_q` in canonical form (first nonzero
/// entry scaled to 1).
type PMat = [u32; 4];

fn canonicalize(m: [u64; 4], q: u64) -> PMat {
    let lead = m
        .iter()
        .copied()
        .find(|&x| x % q != 0)
        .expect("nonzero matrix");
    let inv = mod_pow(lead % q, q - 2, q);
    let mut out = [0u32; 4];
    for (o, &x) in out.iter_mut().zip(m.iter()) {
        *o = ((x % q) * inv % q) as u32;
    }
    out
}

fn mat_mul(a: PMat, b: PMat, q: u64) -> PMat {
    let a = a.map(|x| x as u64);
    let b = b.map(|x| x as u64);
    canonicalize(
        [
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ],
        q,
    )
}

/// Which of the two Theorem B.1 cases an `(p, q)` pair falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpsCase {
    /// `(p|q) = −1`: bipartite, `n = q(q²−1)`, girth `≥ 4·log_p q − log_p 4`.
    Bipartite,
    /// `(p|q) = 1`: non-bipartite, `n = q(q²−1)/2`, girth `≥ 2·log_p q`,
    /// `α ≤ 2√p/(p+1) · n`.
    NonBipartite,
}

/// An LPS Ramanujan graph together with its construction metadata.
#[derive(Clone, Debug)]
pub struct LpsGraph {
    /// The `(p+1)`-regular Cayley graph.
    pub graph: Graph,
    /// Quaternion prime `p` (degree is `p + 1`).
    pub p: u64,
    /// Field prime `q`.
    pub q: u64,
    /// Which Theorem B.1 case `(p, q)` falls into.
    pub case: LpsCase,
    /// Girth lower bound from Theorem B.1.
    pub girth_lower_bound: f64,
}

impl LpsGraph {
    /// Theorem B.1's upper bound on the independence number for the
    /// non-bipartite case, `2√p/(p+1)·n`; for the bipartite case the exact
    /// value `n/2`.
    pub fn independence_upper_bound(&self) -> f64 {
        let n = self.graph.n() as f64;
        match self.case {
            LpsCase::Bipartite => n / 2.0,
            LpsCase::NonBipartite => 2.0 * (self.p as f64).sqrt() / (self.p as f64 + 1.0) * n,
        }
    }
}

/// Constructs the LPS Ramanujan graph `X^{p,q}`.
///
/// # Panics
///
/// Panics if `p` or `q` is not a prime `≡ 1 (mod 4)`, or `p == q`.
///
/// ```
/// use dapc_graph::lps::{lps_graph, LpsCase};
/// let x = lps_graph(5, 13); // bipartite case, 6-regular
/// assert_eq!(x.case, LpsCase::Bipartite);
/// assert_eq!(x.graph.n(), 13 * (13 * 13 - 1));
/// assert!(x.graph.is_regular(6));
/// assert!(x.graph.is_bipartite());
/// ```
pub fn lps_graph(p: u64, q: u64) -> LpsGraph {
    assert!(
        is_prime(p) && p % 4 == 1,
        "p = {p} must be a prime ≡ 1 (mod 4)"
    );
    assert!(
        is_prime(q) && q % 4 == 1,
        "q = {q} must be a prime ≡ 1 (mod 4)"
    );
    assert_ne!(p, q, "p and q must be distinct");
    let i = sqrt_minus_one(q);
    let quats = norm_p_quaternions(p as i64);
    assert_eq!(
        quats.len(),
        (p + 1) as usize,
        "expected p+1 norm-p quaternions"
    );
    let to_fq = |x: i64| -> u64 { x.rem_euclid(q as i64) as u64 };
    let generators: Vec<PMat> = quats
        .iter()
        .map(|&[a0, a1, a2, a3]| {
            // [[a0 + a1 i, a2 + a3 i], [−a2 + a3 i, a0 − a1 i]]
            canonicalize(
                [
                    (to_fq(a0) + to_fq(a1) * i) % q,
                    (to_fq(a2) + to_fq(a3) * i) % q,
                    (to_fq(-a2) + to_fq(a3) * i) % q,
                    (to_fq(a0) + (q - 1) * (to_fq(a1) * i % q)) % q,
                ],
                q,
            )
        })
        .collect();

    // Closure BFS from the identity over the generated subgroup.
    let identity: PMat = [1, 0, 0, 1];
    let mut ids: BTreeMap<PMat, Vertex> = BTreeMap::new();
    ids.insert(identity, 0);
    let mut elems: Vec<PMat> = vec![identity];
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut head = 0usize;
    while head < elems.len() {
        let g = elems[head];
        let gid = head as Vertex;
        head += 1;
        for &s in &generators {
            let h = mat_mul(g, s, q);
            let hid = *ids.entry(h).or_insert_with(|| {
                elems.push(h);
                (elems.len() - 1) as Vertex
            });
            if gid != hid {
                edges.push((gid, hid));
            }
        }
    }
    let n = elems.len();
    let case = if legendre(p, q) == 1 {
        debug_assert_eq!(n as u64, q * (q * q - 1) / 2, "PSL₂ size mismatch");
        LpsCase::NonBipartite
    } else {
        debug_assert_eq!(n as u64, q * (q * q - 1), "PGL₂ size mismatch");
        LpsCase::Bipartite
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len() / 2 + 1);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let graph = b.build();
    let logp = |x: f64| x.ln() / (p as f64).ln();
    let girth_lower_bound = match case {
        LpsCase::Bipartite => 4.0 * logp(q as f64) - logp(4.0),
        LpsCase::NonBipartite => 2.0 * logp(q as f64),
    };
    LpsGraph {
        graph,
        p,
        q,
        case,
        girth_lower_bound,
    }
}

/// Finds the smallest primes `q ≡ 1 (mod 4)`, `q ≠ p`, of each Theorem B.1
/// case with `q(q²−1) ≤ max_n` (bipartite size measure); returns
/// `(bipartite_q, non_bipartite_q)` where either can be `None` if no such
/// prime exists under the size cap.
pub fn smallest_lps_pair(p: u64, max_n: u64) -> (Option<u64>, Option<u64>) {
    let mut bip = None;
    let mut nonbip = None;
    let mut q = 5u64;
    while q * (q * q - 1) / 2 <= max_n {
        if q != p && is_prime(q) && q % 4 == 1 {
            match legendre(p, q) {
                -1 if bip.is_none() && q * (q * q - 1) <= max_n => bip = Some(q),
                1 if nonbip.is_none() => nonbip = Some(q),
                _ => {}
            }
            if bip.is_some() && nonbip.is_some() {
                break;
            }
        }
        q += 4;
    }
    (bip, nonbip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::girth::girth;

    #[test]
    fn mod_pow_and_legendre() {
        assert_eq!(mod_pow(2, 10, 1000), 24);
        assert_eq!(legendre(4, 17), 1);
        assert_eq!(legendre(3, 17), -1);
        assert_eq!(legendre(17, 17), 0);
        // Quadratic reciprocity spot checks used by the paper: (5|17) = −1.
        assert_eq!(legendre(5, 17), -1);
        assert_eq!(legendre(13, 17), 1);
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(17));
        assert!(is_prime(1092 + 1)); // 1093
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(!is_prime(1092));
    }

    #[test]
    fn sqrt_minus_one_is_valid() {
        for q in [5u64, 13, 17, 29, 37, 41] {
            let r = sqrt_minus_one(q);
            assert_eq!(r * r % q, q - 1);
        }
    }

    #[test]
    fn quaternion_count_is_p_plus_one() {
        for p in [5i64, 13, 17, 29] {
            let quats = norm_p_quaternions(p);
            assert_eq!(quats.len(), (p + 1) as usize, "p = {p}");
            for q in &quats {
                assert_eq!(q.iter().map(|x| x * x).sum::<i64>(), p);
                assert!(q[0] > 0 && q[0] % 2 == 1);
                assert!(q[1] % 2 == 0 && q[2] % 2 == 0 && q[3] % 2 == 0);
            }
        }
    }

    #[test]
    fn lps_5_13_is_bipartite_6_regular() {
        let x = lps_graph(5, 13);
        assert_eq!(x.case, LpsCase::Bipartite);
        assert_eq!(x.graph.n(), 2184);
        assert!(x.graph.is_regular(6));
        assert!(x.graph.is_bipartite());
        let g = girth(&x.graph).expect("has cycles");
        assert!(
            (g as f64) >= x.girth_lower_bound,
            "girth {g} below theorem bound {}",
            x.girth_lower_bound
        );
        // Bipartite LPS graphs are known to have large girth; make sure the
        // locality radius we rely on in experiments is available.
        assert!(g >= 6, "girth {g} unexpectedly small");
    }

    #[test]
    fn lps_5_29_is_nonbipartite() {
        let x = lps_graph(5, 29);
        assert_eq!(x.case, LpsCase::NonBipartite);
        assert_eq!(x.graph.n(), 29 * (29 * 29 - 1) / 2);
        assert!(x.graph.is_regular(6));
        assert!(!x.graph.is_bipartite());
        // α ≤ 2√5/6 · n ≈ 0.745 n for p = 5 (for the paper's p = 17 this
        // bound drops to ≈ 0.4587 n < 0.92 · n/2).
        let expected = 2.0 * 5f64.sqrt() / 6.0 * x.graph.n() as f64;
        assert!((x.independence_upper_bound() - expected).abs() < 1e-9);
        let x17 = 2.0 * 17f64.sqrt() / 18.0;
        assert!(x17 < 0.92 / 2.0);
    }

    #[test]
    fn lps_17_5_is_the_paper_family() {
        let x = lps_graph(17, 5);
        assert_eq!(x.case, LpsCase::Bipartite);
        assert_eq!(x.graph.n(), 120);
        assert!(x.graph.is_regular(18));
        assert!(x.graph.is_bipartite());
    }

    #[test]
    fn smallest_pair_for_p17() {
        let (bip, nonbip) = smallest_lps_pair(17, 3_000);
        assert_eq!(bip, Some(5));
        assert_eq!(nonbip, Some(13));
    }
}
