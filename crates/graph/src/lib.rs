//! # dapc-graph
//!
//! Graph and hypergraph substrate for the `dapc` workspace — the
//! reproduction of Chang & Li, *"The Complexity of Distributed
//! Approximation of Packing and Covering Integer Linear Programs"*
//! (PODC 2023).
//!
//! Everything here is implemented from scratch:
//!
//! * [`Graph`] — CSR undirected graphs with sorted adjacency;
//! * [`GraphBuilder`] — incremental, deduplicating construction;
//! * [`traversal`] — BFS distances, per-level balls `N^r(v)` (plain and
//!   residual-masked), weak/strong diameters — the vocabulary of the
//!   paper's Grow-and-Carve procedures;
//! * [`girth`] — shortest-cycle computation for the Appendix B lower
//!   bounds;
//! * [`power`] — power graphs `G^k` for the GKM17 baseline;
//! * [`subdivide`] — the `G_x` and `G*` reductions of Appendix B;
//! * [`gen`] — deterministic and random generators, including the
//!   Appendix C counterexample families;
//! * [`lps`] — Lubotzky–Phillips–Sarnak Ramanujan graphs `X^{p,q}`
//!   (Theorem B.1), built via quaternions over `PGL₂(𝔽_q)`;
//! * [`Hypergraph`] — the Definition 1.3 communication hypergraph with
//!   masked primal-metric traversal.
//!
//! # Quickstart
//!
//! ```
//! use dapc_graph::{gen, traversal, Hypergraph};
//!
//! let g = gen::grid(8, 8);
//! let ball = traversal::ball(&g, &[0], 3, None);
//! assert_eq!(ball.level(1).len(), 2);
//!
//! let h = Hypergraph::from_graph(&g);
//! assert_eq!(h.m(), g.m());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod gen;
pub mod girth;
pub mod graph;
pub mod hypergraph;
pub mod lps;
pub mod power;
pub mod subdivide;
pub mod traversal;

pub use builder::GraphBuilder;
pub use graph::{Graph, Vertex};
pub use hypergraph::{EdgeId, Hypergraph};
pub use traversal::{Ball, BallScratch};
