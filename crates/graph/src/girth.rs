//! Girth (length of the shortest cycle).
//!
//! Appendix B of the paper relies on the girth of the Ramanujan graphs
//! `X^{p,q}`: any algorithm running fewer than `girth/2 − 1` rounds sees a
//! tree around every vertex and therefore cannot distinguish the bipartite
//! from the non-bipartite member of the family.

use crate::graph::{Graph, Vertex};
use std::collections::VecDeque;

/// Length of the shortest cycle in `g`, or `None` if `g` is a forest.
///
/// BFS from every vertex with pruning at half the best cycle found so far;
/// `O(n·m)` worst case.
///
/// ```
/// use dapc_graph::{gen, girth::girth};
/// assert_eq!(girth(&gen::cycle(7)), Some(7));
/// assert_eq!(girth(&gen::path(7)), None);
/// assert_eq!(girth(&gen::complete(4)), Some(3));
/// ```
pub fn girth(g: &Graph) -> Option<u32> {
    let n = g.n();
    let mut best: u32 = u32::MAX;
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut touched: Vec<Vertex> = Vec::new();
    for s in 0..n as Vertex {
        // Any cycle through s shorter than `best` is found by a BFS of depth
        // < best/2, so prune there.
        let cap = if best == u32::MAX { u32::MAX } else { best / 2 };
        for &t in &touched {
            dist[t as usize] = u32::MAX;
            parent[t as usize] = u32::MAX;
        }
        touched.clear();
        dist[s as usize] = 0;
        touched.push(s);
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            if du >= cap {
                continue;
            }
            for &w in g.neighbors(u) {
                if w == parent[u as usize] {
                    continue;
                }
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    parent[w as usize] = u;
                    touched.push(w);
                    queue.push_back(w);
                } else {
                    // Non-tree edge: cycle of length du + dist[w] + 1.
                    let cycle = du + dist[w as usize] + 1;
                    if cycle < best {
                        best = cycle;
                    }
                }
            }
        }
    }
    (best != u32::MAX).then_some(best)
}

/// Whether the `r`-radius neighbourhood of every vertex is acyclic, i.e.
/// girth `> 2r + 1`. This is the precise condition under which an `r`-round
/// LOCAL algorithm on a `d`-regular graph sees a `d`-regular tree everywhere
/// (Theorem B.2 of the paper).
pub fn locally_tree_like(g: &Graph, r: u32) -> bool {
    match girth(g) {
        None => true,
        Some(girth) => girth > 2 * r + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn girth_of_standard_families() {
        assert_eq!(girth(&gen::cycle(3)), Some(3));
        assert_eq!(girth(&gen::cycle(12)), Some(12));
        assert_eq!(girth(&gen::complete(5)), Some(3));
        assert_eq!(girth(&gen::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&gen::grid(4, 4)), Some(4));
    }

    #[test]
    fn forests_have_no_girth() {
        assert_eq!(girth(&gen::path(10)), None);
        assert_eq!(girth(&gen::star(10)), None);
        assert_eq!(girth(&gen::complete_tree(3, 3)), None);
        assert_eq!(girth(&Graph::empty(5)), None);
    }

    #[test]
    fn girth_with_pendant_paths() {
        // Cycle of length 5 with a long tail: girth stays 5.
        let mut edges: Vec<(Vertex, Vertex)> = (0..5)
            .map(|i| (i as Vertex, ((i + 1) % 5) as Vertex))
            .collect();
        edges.push((0, 5));
        edges.push((5, 6));
        edges.push((6, 7));
        let g = Graph::from_edges(8, &edges);
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn two_cycles_take_minimum() {
        // C3 and C5 disjoint.
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        for i in 0..5 {
            edges.push((3 + i, 3 + (i + 1) % 5));
        }
        let g = Graph::from_edges(8, &edges);
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn locally_tree_like_threshold() {
        let g = gen::cycle(9); // girth 9: tree-like for r <= 3
        assert!(locally_tree_like(&g, 3));
        assert!(!locally_tree_like(&g, 4));
    }
}
