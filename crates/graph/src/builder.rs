//! Incremental construction of [`Graph`]s.

use crate::graph::{Graph, Vertex};

/// Accumulates edges and produces a deduplicated CSR [`Graph`].
///
/// Self-loops are silently dropped and parallel edges merged, so callers can
/// add edges opportunistically (e.g. both orientations) without bookkeeping.
///
/// # Examples
///
/// ```
/// use dapc_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, merged
/// b.add_edge(2, 2); // self-loop, dropped
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is `>= n`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b));
        }
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (Vertex, Vertex)>>(&mut self, it: I) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Grows the vertex count to at least `n` (never shrinks).
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        if n > self.n {
            self.n = n;
        }
        self
    }

    /// Finalises the CSR representation.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0 as Vertex; 2 * m];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were added in sorted canonical order, but each vertex's list
        // mixes "smaller" and "larger" endpoints; sort each slice.
        for v in 0..self.n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            adjacency,
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::with_capacity(4, 4);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = b.build();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert!(g.is_regular(2));
    }

    #[test]
    fn ensure_vertices_grows() {
        let mut b = GraphBuilder::new(2);
        b.ensure_vertices(5);
        b.add_edge(0, 4);
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn heavy_duplication_collapses() {
        let mut b = GraphBuilder::new(3);
        for _ in 0..100 {
            b.add_edge(0, 1);
            b.add_edge(1, 0);
        }
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree_sum(), 2);
    }
}
