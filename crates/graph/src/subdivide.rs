//! Edge subdivision `G ↦ G_x` and the `G*` gadget, the two reductions used
//! by the lower bounds of Appendix B.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};

/// Result of subdividing every edge of a graph into a path of length
/// `2x + 1` (Theorem B.3 / B.7 of the paper).
///
/// Original vertex `v` keeps its id `v`; the `2x` interior vertices of the
/// path replacing edge `e` are laid out consecutively starting at
/// `n + e_index * 2x`, ordered from the smaller endpoint towards the larger.
#[derive(Clone, Debug)]
pub struct Subdivision {
    /// The subdivided graph on `n + 2x·m` vertices.
    pub graph: Graph,
    /// Subdivision parameter `x` (each edge becomes a path of `2x+1` edges).
    pub x: usize,
    /// Number of original vertices.
    pub original_n: usize,
    /// Original edges in canonical `(u, v)` order, indexable by edge id.
    pub original_edges: Vec<(Vertex, Vertex)>,
}

impl Subdivision {
    /// Whether `w` is an original vertex (as opposed to a path interior).
    pub fn is_original(&self, w: Vertex) -> bool {
        (w as usize) < self.original_n
    }

    /// For a path-interior vertex, the original edge id it lies on and its
    /// position `1..=2x` along the path from the smaller endpoint; `None`
    /// for original vertices.
    pub fn path_position(&self, w: Vertex) -> Option<(usize, usize)> {
        if self.is_original(w) || self.x == 0 {
            return None;
        }
        let off = w as usize - self.original_n;
        Some((off / (2 * self.x), off % (2 * self.x) + 1))
    }

    /// The interior vertices of the path replacing edge `e`, ordered from
    /// the smaller endpoint.
    pub fn interior_of_edge(&self, e: usize) -> Vec<Vertex> {
        let base = self.original_n + e * 2 * self.x;
        (0..2 * self.x).map(|i| (base + i) as Vertex).collect()
    }
}

/// Subdivides every edge of `g` into a path of length `2x + 1`.
///
/// For `x = 0` this returns `g` itself (wrapped in a [`Subdivision`]).
/// The result is always bipartite-preserving in the sense used by the lower
/// bound proofs: if `g` is bipartite then so is `G_x`, and the size of a
/// maximum independent set satisfies `α(G_x) = α(G) + x·m` for bipartite
/// regular `g` (used by Theorem B.3).
///
/// ```
/// use dapc_graph::{gen, subdivide::subdivide};
/// let g = gen::cycle(3);
/// let s = subdivide(&g, 1); // every edge -> path of length 3: C3 -> C9
/// assert_eq!(s.graph.n(), 9);
/// assert_eq!(s.graph.m(), 9);
/// ```
pub fn subdivide(g: &Graph, x: usize) -> Subdivision {
    let original_edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    if x == 0 {
        return Subdivision {
            graph: g.clone(),
            x,
            original_n: g.n(),
            original_edges,
        };
    }
    let n = g.n();
    let m = original_edges.len();
    let total = n + 2 * x * m;
    let mut b = GraphBuilder::with_capacity(total, (2 * x + 1) * m);
    for (e, &(u, v)) in original_edges.iter().enumerate() {
        let base = n + e * 2 * x;
        let mut prev = u;
        for i in 0..2 * x {
            let w = (base + i) as Vertex;
            b.add_edge(prev, w);
            prev = w;
        }
        b.add_edge(prev, v);
    }
    Subdivision {
        graph: b.build(),
        x,
        original_n: n,
        original_edges,
    }
}

/// The `G* = (V*, E*)` gadget of Theorem B.5: for every edge `e = {u, v}`
/// add a fresh vertex `w_e` adjacent to both `u` and `v`.
///
/// `γ(G*) = τ(G)` (the minimum dominating set of `G*` equals the minimum
/// vertex cover of `G`), which transfers the vertex-cover lower bound to
/// dominating set.
///
/// The gadget vertex for edge id `e` is `n + e`.
pub fn dominating_set_gadget(g: &Graph) -> (Graph, Vec<(Vertex, Vertex)>) {
    let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    let n = g.n();
    let mut b = GraphBuilder::with_capacity(n + edges.len(), g.m() + 2 * edges.len());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for (e, &(u, v)) in edges.iter().enumerate() {
        let w = (n + e) as Vertex;
        b.add_edge(w, u);
        b.add_edge(w, v);
    }
    (b.build(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::girth::girth;
    use crate::traversal;

    #[test]
    fn subdivide_zero_is_identity() {
        let g = gen::cycle(5);
        let s = subdivide(&g, 0);
        assert_eq!(s.graph, g);
    }

    #[test]
    fn subdivide_counts() {
        let g = gen::complete(4); // n=4, m=6
        let s = subdivide(&g, 2); // each edge -> path of length 5
        assert_eq!(s.graph.n(), 4 + 4 * 6);
        assert_eq!(s.graph.m(), 5 * 6);
        // Original vertices keep their degree.
        for v in 0..4u32 {
            assert_eq!(s.graph.degree(v), 3);
        }
        // Interior vertices have degree 2.
        for w in 4..s.graph.n() as Vertex {
            assert_eq!(s.graph.degree(w), 2);
        }
    }

    #[test]
    fn subdivide_scales_girth() {
        let g = gen::cycle(4);
        let s = subdivide(&g, 1);
        assert_eq!(girth(&s.graph), Some(12));
    }

    #[test]
    fn subdivide_preserves_bipartiteness_and_distances() {
        let g = gen::complete_bipartite(3, 3);
        let s = subdivide(&g, 3);
        assert!(s.graph.is_bipartite());
        // Distance between original endpoints of an edge is 2x+1.
        let (u, v) = s.original_edges[0];
        let d = traversal::bfs_distances(&s.graph, u);
        assert_eq!(d[v as usize], 7);
    }

    #[test]
    fn path_position_roundtrip() {
        let g = gen::cycle(3);
        let s = subdivide(&g, 2);
        for e in 0..3 {
            let interior = s.interior_of_edge(e);
            assert_eq!(interior.len(), 4);
            for (i, &w) in interior.iter().enumerate() {
                assert_eq!(s.path_position(w), Some((e, i + 1)));
                assert!(!s.is_original(w));
            }
        }
        assert!(s.is_original(0));
        assert_eq!(s.path_position(0), None);
    }

    #[test]
    fn gadget_counts_and_degrees() {
        let g = gen::cycle(5);
        let (gs, edges) = dominating_set_gadget(&g);
        assert_eq!(gs.n(), 10);
        assert_eq!(gs.m(), 15);
        for (e, &(u, v)) in edges.iter().enumerate() {
            let w = (5 + e) as Vertex;
            assert_eq!(gs.degree(w), 2);
            assert!(gs.has_edge(w, u));
            assert!(gs.has_edge(w, v));
        }
    }
}
