//! Hypergraphs and the Definition 1.3 communication metric.
//!
//! A packing/covering ILP is modelled as a hypergraph `H` with one vertex
//! per variable and one hyperedge per constraint (the support of the
//! constraint row). Two vertices can talk in one round iff they share a
//! hyperedge; all distance computations in the ILP algorithms of §4–§5 use
//! this metric, optionally restricted to a residual sub-hypergraph (alive
//! vertices + alive hyperedges).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};
use crate::traversal::{Ball, BallScratch};
use std::collections::VecDeque;

/// Identifier of a hyperedge within its [`Hypergraph`].
pub type EdgeId = u32;

/// An immutable hypergraph with dense `u32` vertex and hyperedge ids.
///
/// # Examples
///
/// ```
/// use dapc_graph::Hypergraph;
///
/// // Three variables, two constraints: {0,1} and {1,2}.
/// let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]);
/// assert_eq!(h.n(), 3);
/// assert_eq!(h.m(), 2);
/// assert_eq!(h.incident_edges(1), &[0, 1]);
/// assert_eq!(h.distance(0, 2), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<Vertex>>,
    incidence: Vec<Vec<EdgeId>>,
}

impl Hypergraph {
    /// Builds a hypergraph on `n` vertices from a list of hyperedges.
    ///
    /// Vertices inside each hyperedge are sorted and deduplicated; empty
    /// hyperedges are allowed (they are vacuous constraints).
    ///
    /// # Panics
    ///
    /// Panics if any hyperedge mentions a vertex `>= n`.
    pub fn new(n: usize, mut edges: Vec<Vec<Vertex>>) -> Self {
        let mut incidence: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in edges.iter_mut().enumerate() {
            e.sort_unstable();
            e.dedup();
            for &v in e.iter() {
                assert!(
                    (v as usize) < n,
                    "hyperedge {i} mentions vertex {v} >= n={n}"
                );
                incidence[v as usize].push(i as EdgeId);
            }
        }
        Hypergraph {
            n,
            edges,
            incidence,
        }
    }

    /// Views an ordinary graph as a hypergraph (one 2-vertex hyperedge per
    /// edge). This makes every graph problem expressible in the ILP model.
    pub fn from_graph(g: &Graph) -> Self {
        Hypergraph::new(g.n(), g.edges().map(|(u, v)| vec![u, v]).collect())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The sorted vertex list of hyperedge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> &[Vertex] {
        &self.edges[e as usize]
    }

    /// Iterates over all hyperedges with their ids.
    pub fn hyperedges(&self) -> impl Iterator<Item = (EdgeId, &[Vertex])> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (i as EdgeId, e.as_slice()))
    }

    /// The hyperedges incident to vertex `v`, in increasing id order.
    pub fn incident_edges(&self, v: Vertex) -> &[EdgeId] {
        &self.incidence[v as usize]
    }

    /// Degree of `v` (number of incident hyperedges).
    pub fn degree(&self, v: Vertex) -> usize {
        self.incidence[v as usize].len()
    }

    /// Maximum hyperedge cardinality (the "rank" of the hypergraph).
    pub fn rank(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The primal ("Gaifman") graph: `u ~ v` iff they share a hyperedge.
    /// This is exactly the communication topology of Definition 1.3.
    pub fn primal_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for e in &self.edges {
            for (i, &u) in e.iter().enumerate() {
                for &v in &e[i + 1..] {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Hypergraph distance between two vertices (number of hops in the
    /// primal metric), or `None` if disconnected.
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        let b = self.ball(&[u], usize::MAX, None, None);
        for (d, level) in b.levels.iter().enumerate() {
            if level.contains(&v) {
                return Some(d as u32);
            }
        }
        None
    }

    /// Radius-`r` ball in the primal metric, grouped by exact distance,
    /// optionally restricted to alive vertices and alive hyperedges.
    ///
    /// A hop from `u` to `v` exists iff some alive hyperedge contains both
    /// and both endpoints are alive. Each hyperedge is expanded at most
    /// once, so the total work is `O(Σ|e| + n)` per call.
    ///
    /// # Panics
    ///
    /// Panics if a provided mask has the wrong length.
    pub fn ball(
        &self,
        sources: &[Vertex],
        r: usize,
        alive_vertices: Option<&[bool]>,
        alive_edges: Option<&[bool]>,
    ) -> Ball {
        self.ball_with_scratch(
            sources,
            r,
            alive_vertices,
            alive_edges,
            &mut BallScratch::new(),
        )
    }

    /// [`Hypergraph::ball`] against a caller-owned [`BallScratch`], so
    /// repeated extractions (the preparation step performs one per
    /// cluster) stop allocating the per-call vertex and hyperedge visited
    /// masks. Output is identical to [`Hypergraph::ball`].
    pub fn ball_with_scratch(
        &self,
        sources: &[Vertex],
        r: usize,
        alive_vertices: Option<&[bool]>,
        alive_edges: Option<&[bool]>,
        scratch: &mut BallScratch,
    ) -> Ball {
        if let Some(a) = alive_vertices {
            assert_eq!(a.len(), self.n, "vertex mask length mismatch");
        }
        if let Some(a) = alive_edges {
            assert_eq!(a.len(), self.edges.len(), "edge mask length mismatch");
        }
        let v_ok = |v: Vertex| alive_vertices.is_none_or(|a| a[v as usize]);
        let e_ok = |e: EdgeId| alive_edges.is_none_or(|a| a[e as usize]);
        scratch.ensure_vertices(self.n);
        scratch.ensure_edges(self.edges.len());
        let seen_v = &mut scratch.seen_v;
        let seen_e = &mut scratch.seen_e;
        let touched_e = &mut scratch.touched_e;
        let mut levels: Vec<Vec<Vertex>> = Vec::new();
        let mut frontier: Vec<Vertex> = Vec::new();
        for &s in sources {
            if v_ok(s) && !seen_v[s as usize] {
                seen_v[s as usize] = true;
                frontier.push(s);
            }
        }
        if frontier.is_empty() {
            return Ball { levels };
        }
        levels.push(frontier);
        let mut depth = 0usize;
        while depth < r {
            let mut next: Vec<Vertex> = Vec::new();
            for &u in levels.last().expect("frontier level pushed above") {
                for &e in self.incident_edges(u) {
                    if seen_e[e as usize] || !e_ok(e) {
                        continue;
                    }
                    seen_e[e as usize] = true;
                    touched_e.push(e);
                    for &w in self.edge(e) {
                        if v_ok(w) && !seen_v[w as usize] {
                            seen_v[w as usize] = true;
                            next.push(w);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
            depth += 1;
        }
        // Restore the scratch invariant: clear exactly the marks we set.
        for level in &levels {
            for &v in level {
                seen_v[v as usize] = false;
            }
        }
        for e in touched_e.drain(..) {
            seen_e[e as usize] = false;
        }
        Ball { levels }
    }

    /// Multi-source BFS distances in the primal metric (masked).
    /// Unreachable or dead vertices get [`crate::traversal::UNREACHABLE`].
    pub fn distances(
        &self,
        sources: &[Vertex],
        alive_vertices: Option<&[bool]>,
        alive_edges: Option<&[bool]>,
    ) -> Vec<u32> {
        let mut dist = vec![crate::traversal::UNREACHABLE; self.n];
        let v_ok = |v: Vertex| alive_vertices.is_none_or(|a| a[v as usize]);
        let e_ok = |e: EdgeId| alive_edges.is_none_or(|a| a[e as usize]);
        let mut seen_e = vec![false; self.edges.len()];
        let mut queue = VecDeque::new();
        for &s in sources {
            if v_ok(s) && dist[s as usize] == crate::traversal::UNREACHABLE {
                dist[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &e in self.incident_edges(u) {
                if seen_e[e as usize] || !e_ok(e) {
                    continue;
                }
                seen_e[e as usize] = true;
                for &w in self.edge(e) {
                    if v_ok(w) && dist[w as usize] == crate::traversal::UNREACHABLE {
                        dist[w as usize] = du + 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        dist
    }

    /// Ids of hyperedges entirely contained in `subset` (given as a
    /// membership mask). These are the constraints a covering cluster is
    /// responsible for (Observation 2.2).
    ///
    /// # Panics
    ///
    /// Panics if `subset.len() != self.n()`.
    pub fn edges_inside(&self, subset: &[bool]) -> Vec<EdgeId> {
        assert_eq!(subset.len(), self.n, "subset mask length mismatch");
        self.hyperedges()
            .filter(|(_, e)| e.iter().all(|&v| subset[v as usize]))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of hyperedges that intersect `subset` at all.
    pub fn edges_touching(&self, subset: &[bool]) -> Vec<EdgeId> {
        assert_eq!(subset.len(), self.n, "subset mask length mismatch");
        self.hyperedges()
            .filter(|(_, e)| e.iter().any(|&v| subset[v as usize]))
            .map(|(i, _)| i)
            .collect()
    }

    /// Weak diameter of a vertex set in the primal metric of the *whole*
    /// hypergraph; `None` if some pair is disconnected.
    pub fn weak_diameter(&self, s: &[Vertex]) -> Option<u32> {
        let mut best = 0u32;
        for &u in s {
            let dist = self.distances(&[u], None, None);
            for &v in s {
                let d = dist[v as usize];
                if d == crate::traversal::UNREACHABLE {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }
}

impl std::fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hypergraph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn triangle_chain() -> Hypergraph {
        // Hyperedges {0,1,2}, {2,3,4}, {4,5,6}: a chain of triangles.
        Hypergraph::new(7, vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6]])
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let h = Hypergraph::new(4, vec![vec![2, 0, 2, 1]]);
        assert_eq!(h.edge(0), &[0, 1, 2]);
        assert_eq!(h.rank(), 3);
    }

    #[test]
    fn from_graph_matches() {
        let g = gen::cycle(5);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(h.m(), 5);
        assert_eq!(h.primal_graph(), g);
    }

    #[test]
    fn primal_distances() {
        let h = triangle_chain();
        assert_eq!(h.distance(0, 1), Some(1)); // share edge 0
        assert_eq!(h.distance(0, 3), Some(2)); // via vertex 2
        assert_eq!(h.distance(0, 6), Some(3));
        assert_eq!(h.distance(0, 0), Some(0));
    }

    #[test]
    fn disconnected_distance_is_none() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(h.distance(0, 3), None);
    }

    #[test]
    fn ball_levels_in_hypergraph_metric() {
        let h = triangle_chain();
        let b = h.ball(&[0], 2, None, None);
        assert_eq!(b.level(0), &[0]);
        let mut l1 = b.level(1).to_vec();
        l1.sort_unstable();
        assert_eq!(l1, vec![1, 2]);
        let mut l2 = b.level(2).to_vec();
        l2.sort_unstable();
        assert_eq!(l2, vec![3, 4]);
    }

    #[test]
    fn masked_ball_respects_dead_edge() {
        let h = triangle_chain();
        let edge_alive = vec![true, false, true];
        let b = h.ball(&[0], 5, None, Some(&edge_alive));
        // Edge {2,3,4} is dead, so nothing past vertex 2.
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn masked_ball_respects_dead_vertex() {
        let h = triangle_chain();
        let mut alive = vec![true; 7];
        alive[2] = false;
        alive[4] = false;
        let b = h.ball(&[0], 5, Some(&alive), None);
        // With both shared vertices dead the chain is cut... but edge 0 is
        // still alive, so 0 reaches 1 only.
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn scratch_reuse_matches_fresh_calls() {
        let h = triangle_chain();
        let mut scratch = BallScratch::new();
        let edge_alive = vec![true, false, true];
        let mut v_alive = vec![true; 7];
        v_alive[2] = false;
        for r in 0..5 {
            assert_eq!(
                h.ball_with_scratch(&[0], r, None, None, &mut scratch),
                h.ball(&[0], r, None, None)
            );
            assert_eq!(
                h.ball_with_scratch(&[0, 6], r, Some(&v_alive), Some(&edge_alive), &mut scratch),
                h.ball(&[0, 6], r, Some(&v_alive), Some(&edge_alive))
            );
        }
    }

    #[test]
    fn edges_inside_and_touching() {
        let h = triangle_chain();
        let mut mask = vec![false; 7];
        for v in [0, 1, 2, 3, 4] {
            mask[v] = true;
        }
        assert_eq!(h.edges_inside(&mask), vec![0, 1]);
        assert_eq!(h.edges_touching(&mask), vec![0, 1, 2]);
    }

    #[test]
    fn weak_diameter_of_chain() {
        let h = triangle_chain();
        assert_eq!(h.weak_diameter(&[0, 6]), Some(3));
        assert_eq!(h.weak_diameter(&[1, 2]), Some(1));
    }

    #[test]
    fn distances_multi_source() {
        let h = triangle_chain();
        let d = h.distances(&[0, 6], None, None);
        assert_eq!(d[3], 2);
        assert_eq!(d[4], 1);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn empty_hyperedges_are_tolerated() {
        let h = Hypergraph::new(2, vec![vec![], vec![0, 1]]);
        assert_eq!(h.m(), 2);
        assert_eq!(h.edge(0), &[] as &[Vertex]);
        assert_eq!(h.distance(0, 1), Some(1));
    }
}
