//! Power graphs `G^k`.
//!
//! The Ghaffari–Kuhn–Maus baseline (§1.2 of the paper) computes a network
//! decomposition of the power graph `G^{2k}`, whose edges join every pair of
//! vertices at distance at most `2k` in `G`.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};
use crate::traversal;

/// The `k`-th power of `g`: vertices are unchanged, and `u ~ v` iff
/// `1 <= dist_G(u, v) <= k`.
///
/// Runs a truncated BFS per vertex; `O(n · |ball|)`. For `k = 0` the result
/// has no edges, and `G^1 = G`.
///
/// ```
/// use dapc_graph::{gen, power::power_graph};
/// let p = gen::path(5);
/// let p2 = power_graph(&p, 2);
/// assert!(p2.has_edge(0, 2));
/// assert!(!p2.has_edge(0, 3));
/// ```
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    if k == 0 {
        return b.build();
    }
    for v in g.vertices() {
        let ball = traversal::ball(g, &[v], k, None);
        for u in ball.iter() {
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// Distance-`k` closed neighbourhoods `N^k(v)` for every vertex, as sorted
/// vertex lists. `N^k(v)` always contains `v` itself.
///
/// This is the hyperedge family of the minimum-weight `k`-distance
/// dominating set problem (Definition 1.3 of the paper).
pub fn k_neighborhoods(g: &Graph, k: usize) -> Vec<Vec<Vertex>> {
    g.vertices()
        .map(|v| {
            let mut ball: Vec<Vertex> = traversal::ball(g, &[v], k, None).iter().collect();
            ball.sort_unstable();
            ball
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn zeroth_power_is_edgeless() {
        let g = gen::cycle(5);
        assert_eq!(power_graph(&g, 0).m(), 0);
    }

    #[test]
    fn first_power_is_identity() {
        let g = gen::gnp(60, 0.1, &mut gen::seeded_rng(2));
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    fn cycle_square() {
        let g = gen::cycle(8);
        let g2 = power_graph(&g, 2);
        assert!(g2.is_regular(4));
        assert!(g2.has_edge(0, 2));
        assert!(!g2.has_edge(0, 3));
    }

    #[test]
    fn large_power_is_per_component_clique() {
        let g = gen::path(6);
        let gp = power_graph(&g, 10);
        assert_eq!(gp.m(), 15);
    }

    #[test]
    fn power_respects_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let gp = power_graph(&g, 5);
        assert!(gp.has_edge(0, 1));
        assert!(gp.has_edge(2, 3));
        assert!(!gp.has_edge(1, 2));
    }

    #[test]
    fn k_neighborhoods_on_path() {
        let g = gen::path(5);
        let nk = k_neighborhoods(&g, 1);
        assert_eq!(nk[0], vec![0, 1]);
        assert_eq!(nk[2], vec![1, 2, 3]);
        let nk2 = k_neighborhoods(&g, 2);
        assert_eq!(nk2[2], vec![0, 1, 2, 3, 4]);
    }

    use crate::graph::Graph;
}
