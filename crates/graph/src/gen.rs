//! Graph generators: deterministic families, random models, and the
//! counterexample families of Appendix C of the paper.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The path `P_n` on vertices `0 — 1 — … — n−1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as Vertex, i as Vertex);
    }
    b.build()
}

/// The cycle `C_n` (requires `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.add_edge(i as Vertex, ((i + 1) % n) as Vertex);
    }
    b.build()
}

/// The complete graph `K_n`.
///
/// This is the family of Claim C.1: running the Elkin–Neiman decomposition
/// on `K_n` deletes `n − 1` vertices with probability `Ω(ε)`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as Vertex, j as Vertex);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left side `0..a`, right side
/// `a..a+b`).
pub fn complete_bipartite(a: usize, b_: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_, a * b_);
    for i in 0..a {
        for j in 0..b_ {
            b.add_edge(i as Vertex, (a + j) as Vertex);
        }
    }
    b.build()
}

/// The star `K_{1,n−1}` with centre `0`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(0, i as Vertex);
    }
    b.build()
}

/// The `rows × cols` grid graph; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    b.build()
}

/// The complete `d`-ary rooted tree of given `depth` (root `0`). A
/// `depth`-0 tree is a single vertex.
pub fn complete_tree(d: usize, depth: usize) -> Graph {
    assert!(d >= 1, "arity must be positive");
    let mut n = 1usize;
    let mut layer = 1usize;
    for _ in 0..depth {
        layer *= d;
        n += layer;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::with_capacity(frontier.len() * d);
        for &p in &frontier {
            for _ in 0..d {
                b.add_edge(p as Vertex, next as Vertex);
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
pub fn gnp(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p >= 1.0 {
        return complete(n);
    }
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    // Geometric skipping over the (n choose 2) pair sequence.
    let log1p = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut idx = 0usize;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / log1p).floor() as usize;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        let (a, bb) = pair_from_index(idx, n);
        b.add_edge(a as Vertex, bb as Vertex);
        idx += 1;
    }
    b.build()
}

/// Maps a linear index into the canonical pair sequence
/// `(0,1), (0,2), …, (0,n−1), (1,2), …` of an `n`-vertex complete graph.
fn pair_from_index(mut idx: usize, n: usize) -> (usize, usize) {
    let mut a = 0usize;
    let mut row = n - 1;
    while idx >= row {
        idx -= row;
        a += 1;
        row -= 1;
    }
    (a, a + 1 + idx)
}

/// A uniformly random labelled tree on `n` vertices (Prüfer sequence).
pub fn random_tree(n: usize, rng: &mut StdRng) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("prufer invariant");
        b.add_edge(leaf as Vertex, x as Vertex);
        degree[x] -= 1;
        if degree[x] == 1 {
            heap.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(u) = heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = heap.pop().expect("two leaves remain");
    b.add_edge(u as Vertex, v as Vertex);
    b.build()
}

/// A random `d`-regular simple graph via the configuration model with
/// restarts (requires `n·d` even and `d < n`).
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, rng: &mut StdRng) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    if d == 0 {
        return Graph::empty(n);
    }
    'restart: loop {
        let mut stubs: Vec<Vertex> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v as Vertex, d))
            .collect();
        stubs.shuffle(rng);
        let mut seen = std::collections::BTreeSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for c in stubs.chunks_exact(2) {
            let (u, v) = (c[0], c[1]);
            if u == v {
                continue 'restart;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                continue 'restart;
            }
            edges.push(key);
        }
        return Graph::from_edges(n, &edges);
    }
}

/// The Claim C.2 counterexample for the Miller–Peng–Xu decomposition.
///
/// `n = 4t + 2` vertices: four blocks `S_L, S_R, L, R` of size `t` plus two
/// hubs `u, v`. `(L, R)` is a complete bipartite graph; `u` is adjacent to
/// `S_L ∪ L` and `v` to `S_R ∪ R`. With probability `Ω(ε)` the MPX
/// clustering cuts all `t²` edges between `L` and `R`.
///
/// Block layout: `S_L = 0..t`, `S_R = t..2t`, `L = 2t..3t`, `R = 3t..4t`,
/// `u = 4t`, `v = 4t + 1`. See [`MpxGadget`] for the handles.
pub fn mpx_gadget(t: usize) -> (Graph, MpxGadget) {
    assert!(t >= 1, "gadget needs t >= 1");
    let n = 4 * t + 2;
    let u = (4 * t) as Vertex;
    let v = (4 * t + 1) as Vertex;
    let mut b = GraphBuilder::with_capacity(n, t * t + 4 * t);
    for i in 0..t {
        for j in 0..t {
            b.add_edge((2 * t + i) as Vertex, (3 * t + j) as Vertex);
        }
    }
    for i in 0..t {
        b.add_edge(u, i as Vertex); // u — S_L
        b.add_edge(u, (2 * t + i) as Vertex); // u — L
        b.add_edge(v, (t + i) as Vertex); // v — S_R
        b.add_edge(v, (3 * t + i) as Vertex); // v — R
    }
    let layout = MpxGadget {
        t,
        u,
        v,
        sl: (0..t as Vertex).collect(),
        sr: (t as Vertex..2 * t as Vertex).collect(),
        l: (2 * t as Vertex..3 * t as Vertex).collect(),
        r: (3 * t as Vertex..4 * t as Vertex).collect(),
    };
    (b.build(), layout)
}

/// Block handles for the [`mpx_gadget`] family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpxGadget {
    /// Block size `t`.
    pub t: usize,
    /// Hub adjacent to `S_L ∪ L`.
    pub u: Vertex,
    /// Hub adjacent to `S_R ∪ R`.
    pub v: Vertex,
    /// Pendant block attached to `u`.
    pub sl: Vec<Vertex>,
    /// Pendant block attached to `v`.
    pub sr: Vec<Vertex>,
    /// Left side of the complete bipartite core.
    pub l: Vec<Vertex>,
    /// Right side of the complete bipartite core.
    pub r: Vec<Vertex>,
}

/// Greedy random graph of girth `> girth_floor`: repeatedly propose random
/// non-edges and keep those that do not close a cycle of length
/// `<= girth_floor`. Stops after `attempts` proposals.
///
/// Useful as a scalable stand-in for high-girth regular-ish graphs when an
/// exact Ramanujan construction (see [`crate::lps`]) is too rigid.
pub fn high_girth(n: usize, girth_floor: usize, attempts: usize, rng: &mut StdRng) -> Graph {
    let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    for _ in 0..attempts {
        let a = rng.random_range(0..n) as Vertex;
        let b = rng.random_range(0..n) as Vertex;
        if a == b || adj[a as usize].contains(&b) {
            continue;
        }
        // BFS from a, bounded depth: adding {a,b} creates a cycle of length
        // dist(a,b) + 1; require dist(a,b) + 1 > girth_floor.
        if bounded_dist(&adj, a, b, girth_floor.saturating_sub(1)) {
            continue;
        }
        adj[a as usize].push(b);
        adj[b as usize].push(a);
        edges.push((a, b));
    }
    Graph::from_edges(n, &edges)
}

/// Whether `dist(a, b) <= cap` in the adjacency-list graph.
fn bounded_dist(adj: &[Vec<Vertex>], a: Vertex, b: Vertex, cap: usize) -> bool {
    let mut dist = std::collections::BTreeMap::new();
    dist.insert(a, 0usize);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(a);
    while let Some(x) = queue.pop_front() {
        let dx = dist[&x];
        if x == b {
            return true;
        }
        if dx >= cap {
            continue;
        }
        for &y in &adj[x as usize] {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(y) {
                e.insert(dx + 1);
                queue.push_back(y);
            }
        }
    }
    false
}

/// Deterministically seeded RNG helper so examples and experiments are
/// reproducible.
///
/// ```
/// use dapc_graph::gen;
/// let mut rng = gen::seeded_rng(42);
/// let g = gen::gnp(100, 0.05, &mut rng);
/// let g2 = gen::gnp(100, 0.05, &mut gen::seeded_rng(42));
/// assert_eq!(g, g2);
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    // dapc-allow(rng): the canonical seeded constructor — the named seed is the derivation key
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(10);
        assert_eq!(p.m(), 9);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(5), 2);
        let c = cycle(10);
        assert!(c.is_regular(2));
        assert_eq!(c.m(), 10);
    }

    #[test]
    fn complete_graph_is_regular() {
        let k = complete(7);
        assert!(k.is_regular(6));
        assert_eq!(k.m(), 21);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(g.is_bipartite());
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(traversal::diameter(&g), 5);
    }

    #[test]
    fn complete_tree_counts() {
        let t = complete_tree(2, 3);
        assert_eq!(t.n(), 15);
        assert_eq!(t.m(), 14);
        assert_eq!(t.degree(0), 2);
        let t18 = complete_tree(18, 1);
        assert_eq!(t18.n(), 19);
        assert_eq!(t18.degree(0), 18);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = seeded_rng(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut rng = seeded_rng(7);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 7;
        let mut idx = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                assert_eq!(pair_from_index(idx, n), (a, b));
                idx += 1;
            }
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = seeded_rng(3);
        for n in [1usize, 2, 3, 10, 100] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.m(), n.saturating_sub(1));
            let (_, k) = t.connected_components();
            assert_eq!(k, if n == 0 { 0 } else { 1 });
        }
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = seeded_rng(5);
        let g = random_regular(50, 4, &mut rng);
        assert!(g.is_regular(4));
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn mpx_gadget_structure() {
        let (g, lay) = mpx_gadget(5);
        assert_eq!(g.n(), 22);
        assert_eq!(g.m(), 25 + 20);
        assert_eq!(g.degree(lay.u), 10);
        assert_eq!(g.degree(lay.v), 10);
        for &x in &lay.sl {
            assert_eq!(g.degree(x), 1);
        }
        for &x in &lay.l {
            assert_eq!(g.degree(x), 6); // t neighbours in R + hub u
        }
        // L-R is complete bipartite.
        for &a in &lay.l {
            for &b in &lay.r {
                assert!(g.has_edge(a, b));
            }
        }
    }

    #[test]
    fn high_girth_respects_floor() {
        let mut rng = seeded_rng(11);
        let g = high_girth(200, 6, 5000, &mut rng);
        assert!(g.m() > 50, "generator should place a fair number of edges");
        let girth = crate::girth::girth(&g);
        assert!(girth.is_none_or(|x| x > 6), "girth {girth:?} too small");
    }
}
