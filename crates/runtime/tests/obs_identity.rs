//! Observability must be a pure observer: turning metrics on changes no
//! job outcome, no group summary, and no snapshot byte.
//!
//! The one thing metrics *are* allowed to perturb is timing — `micros`
//! fields and `wall` durations differ between any two runs, metrics or
//! not — so the byte-level comparison zeroes timing the same way the
//! shard-merge doctest does, and the structural comparisons use the
//! deterministic `(key, report)` payload that `BatchReport::outcomes`
//! documents as worker- and cache-invariant.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{
    solve_many, solve_many_streaming, BatchAggregator, Corpus, GroupSummary, JobResult,
    RuntimeConfig, ShardReport,
};

/// `dapc_obs::set_enabled` flips process-global state, so the tests in
/// this binary must not interleave their enabled/disabled phases.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn corpus() -> Corpus {
    Corpus::builder()
        .instance(
            "MIS/cycle14",
            problems::max_independent_set_unweighted(&gen::cycle(14)),
        )
        .instance(
            "VC/cycle12",
            problems::min_vertex_cover_unweighted(&gen::cycle(12)),
        )
        .backend("three-phase")
        .backend("bnb")
        .eps(0.3)
        .seeds(0..2)
        .build()
}

fn zero_group_timing(mut groups: Vec<GroupSummary>) -> Vec<GroupSummary> {
    for g in &mut groups {
        g.micros = 0;
    }
    groups
}

/// Runs the corpus on the parallel path and returns the deterministic
/// payload: canonical-order `(key, report)` pairs plus timing-zeroed
/// group summaries.
fn parallel_outcomes(enabled: bool) -> (Vec<JobResult>, Vec<GroupSummary>) {
    dapc_obs::set_enabled(enabled);
    let report = solve_many(&corpus(), &RuntimeConfig::new().jobs(4).prep_workers(2));
    dapc_obs::set_enabled(false);
    (report.results, zero_group_timing(report.groups))
}

#[test]
fn metrics_do_not_change_job_outcomes_or_groups() {
    let _guard = obs_lock();
    let (off_results, off_groups) = parallel_outcomes(false);
    let (on_results, on_groups) = parallel_outcomes(true);

    assert_eq!(off_results.len(), on_results.len());
    for (off, on) in off_results.iter().zip(&on_results) {
        assert_eq!(off.key, on.key, "canonical delivery order changed");
        assert_eq!(
            off.report, on.report,
            "metrics changed the outcome of {:?}",
            off.key
        );
    }
    assert_eq!(off_groups, on_groups, "metrics changed a group summary");
}

/// Streams the corpus sequentially (`jobs = 1`, so cache counters are
/// deterministic), zeroes per-job timing, and serialises the resulting
/// shard snapshot. Everything timing-shaped is forced to a fixed value
/// *identically in both configurations*, so any remaining byte
/// difference is a real metrics side effect.
fn shard_snapshot_bytes(enabled: bool) -> Vec<u8> {
    dapc_obs::set_enabled(enabled);
    let corpus = corpus();
    let collected: Arc<Mutex<Vec<JobResult>>> = Arc::default();
    let sink = Arc::clone(&collected);
    let stream = solve_many_streaming(&corpus, &RuntimeConfig::new().jobs(1), move |mut r| {
        r.micros = 0;
        sink.lock().expect("result sink").push(r);
    });
    dapc_obs::set_enabled(false);

    let mut aggregator = BatchAggregator::new();
    for r in collected.lock().expect("result sink").iter() {
        aggregator.push(r);
    }
    let report = ShardReport {
        shard: 0,
        shards: 1,
        corpus_jobs: stream.jobs,
        jobs: stream.jobs,
        aggregator,
        cache: stream.cache,
        workers: stream.workers,
        peak_buffered: stream.peak_buffered,
        wall: Duration::ZERO,
        prep: None,
    };
    let mut bytes = Vec::new();
    report.save_to(&mut bytes).expect("serialise shard report");
    bytes
}

#[test]
fn metrics_do_not_change_shard_snapshot_bytes() {
    let _guard = obs_lock();
    let off = shard_snapshot_bytes(false);
    let on = shard_snapshot_bytes(true);
    assert!(!off.is_empty());
    assert_eq!(off, on, "metrics changed serialised shard-report bytes");
}

/// The work-stealing executor's headline invariant: the deterministic
/// `(key, report)` payload is byte-identical at every worker count —
/// stealing, parking, and cooperative yields reorder only *when* tasks
/// run, never what they compute.
#[test]
fn worker_count_does_not_change_outcomes() {
    let _guard = obs_lock();
    let run = |workers: usize| {
        let exec = dapc_exec::Executor::new(workers);
        dapc_exec::with_executor(&exec, || {
            let report = solve_many(&corpus(), &RuntimeConfig::new().jobs(4).prep_workers(2));
            (report.results, zero_group_timing(report.groups))
        })
    };
    let (base_results, base_groups) = run(1);
    for workers in [2usize, 4] {
        let (results, groups) = run(workers);
        assert_eq!(base_results.len(), results.len());
        for (one, many) in base_results.iter().zip(&results) {
            assert_eq!(
                one.key, many.key,
                "delivery order changed at {workers} workers"
            );
            assert_eq!(
                one.report, many.report,
                "{workers}-worker pool changed the outcome of {:?}",
                one.key
            );
        }
        assert_eq!(
            base_groups, groups,
            "{workers}-worker pool changed a group summary"
        );
    }
}
