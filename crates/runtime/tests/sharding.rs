//! Guarantees of the multi-process shard layer: any partition of a
//! corpus into 1–4 shards merges back to the unsharded aggregation
//! (timings aside), shard snapshots round-trip byte for byte and ship
//! warm starts, and every loader rejects truncated or corrupt input with
//! an `Err` — never a panic, never a half-load.

use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{
    solve_many, solve_shard, solve_shard_with_cache, BackendSummary, BatchAggregator, Corpus,
    GroupSummary, PrepCache, RuntimeConfig, ShardReport,
};
use proptest::prelude::*;

fn small_corpus(instances: usize, backends: &[&str], seeds: u64) -> Corpus {
    let pool = [
        (
            "MIS/cycle12",
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        ),
        (
            "VC/cycle10",
            problems::min_vertex_cover_unweighted(&gen::cycle(10)),
        ),
        (
            "MIS/gnp12",
            problems::max_independent_set_unweighted(&gen::gnp(12, 0.15, &mut gen::seeded_rng(1))),
        ),
        (
            "DS/cycle9",
            problems::min_dominating_set_unweighted(&gen::cycle(9)),
        ),
    ];
    let mut b = Corpus::builder()
        .backends(backends.iter().copied())
        .eps(0.3)
        .seeds(0..seeds)
        .base_config(SolveConfig::new().ensemble_runs(2));
    for (name, ilp) in pool.into_iter().take(instances) {
        b = b.instance(name, ilp);
    }
    b.build()
}

fn sans_micros_groups(groups: &[GroupSummary]) -> Vec<GroupSummary> {
    groups
        .iter()
        .cloned()
        .map(|mut g| {
            g.micros = 0;
            g
        })
        .collect()
}

fn sans_micros_backends(backends: &[BackendSummary]) -> Vec<BackendSummary> {
    backends
        .iter()
        .cloned()
        .map(|mut b| {
            b.micros = 0;
            b
        })
        .collect()
}

/// Solves every shard of an `n`-way split and merges the reports in a
/// configurable order (rotated start, optionally reversed) — merge must
/// be commutative, so every order has to agree.
fn solve_sharded(
    corpus: &Corpus,
    shards: usize,
    rt: &RuntimeConfig,
    rotate: usize,
    reverse: bool,
) -> ShardReport {
    let mut order: Vec<usize> = (0..shards).map(|i| (i + rotate) % shards).collect();
    if reverse {
        order.reverse();
    }
    let mut reports = order
        .into_iter()
        .map(|i| solve_shard(corpus, i, shards, rt));
    let mut merged = reports.next().expect("at least one shard");
    for r in reports {
        merged.merge(r);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The ISSUE acceptance property: over random corpora, splitting
    /// into 1–4 shards, solving each shard independently and merging the
    /// reports (in a random order) equals the unsharded `BatchReport`
    /// aggregation, modulo timings.
    #[test]
    fn shard_merge_equals_unsharded_batch_on_random_partitions(
        instances in 1usize..=4,
        backend_mask in 1usize..8,
        seeds in 1u64..4,
        shards in 1usize..=4,
        jobs in 1usize..4,
        rotate in 0usize..4,
        reverse in 0usize..2,
    ) {
        let reverse = reverse == 1;
        let all = ["three-phase", "greedy", "bnb"];
        let backends: Vec<&str> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| backend_mask >> i & 1 == 1)
            .map(|(_, b)| *b)
            .collect();
        let corpus = small_corpus(instances, &backends, seeds);
        let rt = RuntimeConfig::new().jobs(jobs);
        let reference = solve_many(&corpus, &rt);
        let merged = solve_sharded(&corpus, shards, &rt, rotate % shards, reverse);
        prop_assert_eq!(merged.jobs, corpus.len());
        // The audited reorder-buffer bound holds inside every shard too.
        prop_assert!(merged.peak_buffered <= (2 * jobs).max(16));
        let stream = merged.finish();
        prop_assert_eq!(stream.jobs, reference.results.len());
        prop_assert_eq!(
            sans_micros_groups(&reference.groups),
            sans_micros_groups(&stream.groups)
        );
        prop_assert_eq!(
            sans_micros_backends(&reference.backends),
            sans_micros_backends(&stream.backends)
        );
    }
}

/// More shards than jobs: the surplus shards are empty, solve cleanly,
/// and merge as no-ops.
#[test]
fn empty_shards_solve_and_merge_cleanly() {
    let corpus = small_corpus(1, &["greedy"], 2); // 2 jobs
    let shards = 4;
    let empty_shard = (0..shards)
        .find(|&i| corpus.shard_range(i, shards).is_empty())
        .expect("4 shards of 2 jobs leave empty shards");
    let empty = solve_shard(&corpus, empty_shard, shards, &RuntimeConfig::new());
    assert_eq!(empty.jobs, 0);
    assert_eq!(empty.aggregator.jobs(), 0);
    let merged = solve_sharded(&corpus, shards, &RuntimeConfig::new(), 0, false);
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&merged.finish().groups)
    );
}

/// The finest split: one job per shard still recombines exactly — every
/// cell is reassembled purely from single-job fragments.
#[test]
fn single_job_shards_recombine_exactly() {
    let corpus = small_corpus(2, &["greedy", "bnb"], 2);
    let shards = corpus.len();
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    let merged = solve_sharded(&corpus, shards, &RuntimeConfig::new(), 3, true);
    let stream = merged.finish();
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&stream.groups)
    );
    assert_eq!(
        sans_micros_backends(&reference.backends),
        sans_micros_backends(&stream.backends)
    );
}

/// Snapshots are canonical: save → load → save reproduces the identical
/// byte stream, for both the aggregator and the full shard report.
#[test]
fn shard_snapshots_round_trip_byte_for_byte() {
    let corpus = small_corpus(2, &["three-phase"], 2);
    let report = solve_shard(&corpus, 0, 2, &RuntimeConfig::new()).with_prep(&PrepCache::new());
    let mut bytes = Vec::new();
    report.save_to(&mut bytes).expect("write to a Vec");
    let loaded = ShardReport::load_from(bytes.as_slice()).expect("read back");
    assert_eq!(loaded.shard, report.shard);
    assert_eq!(loaded.jobs, report.jobs);
    assert_eq!(loaded.cache, report.cache);
    // Wall time is persisted at microsecond precision.
    assert_eq!(loaded.wall.as_micros(), report.wall.as_micros());
    let mut reserialised = Vec::new();
    loaded.save_to(&mut reserialised).expect("write to a Vec");
    assert_eq!(bytes, reserialised, "snapshot is not canonical");

    let mut agg_bytes = Vec::new();
    report.aggregator.save_to(&mut agg_bytes).expect("to Vec");
    let agg = BatchAggregator::load_from(agg_bytes.as_slice()).expect("read back");
    assert_eq!(agg.jobs(), report.aggregator.jobs());
    let mut agg_reserialised = Vec::new();
    agg.save_to(&mut agg_reserialised).expect("to Vec");
    assert_eq!(agg_bytes, agg_reserialised);
}

/// The full multi-process protocol through bytes: two shards serialised,
/// re-loaded, merged and finished equal the single-process aggregation.
#[test]
fn merged_snapshots_equal_single_process_aggregation() {
    let corpus = small_corpus(3, &["three-phase", "bnb"], 2);
    let rt = RuntimeConfig::new().jobs(2);
    let reference = solve_many(&corpus, &rt);
    let mut shipped = Vec::new();
    for shard in 0..2 {
        let mut bytes = Vec::new();
        solve_shard(&corpus, shard, 2, &rt)
            .save_to(&mut bytes)
            .expect("write to a Vec");
        shipped.push(bytes);
    }
    let mut merged = ShardReport::load_from(shipped[1].as_slice()).expect("shard 1");
    merged.merge(ShardReport::load_from(shipped[0].as_slice()).expect("shard 0"));
    let stream = merged.finish();
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&stream.groups)
    );
    assert_eq!(
        sans_micros_backends(&reference.backends),
        sans_micros_backends(&stream.backends)
    );
}

/// Canonical bytes across histories: an aggregator that pushed a whole
/// run and one merged from shard fragments of the *same* results (split
/// mid-cell, so boundary fragments must coalesce) serialise to
/// identical snapshots.
#[test]
fn merged_and_pushed_aggregators_serialise_identically() {
    let corpus = small_corpus(2, &["greedy"], 2); // 4 jobs, 2 cells
    let rt = RuntimeConfig::new().reference_optima(false);
    let results = solve_many(&corpus, &rt).results;

    let mut whole = BatchAggregator::new();
    for r in &results {
        whole.push(r);
    }
    // Split at index 1 — inside the first cell's seed run.
    let mut left = BatchAggregator::new();
    left.push(&results[0]);
    let mut right = BatchAggregator::with_optima_at(std::collections::BTreeMap::new(), 1);
    for r in &results[1..] {
        right.push(r);
    }
    let mut merged = right;
    merged.merge(left);

    let bytes = |a: &BatchAggregator| {
        let mut v = Vec::new();
        a.save_to(&mut v).expect("write to a Vec");
        v
    };
    assert_eq!(
        bytes(&whole),
        bytes(&merged),
        "the same aggregation must serialise identically, whatever its history"
    );
}

/// A checkpoint of a still-empty shard aggregator keeps its canonical
/// start offset: resumed pushes land at the right indices, so the merge
/// with the other shard neither overlaps nor gaps.
#[test]
fn empty_shard_checkpoint_resumes_at_its_offset() {
    let corpus = small_corpus(2, &["greedy"], 2); // 4 jobs
    let rt = RuntimeConfig::new().reference_optima(false);
    let batch = solve_many(&corpus, &rt);

    let fresh = BatchAggregator::with_optima_at(std::collections::BTreeMap::new(), 2);
    let mut bytes = Vec::new();
    fresh.save_to(&mut bytes).expect("write to a Vec");
    let mut resumed = BatchAggregator::load_from(bytes.as_slice()).expect("read back");
    assert_eq!(resumed.jobs(), 0);
    for r in &batch.results[2..] {
        resumed.push(r);
    }
    let mut shard0 = BatchAggregator::new();
    for r in &batch.results[..2] {
        shard0.push(r);
    }
    resumed.merge(shard0); // start 0 after a lost offset would overlap here
    let (groups, _) = resumed.finish();
    assert_eq!(groups, batch.groups);
}

/// Warm-start shipping between cooperating shards: shard 0's bundled
/// prep snapshot seeds shard 1's cache, flipping cold misses into hits
/// without moving a single aggregate.
#[test]
fn prep_snapshot_ships_warm_start_between_shards() {
    // One instance family swept over seeds: both shards share all their
    // subset solves, the best case for shipping prep work.
    let corpus = Corpus::builder()
        .instance(
            "MIS/cycle12",
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        )
        .backend("three-phase")
        .eps(0.3)
        .seeds(0..6)
        .build();
    let rt = RuntimeConfig::new();
    let reference = solve_many(&corpus, &rt);

    let cold_cache = PrepCache::new();
    let first = solve_shard_with_cache(&corpus, 0, 2, &rt, &cold_cache).with_prep(&cold_cache);
    assert!(first.cache.misses > 0, "cold shard must solve something");

    // A cold control run of shard 1, for the counter comparison.
    let control = solve_shard(&corpus, 1, 2, &rt);

    let warm_cache = PrepCache::new();
    let seeded = first.warm_start(&warm_cache).expect("load the snapshot");
    assert!(seeded > 0, "shard 0 shipped a non-empty memo");
    let second = solve_shard_with_cache(&corpus, 1, 2, &rt, &warm_cache);
    assert!(
        second.cache.misses < control.cache.misses,
        "warm start must save exact solves ({} vs {})",
        second.cache.misses,
        control.cache.misses
    );

    let mut merged = first;
    merged.merge(second);
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&merged.finish().groups),
        "warm start moved an aggregate"
    );
}

/// A report with no bundled snapshot warms nothing and is not an error.
#[test]
fn warm_start_without_a_snapshot_is_a_no_op() {
    let corpus = small_corpus(1, &["greedy"], 1);
    let report = solve_shard(&corpus, 0, 1, &RuntimeConfig::new());
    assert!(report.prep.is_none());
    let cache = PrepCache::new();
    assert_eq!(report.warm_start(&cache).expect("no-op"), 0);
    assert_eq!(cache.stats().entries, 0);
}

/// Loader hardening, exhaustively: truncating either snapshot format at
/// *any* byte — which covers every field boundary — is an `Err`, never a
/// panic. (Every field of both formats is mandatory, so no strict prefix
/// is a valid stream.)
#[test]
fn truncated_snapshots_error_at_every_byte() {
    let corpus = small_corpus(1, &["greedy"], 2);
    let report = solve_shard(&corpus, 0, 2, &RuntimeConfig::new()).with_prep(&PrepCache::new());
    let mut shard_bytes = Vec::new();
    report.save_to(&mut shard_bytes).expect("write to a Vec");
    for cut in 0..shard_bytes.len() {
        assert!(
            ShardReport::load_from(&shard_bytes[..cut]).is_err(),
            "shard-report prefix of {cut} bytes must not load"
        );
    }
    let mut agg_bytes = Vec::new();
    report.aggregator.save_to(&mut agg_bytes).expect("to Vec");
    for cut in 0..agg_bytes.len() {
        assert!(
            BatchAggregator::load_from(&agg_bytes[..cut]).is_err(),
            "aggregator prefix of {cut} bytes must not load"
        );
    }
}

/// Wrong-version headers fail with a version-specific `InvalidData` (not
/// a generic bad-magic error, and certainly not a silent
/// misinterpretation), for all three runtime snapshot formats.
#[test]
fn wrong_version_headers_are_rejected() {
    let corpus = small_corpus(1, &["greedy"], 1);
    let cache = PrepCache::new();
    let report = solve_shard_with_cache(&corpus, 0, 1, &RuntimeConfig::new(), &cache);

    let mut shard_bytes = Vec::new();
    report.save_to(&mut shard_bytes).expect("write to a Vec");
    let mut agg_bytes = Vec::new();
    report.aggregator.save_to(&mut agg_bytes).expect("to Vec");
    let mut prep_bytes = Vec::new();
    cache.save_to(&mut prep_bytes).expect("to Vec");

    for bytes in [&mut shard_bytes, &mut agg_bytes, &mut prep_bytes] {
        bytes[7] = 0x7f; // the version byte of every runtime format
    }
    for (what, err) in [
        (
            "shard",
            ShardReport::load_from(shard_bytes.as_slice()).err(),
        ),
        (
            "aggregator",
            BatchAggregator::load_from(agg_bytes.as_slice()).err(),
        ),
        (
            "prep cache",
            PrepCache::new().load_into(prep_bytes.as_slice()).err(),
        ),
    ] {
        let err = err.unwrap_or_else(|| panic!("{what}: future version must fail"));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{what}");
        assert!(err.to_string().contains("version"), "{what}: {err}");
    }
}

/// A corrupt prep-cache snapshot must not half-warm the cache: the first
/// family is well-formed, the stream dies inside the second, and nothing
/// may be loaded.
#[test]
fn corrupt_prep_snapshot_never_half_loads() {
    let corpus = small_corpus(2, &["three-phase"], 1);
    let cache = PrepCache::new();
    let _ = solve_shard_with_cache(&corpus, 0, 1, &RuntimeConfig::new(), &cache);
    assert!(cache.stats().families >= 2, "need two families to corrupt");
    let mut bytes = Vec::new();
    cache.save_to(&mut bytes).expect("write to a Vec");
    let truncated = &bytes[..bytes.len() - 3];
    let target = PrepCache::new();
    assert!(target.load_into(truncated).is_err());
    assert_eq!(
        target.stats().entries,
        0,
        "a failed load half-warmed the cache"
    );
    // The intact snapshot loads in full.
    assert!(target.load_into(bytes.as_slice()).expect("intact") > 0);
    assert_eq!(target.stats().entries, cache.stats().entries);
}

/// Every snapshot format is self-delimiting: appended garbage (e.g. a
/// botched transfer or concatenated files) is `InvalidData`, not a
/// silent partial load.
#[test]
fn trailing_bytes_are_rejected_by_every_loader() {
    let corpus = small_corpus(1, &["greedy"], 1);
    let cache = PrepCache::new();
    let report = solve_shard_with_cache(&corpus, 0, 1, &RuntimeConfig::new(), &cache);
    let mut shard_bytes = Vec::new();
    report.save_to(&mut shard_bytes).expect("write to a Vec");
    let mut prep_bytes = Vec::new();
    cache.save_to(&mut prep_bytes).expect("write to a Vec");
    for bytes in [&mut shard_bytes, &mut prep_bytes] {
        bytes.push(0xAA);
    }
    let err = ShardReport::load_from(shard_bytes.as_slice()).expect_err("must reject");
    assert!(err.to_string().contains("trailing"), "{err}");
    let target = PrepCache::new();
    let err = target
        .load_into(prep_bytes.as_slice())
        .expect_err("must reject");
    assert!(err.to_string().contains("trailing"), "{err}");
    assert_eq!(target.stats().entries, 0, "nothing may half-load");
}

/// Merging the same shard twice is caught by the overlap guard.
#[test]
#[should_panic(expected = "overlap")]
fn merging_the_same_shard_twice_panics() {
    let corpus = small_corpus(1, &["greedy"], 2);
    let rt = RuntimeConfig::new();
    let mut merged = solve_shard(&corpus, 0, 2, &rt);
    merged.merge(solve_shard(&corpus, 0, 2, &rt));
}

/// Finishing a merge that never saw one of the shards is caught by the
/// coverage check instead of producing a silently partial table.
#[test]
#[should_panic(expected = "a shard is missing")]
fn finishing_with_a_missing_shard_panics() {
    let corpus = small_corpus(2, &["greedy"], 2);
    let rt = RuntimeConfig::new();
    let mut merged = solve_shard(&corpus, 0, 3, &rt);
    merged.merge(solve_shard(&corpus, 2, 3, &rt));
    let _ = merged.finish();
}

/// Shards of different splits (or different corpora) refuse to merge.
#[test]
#[should_panic(expected = "cannot merge")]
fn merging_across_splits_panics() {
    let corpus = small_corpus(1, &["greedy"], 4);
    let rt = RuntimeConfig::new();
    let mut merged = solve_shard(&corpus, 0, 2, &rt);
    merged.merge(solve_shard(&corpus, 2, 4, &rt));
}
