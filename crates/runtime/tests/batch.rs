//! Batch-runtime guarantees: thread-count determinism, cache
//! transparency, and counter behaviour.

use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_ilp::{problems, IlpInstance};
use dapc_runtime::{solve_many, solve_many_with_cache, Corpus, PrepCache, RuntimeConfig};

/// A mixed packing/covering corpus of `n` small instances.
fn instances(n: usize) -> Vec<(String, IlpInstance)> {
    let mut out: Vec<(String, IlpInstance)> = vec![
        (
            "MIS/cycle12".into(),
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        ),
        (
            "MIS/grid3x4".into(),
            problems::max_independent_set_unweighted(&gen::grid(3, 4)),
        ),
        (
            "MIS/gnp14".into(),
            problems::max_independent_set_unweighted(&gen::gnp(14, 0.15, &mut gen::seeded_rng(1))),
        ),
        (
            "match/path10".into(),
            problems::max_matching(&gen::path(10)).ilp,
        ),
        (
            "VC/cycle12".into(),
            problems::min_vertex_cover_unweighted(&gen::cycle(12)),
        ),
        (
            "DS/cycle12".into(),
            problems::min_dominating_set_unweighted(&gen::cycle(12)),
        ),
        (
            "pack/random".into(),
            problems::random_packing(12, 8, 3, &mut gen::seeded_rng(2)),
        ),
        (
            "cover/random".into(),
            problems::random_covering(10, 8, 3, &mut gen::seeded_rng(3)),
        ),
    ];
    out.truncate(n);
    out
}

fn corpus(n_instances: usize, backends: &[&str], seeds: u64) -> Corpus {
    let mut b = Corpus::builder()
        .backends(backends.iter().copied())
        .eps(0.3)
        .seeds(0..seeds)
        .base_config(SolveConfig::new().ensemble_runs(2));
    for (name, ilp) in instances(n_instances) {
        b = b.instance(name, ilp);
    }
    b.build()
}

fn assert_identical(a: &dapc_runtime::BatchReport, b: &dapc_runtime::BatchReport) {
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(*x.0, *y.0, "job keys diverge");
        assert_eq!(*x.1, *y.1, "job {} diverges", x.0);
    }
}

/// The acceptance sweep: 8 instances × 5 seeds × all 5 backends comes
/// back bit-identical to the sequential path at 4 workers, with the prep
/// cache earning hits.
#[test]
fn parallel_batch_matches_sequential_bit_for_bit() {
    let corpus = corpus(8, &["three-phase", "gkm", "ensemble", "greedy", "bnb"], 5);
    assert_eq!(corpus.len(), 8 * 5 * 5);
    let sequential = solve_many(&corpus, &RuntimeConfig::new().jobs(1));
    let parallel = solve_many(&corpus, &RuntimeConfig::new().jobs(4));
    assert_identical(&sequential, &parallel);
    assert_eq!(parallel.workers, 4);
    assert!(parallel.cache.hits > 0, "{:?}", parallel.cache);
    assert!(parallel.results.iter().all(|r| r.report.feasible()));
}

/// Worker counts beyond the job count (and every count in between) all
/// agree with single-threaded execution.
#[test]
fn every_thread_count_agrees() {
    let corpus = corpus(3, &["three-phase", "bnb"], 2);
    let reference = solve_many(&corpus, &RuntimeConfig::new().jobs(1));
    for workers in [2usize, 3, 16] {
        let run = solve_many(&corpus, &RuntimeConfig::new().jobs(workers));
        assert_identical(&reference, &run);
    }
}

/// Cache transparency: reports with the prep cache on and off are equal —
/// the cache shares work, never outcomes.
#[test]
fn cache_on_and_off_yield_identical_reports() {
    let corpus = corpus(4, &["three-phase", "gkm", "bnb"], 3);
    let cached = solve_many(&corpus, &RuntimeConfig::new().jobs(2).prep_cache(true));
    let uncached = solve_many(&corpus, &RuntimeConfig::new().jobs(2).prep_cache(false));
    assert_identical(&cached, &uncached);
    assert!(cached.cache.hits > 0);
    assert_eq!(uncached.cache.hits, 0, "cache off must not touch a cache");
    assert_eq!(uncached.cache.misses, 0);
}

/// Counters only grow, and a second batch over the same families turns
/// would-be misses into hits.
#[test]
fn cache_counters_are_monotone_across_batches() {
    let corpus = corpus(2, &["three-phase"], 2);
    let cache = PrepCache::new();
    let first = solve_many_with_cache(&corpus, &RuntimeConfig::new(), &cache);
    let after_first = cache.stats();
    assert!(
        after_first.misses > 0,
        "first batch must populate the cache"
    );
    assert_eq!(first.cache, after_first);

    let second = solve_many_with_cache(&corpus, &RuntimeConfig::new(), &cache);
    let after_second = cache.stats();
    assert_identical(&first, &second);
    assert!(after_second.hits >= after_first.hits);
    assert!(after_second.misses >= after_first.misses);
    assert!(after_second.entries >= after_first.entries);
    assert!(
        after_second.hits > after_first.hits,
        "a warm cache must answer repeat lookups: {after_second:?}"
    );
    assert_eq!(
        after_second.misses, after_first.misses,
        "an identical batch should add no new subset solves"
    );
}

/// Intra-solve prep sharding composes with across-job fan-out: any
/// `(jobs, prep_workers)` pair is bit-identical to fully sequential
/// execution.
#[test]
fn prep_workers_compose_with_job_fanout() {
    let corpus = corpus(4, &["three-phase", "bnb"], 2);
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    for (jobs, prep_workers) in [(1usize, 4usize), (2, 2), (4, 4)] {
        let run = solve_many(
            &corpus,
            &RuntimeConfig::new().jobs(jobs).prep_workers(prep_workers),
        );
        assert_identical(&reference, &run);
    }
}

/// A byte-budgeted PrepCache evicts (so memory stays flat) without moving
/// a single report byte.
#[test]
fn bounded_prep_cache_is_report_transparent() {
    let corpus = corpus(5, &["three-phase"], 3);
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    let bounded = PrepCache::with_family_capacity(256);
    let run = solve_many_with_cache(&corpus, &RuntimeConfig::new().jobs(2), &bounded);
    assert_identical(&reference, &run);
    let stats = bounded.stats();
    assert!(
        stats.evictions > 0,
        "a 256-byte family budget must evict: {stats:?}"
    );
    let unbounded = solve_many(&corpus, &RuntimeConfig::new());
    assert_eq!(unbounded.cache.evictions, 0);
}

/// The aggregation matches a hand computation over the per-job results.
#[test]
fn group_summaries_aggregate_the_results() {
    let corpus = corpus(2, &["three-phase", "greedy"], 3);
    let report = solve_many(&corpus, &RuntimeConfig::new().jobs(2));
    assert_eq!(report.groups.len(), 2 * 2);
    for g in &report.groups {
        let members: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.key.instance == g.instance && r.key.backend == g.backend)
            .collect();
        assert_eq!(members.len(), g.jobs);
        assert_eq!(g.jobs, 3);
        assert_eq!(
            g.min_value,
            members.iter().map(|r| r.report.value).min().unwrap()
        );
        assert_eq!(
            g.max_value,
            members.iter().map(|r| r.report.value).max().unwrap()
        );
        let opt = g.opt.expect("reference optima on by default");
        let worst = match g.sense {
            dapc_ilp::Sense::Packing => g.min_value,
            dapc_ilp::Sense::Covering => g.max_value,
        };
        let worst_ratio = worst as f64 / opt.max(1) as f64;
        match g.sense {
            dapc_ilp::Sense::Packing => {
                assert!((g.min_ratio.unwrap() - worst_ratio).abs() < 1e-12)
            }
            dapc_ilp::Sense::Covering => {
                assert!((g.max_ratio.unwrap() - worst_ratio).abs() < 1e-12)
            }
        }
    }
    let backends: Vec<_> = report.backends.iter().map(|b| b.backend.as_str()).collect();
    assert_eq!(backends, ["three-phase", "greedy"]);
    assert!(report.backends.iter().all(|b| b.jobs == 2 * 3));
}

/// The online worst-seed phase counters ([`dapc_runtime::GroupStats`])
/// match a hand computation over the per-job backend stats — this is
/// what lets the experiment tables drop their dependency on the full
/// result vector.
#[test]
fn group_stats_fold_the_worst_seed_counters() {
    use dapc_core::engine::BackendStats;
    let corpus = corpus(6, &["three-phase"], 3);
    let report = solve_many(&corpus, &RuntimeConfig::new().jobs(2));
    let mut packing_seen = false;
    let mut covering_seen = false;
    for g in &report.groups {
        let mut expected = dapc_runtime::GroupStats::default();
        for r in report.results.iter().filter(|r| {
            r.key.instance == g.instance
                && r.key.backend == g.backend
                && r.key.eps.to_bits() == g.eps.to_bits()
        }) {
            match &r.report.stats {
                BackendStats::Packing(s) => {
                    packing_seen = true;
                    expected.deleted = expected.deleted.max(s.deleted_carving + s.deleted_phase3);
                    expected.components = expected.components.max(s.components);
                }
                BackendStats::Covering(s) => {
                    covering_seen = true;
                    expected.fixed_weight = expected.fixed_weight.max(s.fixed_weight);
                    expected.deleted_edges = expected.deleted_edges.max(s.deleted_edges);
                }
                _ => {}
            }
        }
        assert_eq!(g.stats, expected, "{}/{}", g.instance, g.backend);
    }
    assert!(packing_seen && covering_seen, "both senses exercised");
}

/// Disabling reference optima drops the ratio columns but nothing else.
#[test]
fn optima_are_optional() {
    let corpus = corpus(1, &["greedy"], 2);
    let with = solve_many(&corpus, &RuntimeConfig::new());
    let without = solve_many(&corpus, &RuntimeConfig::new().reference_optima(false));
    assert_identical(&with, &without);
    assert!(with.groups[0].opt.is_some());
    assert!(without.groups[0].opt.is_none());
    assert!(without.groups[0].min_ratio.is_none());
    assert!(!without.groups[0].meets_guarantee());
}
