//! Guarantees of the streaming pipeline and the shared executor:
//! canonical in-order delivery, aggregate parity with the in-memory
//! [`BatchReport`], byte-identity under oversubscribed
//! `jobs × prep_workers` combinations on a pinned-size pool, and
//! warm-start persistence that moves counters but never a report.

use dapc_core::engine::SolveConfig;
use dapc_exec::{with_executor, Executor};
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{
    solve_many, solve_many_streaming, solve_many_streaming_with_cache, solve_many_with_cache,
    BackendSummary, BatchAggregator, Corpus, GroupSummary, JobResult, PrepCache, RuntimeConfig,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn small_corpus(instances: usize, backends: &[&str], seeds: u64) -> Corpus {
    let pool = [
        (
            "MIS/cycle12",
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        ),
        (
            "VC/cycle10",
            problems::min_vertex_cover_unweighted(&gen::cycle(10)),
        ),
        (
            "MIS/gnp12",
            problems::max_independent_set_unweighted(&gen::gnp(12, 0.15, &mut gen::seeded_rng(1))),
        ),
        (
            "DS/cycle9",
            problems::min_dominating_set_unweighted(&gen::cycle(9)),
        ),
    ];
    let mut b = Corpus::builder()
        .backends(backends.iter().copied())
        .eps(0.3)
        .seeds(0..seeds)
        .base_config(SolveConfig::new().ensemble_runs(2));
    for (name, ilp) in pool.into_iter().take(instances) {
        b = b.instance(name, ilp);
    }
    b.build()
}

fn collect_streaming(
    corpus: &Corpus,
    rt: &RuntimeConfig,
) -> (Vec<JobResult>, dapc_runtime::StreamReport) {
    let sink: Arc<Mutex<Vec<JobResult>>> = Arc::default();
    let hook_sink = Arc::clone(&sink);
    let stream = solve_many_streaming(corpus, rt, move |r| {
        hook_sink.lock().expect("sink").push(r);
    });
    let results = Arc::try_unwrap(sink)
        .expect("hook dropped")
        .into_inner()
        .expect("sink");
    (results, stream)
}

fn sans_micros_groups(groups: &[GroupSummary]) -> Vec<GroupSummary> {
    groups
        .iter()
        .cloned()
        .map(|mut g| {
            g.micros = 0;
            g
        })
        .collect()
}

fn sans_micros_backends(backends: &[BackendSummary]) -> Vec<BackendSummary> {
    backends
        .iter()
        .cloned()
        .map(|mut b| {
            b.micros = 0;
            b
        })
        .collect()
}

/// The ISSUE acceptance case: `jobs × prep_workers = 4 × 4` on a pool of
/// only 2 workers must neither deadlock nor move a byte relative to fully
/// sequential execution.
#[test]
fn oversubscription_on_a_two_worker_pool_is_byte_identical() {
    let corpus = small_corpus(3, &["three-phase", "bnb"], 2);
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    let pinned = Executor::new(2);
    let oversubscribed = with_executor(&pinned, || {
        solve_many(&corpus, &RuntimeConfig::new().jobs(4).prep_workers(4))
    });
    assert_eq!(reference.outcomes(), oversubscribed.outcomes());
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&oversubscribed.groups)
    );
}

/// The degenerate pool: every task of an 8 × 4 fan-out funnels through a
/// single worker (plus inline help) and still terminates byte-identically.
#[test]
fn oversubscription_on_a_single_worker_pool_terminates() {
    let corpus = small_corpus(2, &["three-phase"], 3);
    let reference = solve_many(&corpus, &RuntimeConfig::new());
    let pinned = Executor::new(1);
    let run = with_executor(&pinned, || {
        solve_many(&corpus, &RuntimeConfig::new().jobs(8).prep_workers(4))
    });
    assert_eq!(reference.outcomes(), run.outcomes());
}

/// The hook observes every job exactly once, in canonical corpus order,
/// and the reorder buffer honours its documented bound: `peak_buffered`
/// may *reach* `max(2·pumps, 16)` (the admission check parks a result
/// only while the buffer is strictly below capacity, so the bound is
/// inclusive) but never exceed it. This assertion pins the audited
/// off-by-one contract.
#[test]
fn streaming_delivery_is_canonical_and_bounded() {
    let corpus = small_corpus(3, &["greedy", "bnb"], 3);
    let expected: Vec<String> = corpus.jobs().iter().map(|j| j.key.to_string()).collect();
    for jobs in [1usize, 2, 4, 16] {
        let (results, stream) = collect_streaming(&corpus, &RuntimeConfig::new().jobs(jobs));
        let seen: Vec<String> = results.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(seen, expected, "delivery order broke at {jobs} jobs");
        assert_eq!(stream.jobs, expected.len());
        let capacity = (2 * jobs.min(expected.len())).max(16);
        assert!(
            stream.peak_buffered <= capacity,
            "{} parked results exceed the bound {capacity}",
            stream.peak_buffered
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Streaming and collecting are the same computation: identical
    /// per-job outcomes and identical aggregates (timings aside) on
    /// random corpora at random worker counts.
    #[test]
    fn streaming_aggregates_match_batch_report_on_random_corpora(
        instances in 1usize..=4,
        backend_mask in 1usize..8,
        seeds in 1u64..4,
        jobs in 1usize..6,
        prep_workers in 1usize..4,
    ) {
        let all = ["three-phase", "greedy", "bnb"];
        let backends: Vec<&str> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| backend_mask >> i & 1 == 1)
            .map(|(_, b)| *b)
            .collect();
        let corpus = small_corpus(instances, &backends, seeds);
        let rt = RuntimeConfig::new().jobs(jobs).prep_workers(prep_workers);
        let batch = solve_many(&corpus, &rt);
        let (results, stream) = collect_streaming(&corpus, &rt);
        prop_assert_eq!(batch.results.len(), results.len());
        for (a, b) in batch.results.iter().zip(&results) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(&a.report, &b.report);
        }
        prop_assert_eq!(
            sans_micros_groups(&batch.groups),
            sans_micros_groups(&stream.groups)
        );
        prop_assert_eq!(
            sans_micros_backends(&batch.backends),
            sans_micros_backends(&stream.backends)
        );
    }
}

/// The aggregator's canonical-order guard: re-opening a closed cell (the
/// telltale of out-of-order delivery) panics instead of corrupting the
/// summaries.
#[test]
#[should_panic(expected = "out of canonical order")]
fn aggregator_rejects_out_of_order_delivery() {
    let corpus = small_corpus(2, &["greedy"], 1);
    let (results, _) = collect_streaming(&corpus, &RuntimeConfig::new());
    assert_eq!(results.len(), 2, "two groups with one job each");
    let mut agg = BatchAggregator::new();
    agg.push(&results[0]);
    agg.push(&results[1]);
    agg.push(&results[0]); // re-opens the first cell
}

/// Warm-start persistence at the batch level: a snapshot saved from a
/// cold batch and loaded into a fresh cache turns every miss into a hit
/// without moving a report byte.
#[test]
fn warm_started_batch_changes_counters_never_reports() {
    let corpus = small_corpus(1, &["three-phase"], 3);
    let ilp = problems::max_independent_set_unweighted(&gen::cycle(12));
    let budget = SolveConfig::new().budget;

    let cold = PrepCache::new();
    let first = solve_many_with_cache(&corpus, &RuntimeConfig::new(), &cold);
    let cold_stats = cold.stats();
    assert!(cold_stats.misses > 0, "cold batch must solve something");

    let mut snapshot = Vec::new();
    cold.save_family(&ilp, &budget, &mut snapshot)
        .expect("write to a Vec");

    let warm = PrepCache::new();
    let loaded = warm
        .warm_family(&ilp, &budget, snapshot.as_slice())
        .expect("read back");
    assert_eq!(loaded, cold_stats.entries, "snapshot holds the whole memo");
    assert_eq!(warm.stats().hits, 0, "loading counts nothing");

    let second = solve_many_with_cache(&corpus, &RuntimeConfig::new(), &warm);
    assert_eq!(
        first.outcomes(),
        second.outcomes(),
        "warm start moved a report"
    );
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.misses, 0, "every lookup is answered warm");
    assert!(warm_stats.hits > 0);
    assert_ne!(
        (warm_stats.hits, warm_stats.misses),
        (cold_stats.hits, cold_stats.misses),
        "the warm start must be visible in the counters"
    );
}

/// A job that dies mid-batch fails the whole call with the original
/// panic — after every in-flight job winds down — rather than hanging
/// the reorder pipeline or being silently dropped.
#[test]
fn panicking_jobs_fail_the_batch_with_the_original_panic() {
    // `SolveConfig::n_tilde()` guards its range, but the field is public:
    // a size hint of 0.5 makes every three-phase parametrisation assert —
    // a stand-in for any backend panicking mid-sweep.
    let mut base = SolveConfig::new();
    base.n_tilde = Some(0.5);
    let corpus = Corpus::builder()
        .instance(
            "MIS/cycle12",
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        )
        .backend("three-phase")
        .backend("bnb")
        .eps(0.3)
        .seeds(0..10)
        .base_config(base)
        .build();
    let outcome = std::panic::catch_unwind(|| {
        solve_many(
            &corpus,
            &RuntimeConfig::new().jobs(4).reference_optima(false),
        )
    });
    let payload = outcome.expect_err("the job panic must surface");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("n_tilde"),
        "expected the original assertion, got {message:?}"
    );
}

/// Streaming composes with a warm caller-owned cache exactly like the
/// collecting path.
#[test]
fn streaming_with_cache_stays_warm_across_batches() {
    let corpus = small_corpus(2, &["three-phase"], 2);
    let cache = PrepCache::new();
    let rt = RuntimeConfig::new().jobs(2);
    let first = {
        let sink: Arc<Mutex<Vec<JobResult>>> = Arc::default();
        let hook = Arc::clone(&sink);
        solve_many_streaming_with_cache(&corpus, &rt, &cache, move |r| {
            hook.lock().expect("sink").push(r);
        });
        Arc::try_unwrap(sink)
            .expect("hook dropped")
            .into_inner()
            .expect("sink")
    };
    let after_first = cache.stats();
    let second = {
        let sink: Arc<Mutex<Vec<JobResult>>> = Arc::default();
        let hook = Arc::clone(&sink);
        solve_many_streaming_with_cache(&corpus, &rt, &cache, move |r| {
            hook.lock().expect("sink").push(r);
        });
        Arc::try_unwrap(sink)
            .expect("hook dropped")
            .into_inner()
            .expect("sink")
    };
    let after_second = cache.stats();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.report, b.report);
    }
    assert!(
        after_second.hits > after_first.hits,
        "warm replay earns hits"
    );
    assert_eq!(
        after_second.misses, after_first.misses,
        "an identical batch adds no new subset solves"
    );
}
