//! Guarantees of the partial-shard/range layer underneath `dapc-serve`:
//! any disjoint cover of a corpus by contiguous job ranges — however
//! unevenly crash-driven reassignment carved it — merges back to the
//! unsharded aggregation (timings aside), part snapshots round-trip
//! byte for byte, and the loader rejects truncated or corrupt input
//! with an `Err`, never a panic.

use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{
    solve_many, solve_range, BackendSummary, Corpus, GroupSummary, PartReport, RuntimeConfig,
};
use proptest::prelude::*;

fn small_corpus(instances: usize, backends: &[&str], seeds: u64) -> Corpus {
    let pool = [
        (
            "MIS/cycle12",
            problems::max_independent_set_unweighted(&gen::cycle(12)),
        ),
        (
            "VC/cycle10",
            problems::min_vertex_cover_unweighted(&gen::cycle(10)),
        ),
        (
            "DS/cycle9",
            problems::min_dominating_set_unweighted(&gen::cycle(9)),
        ),
    ];
    let mut b = Corpus::builder()
        .backends(backends.iter().copied())
        .eps(0.3)
        .seeds(0..seeds)
        .base_config(SolveConfig::new().ensemble_runs(2));
    for (name, ilp) in pool.into_iter().take(instances) {
        b = b.instance(name, ilp);
    }
    b.build()
}

fn sans_micros_groups(groups: &[GroupSummary]) -> Vec<GroupSummary> {
    groups
        .iter()
        .cloned()
        .map(|mut g| {
            g.micros = 0;
            g
        })
        .collect()
}

fn sans_micros_backends(backends: &[BackendSummary]) -> Vec<BackendSummary> {
    backends
        .iter()
        .cloned()
        .map(|mut b| {
            b.micros = 0;
            b
        })
        .collect()
}

/// Carves `0..len` into contiguous pieces at pseudo-random cut points
/// derived from `salt`, deterministic per input.
fn carve(len: usize, pieces: usize, salt: u64) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> = (1..pieces)
        .map(|i| {
            let h = dapc_ilp::hash::fnv1a_u64(dapc_ilp::hash::FNV_OFFSET, salt ^ i as u64);
            (h as usize) % (len + 1)
        })
        .collect();
    cuts.push(0);
    cuts.push(len);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The orchestrator's core property: an *uneven* disjoint cover of
    /// the corpus by contiguous ranges — the shape crashes and
    /// reassignment produce — solved independently and merged in a
    /// rotated order equals the unsharded batch, modulo timings.
    #[test]
    fn uneven_range_covers_merge_to_the_unsharded_batch(
        instances in 1usize..=3,
        seeds in 1u64..4,
        pieces in 1usize..=5,
        salt in 0u64..1000,
        rotate in 0usize..5,
        jobs in 1usize..3,
    ) {
        let corpus = small_corpus(instances, &["greedy", "three-phase"], seeds);
        let rt = RuntimeConfig::new().jobs(jobs);
        let reference = solve_many(&corpus, &rt);
        let ranges = carve(corpus.len(), pieces, salt);
        let n = ranges.len();
        let mut parts = (0..n)
            .map(|i| solve_range(&corpus, ranges[(i + rotate) % n].clone(), &rt));
        let mut merged = parts.next().expect("at least one range");
        for p in parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.jobs, corpus.len());
        prop_assert_eq!(merged.covered(), vec![0..corpus.len()]);
        let stream = merged.finish();
        prop_assert_eq!(
            sans_micros_groups(&reference.groups),
            sans_micros_groups(&stream.groups)
        );
        prop_assert_eq!(
            sans_micros_backends(&reference.backends),
            sans_micros_backends(&stream.backends)
        );
    }
}

/// An interrupted range (solved only up to a checkpoint) plus the
/// reassigned remainder reproduce the whole — the salvage path after a
/// worker kill.
#[test]
fn checkpoint_prefix_plus_reassigned_remainder_reproduce_the_whole() {
    let corpus = small_corpus(2, &["greedy", "bnb"], 2); // 8 jobs
    let rt = RuntimeConfig::new();
    let reference = solve_many(&corpus, &rt);
    // Worker owned 0..6, died after checkpointing 0..4.
    let salvaged = solve_range(&corpus, 0..4, &rt);
    assert_eq!(salvaged.covered(), vec![0..4]);
    // The coordinator reassigns 4..6 and 6..8 to other workers.
    let mut merged = solve_range(&corpus, 6..8, &rt);
    assert_eq!(merged.covered(), vec![6..8]);
    merged.merge(salvaged);
    assert_eq!(merged.covered(), vec![0..4, 6..8], "gap still open");
    merged.merge(solve_range(&corpus, 4..6, &rt));
    let stream = merged.finish();
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&stream.groups)
    );
}

/// Part snapshots are canonical and round-trip byte for byte.
#[test]
fn part_snapshots_round_trip_byte_for_byte() {
    let corpus = small_corpus(2, &["three-phase"], 2);
    let part = solve_range(&corpus, 1..3, &RuntimeConfig::new());
    let mut bytes = Vec::new();
    part.save_to(&mut bytes).expect("write to a Vec");
    let loaded = PartReport::load_from(bytes.as_slice()).expect("read back");
    assert_eq!(loaded.corpus_jobs, part.corpus_jobs);
    assert_eq!(loaded.start, part.start);
    assert_eq!(loaded.jobs, part.jobs);
    assert_eq!(loaded.cache, part.cache);
    assert_eq!(loaded.covered(), part.covered());
    let mut reserialised = Vec::new();
    loaded.save_to(&mut reserialised).expect("write to a Vec");
    assert_eq!(bytes, reserialised, "snapshot is not canonical");
}

/// The shipped protocol through bytes: ranges serialised, re-loaded,
/// merged and finished equal the single-process aggregation.
#[test]
fn merged_part_snapshots_equal_single_process_aggregation() {
    let corpus = small_corpus(2, &["greedy", "bnb"], 2); // 8 jobs
    let rt = RuntimeConfig::new();
    let reference = solve_many(&corpus, &rt);
    let mut shipped = Vec::new();
    for range in [0..3, 3..4, 4..8] {
        let mut bytes = Vec::new();
        solve_range(&corpus, range, &rt)
            .save_to(&mut bytes)
            .expect("write to a Vec");
        shipped.push(bytes);
    }
    let mut merged = PartReport::load_from(shipped[2].as_slice()).expect("part 2");
    merged.merge(PartReport::load_from(shipped[0].as_slice()).expect("part 0"));
    merged.merge(PartReport::load_from(shipped[1].as_slice()).expect("part 1"));
    let stream = merged.finish();
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&stream.groups)
    );
    assert_eq!(
        sans_micros_backends(&reference.backends),
        sans_micros_backends(&stream.backends)
    );
}

/// Loader hardening: truncating a part snapshot at *any* byte is an
/// `Err`, never a panic, and appended garbage is rejected.
#[test]
fn truncated_or_padded_part_snapshots_error() {
    let corpus = small_corpus(1, &["greedy"], 2);
    let part = solve_range(&corpus, 0..2, &RuntimeConfig::new());
    let mut bytes = Vec::new();
    part.save_to(&mut bytes).expect("write to a Vec");
    for cut in 0..bytes.len() {
        assert!(
            PartReport::load_from(&bytes[..cut]).is_err(),
            "part-report prefix of {cut} bytes must not load"
        );
    }
    let mut padded = bytes.clone();
    padded.push(0xAA);
    let err = PartReport::load_from(padded.as_slice()).expect_err("must reject");
    assert!(err.to_string().contains("trailing"), "{err}");
    let mut wrong_version = bytes;
    wrong_version[7] = 0x7f;
    let err = PartReport::load_from(wrong_version.as_slice()).expect_err("must reject");
    assert!(err.to_string().contains("version"), "{err}");
}

/// A header whose job count disagrees with the embedded aggregator is
/// corruption, not a trusted field.
#[test]
fn inconsistent_part_header_is_rejected() {
    let corpus = small_corpus(1, &["greedy"], 2);
    let part = solve_range(&corpus, 0..2, &RuntimeConfig::new());
    let mut bytes = Vec::new();
    part.save_to(&mut bytes).expect("write to a Vec");
    // The jobs field is the third u64 after the 8-byte magic.
    bytes[8 + 16..8 + 24].copy_from_slice(&1u64.to_le_bytes());
    let err = PartReport::load_from(bytes.as_slice()).expect_err("must reject");
    assert!(err.to_string().contains("aggregator folded"), "{err}");
}

/// Merging overlapping ranges is caught by the aggregator's span guard.
#[test]
#[should_panic(expected = "overlap")]
fn merging_overlapping_ranges_panics() {
    let corpus = small_corpus(1, &["greedy"], 4);
    let rt = RuntimeConfig::new();
    let mut merged = solve_range(&corpus, 0..3, &rt);
    merged.merge(solve_range(&corpus, 2..4, &rt));
}

/// Finishing with a job range still owed panics instead of rendering a
/// silently partial table.
#[test]
#[should_panic(expected = "a range is missing")]
fn finishing_with_a_missing_range_panics() {
    let corpus = small_corpus(1, &["greedy"], 4);
    let rt = RuntimeConfig::new();
    let mut merged = solve_range(&corpus, 0..1, &rt);
    merged.merge(solve_range(&corpus, 2..4, &rt));
    let _ = merged.finish();
}

/// Ranges beyond the corpus are a caller bug, caught loudly.
#[test]
#[should_panic(expected = "beyond")]
fn out_of_bounds_range_panics() {
    let corpus = small_corpus(1, &["greedy"], 2);
    let _ = corpus.range_jobs(0..corpus.len() + 1);
}
