//! Corpora: named batches of `(instance × backend × ε × seed)` jobs.

use dapc_core::engine::{self, SolveConfig};
use dapc_ilp::IlpInstance;
use std::ops::Range;
use std::sync::Arc;

/// The identity of one batch job. The full key — not just the seed —
/// derives the job's RNG stream, so two jobs differing in any coordinate
/// draw decorrelated randomness, and results never depend on which worker
/// ran the job or in what order.
#[derive(Clone, Debug, PartialEq)]
pub struct JobKey {
    /// Name of the instance in the corpus.
    pub instance: String,
    /// Engine registry key of the backend.
    pub backend: String,
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// User-level seed (the last coordinate of the sweep).
    pub seed: u64,
}

impl JobKey {
    /// The deterministic RNG seed of this job: FNV-1a over every
    /// coordinate (with `ε` taken bit-exactly).
    pub fn rng_seed(&self) -> u64 {
        use dapc_ilp::hash::{fnv1a, fnv1a_u64, FNV_OFFSET};
        let mut h = fnv1a(FNV_OFFSET, self.instance.as_bytes());
        h = fnv1a(h, &[0xff]);
        h = fnv1a(h, self.backend.as_bytes());
        h = fnv1a(h, &[0xff]);
        h = fnv1a_u64(h, self.eps.to_bits());
        fnv1a_u64(h, self.seed)
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/eps{}/seed{}",
            self.instance, self.backend, self.eps, self.seed
        )
    }
}

/// One materialised job: its key plus everything needed to run it.
#[derive(Clone)]
pub struct Job {
    /// Position in the corpus's canonical job order.
    pub index: usize,
    /// Identity of the job.
    pub key: JobKey,
    pub(crate) ilp: Arc<IlpInstance>,
    /// Per-job configuration: the corpus base with this job's `ε` and the
    /// key-derived RNG seed baked in.
    pub(crate) cfg: SolveConfig,
}

pub(crate) struct CorpusInstance {
    pub(crate) name: String,
    pub(crate) ilp: Arc<IlpInstance>,
}

/// An immutable batch description: instances × backends × ε grid × seed
/// range, plus the shared base [`SolveConfig`]. Built with
/// [`Corpus::builder`], consumed by [`crate::solve_many`].
pub struct Corpus {
    pub(crate) instances: Vec<CorpusInstance>,
    pub(crate) backends: Vec<String>,
    pub(crate) eps_grid: Vec<f64>,
    pub(crate) seeds: Range<u64>,
    pub(crate) base: SolveConfig,
}

impl Corpus {
    /// Starts an empty builder.
    pub fn builder() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Number of jobs (`instances × backends × ε values × seeds`).
    pub fn len(&self) -> usize {
        self.instances.len()
            * self.backends.len()
            * self.eps_grid.len()
            * (self.seeds.end - self.seeds.start) as usize
    }

    /// Whether the corpus has no jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared base configuration.
    pub fn base(&self) -> &SolveConfig {
        &self.base
    }

    /// Named instances, in insertion order.
    pub fn instance_names(&self) -> Vec<&str> {
        self.instances.iter().map(|i| i.name.as_str()).collect()
    }

    /// The canonical index range shard `shard` of `shards` owns: the
    /// balanced contiguous partition `[shard·len/shards,
    /// (shard+1)·len/shards)`, so shard sizes differ by at most one and
    /// the union over all shards covers every job exactly once. Shards
    /// beyond the corpus length come back empty.
    ///
    /// The partition is a pure function of `(len, shard, shards)` —
    /// **jobs keep their global [`JobKey`] (and with it their derived RNG
    /// stream)**, so a job's `(key, report)` outcome is byte-identical
    /// whether it runs in the unsharded sweep or in any shard of any
    /// split.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 or `shard >= shards`.
    pub fn shard_range(&self, shard: usize, shards: usize) -> Range<usize> {
        assert!(shards > 0, "a corpus splits into at least one shard");
        assert!(
            shard < shards,
            "shard index {shard} out of range for {shards} shards"
        );
        let len = self.len();
        (shard * len / shards)..((shard + 1) * len / shards)
    }

    /// Materialises the jobs of one shard (see
    /// [`Corpus::shard_range`]), in canonical order, with their global
    /// indices and keys intact. Builds only the shard's slice — a shard
    /// process never pays for the whole corpus.
    pub fn shard_jobs(&self, shard: usize, shards: usize) -> Vec<Job> {
        self.range_jobs(self.shard_range(shard, shards))
    }

    /// Materialises the jobs of an **arbitrary** contiguous slice of the
    /// canonical order — the work unit of partial-shard scheduling: a
    /// coordinator that reassigns a crashed worker's remaining jobs hands
    /// the replacement exactly this range. Jobs keep their global indices
    /// and [`JobKey`]s (and with them their derived RNG streams), so a
    /// range job's `(key, report)` outcome is byte-identical to the same
    /// job in the unsharded sweep.
    ///
    /// # Panics
    ///
    /// Panics when `range` reaches beyond the corpus.
    pub fn range_jobs(&self, range: Range<usize>) -> Vec<Job> {
        assert!(
            range.end <= self.len(),
            "job range {range:?} reaches beyond the {}-job corpus",
            self.len()
        );
        range.map(|i| self.job_at(i)).collect()
    }

    /// Materialises every job in canonical order: instance-major, then
    /// backend, then `ε`, then seed. This order is the definition of "the
    /// sequential path" — `solve_many` returns results in exactly this
    /// order at any worker count.
    pub fn jobs(&self) -> Vec<Job> {
        (0..self.len()).map(|i| self.job_at(i)).collect()
    }

    /// The job at canonical index `index`: the inverse of the
    /// instance-major, then backend, then `ε`, then seed ordering.
    fn job_at(&self, index: usize) -> Job {
        let seeds = (self.seeds.end - self.seeds.start) as usize;
        let mut rest = index;
        let seed = self.seeds.start + (rest % seeds) as u64;
        rest /= seeds;
        let eps = self.eps_grid[rest % self.eps_grid.len()];
        rest /= self.eps_grid.len();
        let backend = &self.backends[rest % self.backends.len()];
        rest /= self.backends.len();
        let inst = &self.instances[rest];
        let key = JobKey {
            instance: inst.name.clone(),
            backend: backend.clone(),
            eps,
            seed,
        };
        let cfg = self.base.clone().eps(eps).seed(key.rng_seed());
        Job {
            index,
            key,
            ilp: Arc::clone(&inst.ilp),
            cfg,
        }
    }
}

/// Builder for [`Corpus`].
///
/// # Examples
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
/// use dapc_runtime::Corpus;
///
/// let corpus = Corpus::builder()
///     .instance(
///         "MIS/cycle18",
///         problems::max_independent_set_unweighted(&gen::cycle(18)),
///     )
///     .backend("three-phase")
///     .backend("greedy")
///     .eps_grid([0.2, 0.3])
///     .seeds(0..4)
///     .build();
/// assert_eq!(corpus.len(), 1 * 2 * 2 * 4);
/// ```
#[derive(Default)]
pub struct CorpusBuilder {
    instances: Vec<CorpusInstance>,
    backends: Vec<String>,
    eps_grid: Vec<f64>,
    seeds: Option<Range<u64>>,
    base: Option<SolveConfig>,
}

impl CorpusBuilder {
    /// Adds a named instance.
    pub fn instance(self, name: impl Into<String>, ilp: IlpInstance) -> Self {
        self.shared_instance(name, Arc::new(ilp))
    }

    /// Adds a named instance without cloning it (useful when the caller
    /// keeps a handle for its own bookkeeping).
    pub fn shared_instance(mut self, name: impl Into<String>, ilp: Arc<IlpInstance>) -> Self {
        self.instances.push(CorpusInstance {
            name: name.into(),
            ilp,
        });
        self
    }

    /// Adds one backend by engine registry key.
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.backends.push(name.into());
        self
    }

    /// Adds several backends by registry key.
    pub fn backends<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.backends.extend(names.into_iter().map(Into::into));
        self
    }

    /// Adds every registered backend, in canonical order.
    pub fn all_backends(self) -> Self {
        self.backends(engine::BACKENDS)
    }

    /// Adds one `ε` value to the grid.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps_grid.push(eps);
        self
    }

    /// Adds several `ε` values to the grid.
    pub fn eps_grid(mut self, grid: impl IntoIterator<Item = f64>) -> Self {
        self.eps_grid.extend(grid);
        self
    }

    /// Sets the seed range (default `0..1`).
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Sets the shared base configuration (knobs, budget, ensemble runs,
    /// …). Its `eps` and `seed` are overridden per job.
    pub fn base_config(mut self, base: SolveConfig) -> Self {
        self.base = Some(base);
        self
    }

    /// Validates and freezes the corpus.
    ///
    /// # Panics
    ///
    /// Panics on an empty instance list, a duplicate instance name,
    /// backend key or (bit-exact) `ε` value — duplicates would run
    /// identical jobs and collide in the group summaries — an unknown
    /// backend key, an `ε` outside `(0, 1)`, or an empty seed range.
    /// Backends default to the full registry and the `ε` grid to the
    /// base config's `eps` when left unset.
    pub fn build(self) -> Corpus {
        let base = self.base.unwrap_or_default();
        assert!(!self.instances.is_empty(), "corpus needs an instance");
        for (i, a) in self.instances.iter().enumerate() {
            for b in &self.instances[..i] {
                assert!(a.name != b.name, "duplicate instance name {:?}", a.name);
            }
        }
        let backends = if self.backends.is_empty() {
            engine::BACKENDS.iter().map(|s| s.to_string()).collect()
        } else {
            self.backends
        };
        for (i, b) in backends.iter().enumerate() {
            assert!(engine::backend(b).is_some(), "unknown backend {b:?}");
            assert!(
                !backends[..i].contains(b),
                "duplicate backend {b:?} would run identical jobs"
            );
        }
        let eps_grid = if self.eps_grid.is_empty() {
            vec![base.eps]
        } else {
            self.eps_grid
        };
        for (i, &e) in eps_grid.iter().enumerate() {
            assert!(e > 0.0 && e < 1.0, "eps must be in (0, 1), got {e}");
            assert!(
                !eps_grid[..i].iter().any(|p| p.to_bits() == e.to_bits()),
                "duplicate eps {e} would run identical jobs"
            );
        }
        let seeds = self.seeds.unwrap_or(0..1);
        assert!(!seeds.is_empty(), "corpus needs at least one seed");
        Corpus {
            instances: self.instances,
            backends,
            eps_grid,
            seeds,
            base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    fn mis(n: usize) -> IlpInstance {
        problems::max_independent_set_unweighted(&gen::cycle(n))
    }

    #[test]
    fn canonical_order_is_instance_major() {
        let corpus = Corpus::builder()
            .instance("a", mis(6))
            .instance("b", mis(8))
            .backend("greedy")
            .backend("bnb")
            .eps_grid([0.2, 0.4])
            .seeds(0..2)
            .build();
        let jobs = corpus.jobs();
        assert_eq!(jobs.len(), corpus.len());
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        assert_eq!(jobs[0].key.to_string(), "a/greedy/eps0.2/seed0");
        assert_eq!(jobs[1].key.to_string(), "a/greedy/eps0.2/seed1");
        assert_eq!(jobs[2].key.to_string(), "a/greedy/eps0.4/seed0");
        assert_eq!(jobs[4].key.to_string(), "a/bnb/eps0.2/seed0");
        assert_eq!(jobs[8].key.to_string(), "b/greedy/eps0.2/seed0");
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn shards_partition_the_canonical_order() {
        let corpus = Corpus::builder()
            .instance("a", mis(6))
            .instance("b", mis(8))
            .backend("greedy")
            .eps_grid([0.2, 0.4])
            .seeds(0..2)
            .build();
        let all = corpus.jobs();
        for shards in 1..=all.len() + 2 {
            let mut seen = Vec::new();
            for shard in 0..shards {
                let range = corpus.shard_range(shard, shards);
                let jobs = corpus.shard_jobs(shard, shards);
                assert_eq!(jobs.len(), range.len());
                for (job, index) in jobs.iter().zip(range.clone()) {
                    assert_eq!(job.index, index, "shards must keep global indices");
                    assert_eq!(job.key, all[index].key, "shards must keep global keys");
                }
                seen.extend(range);
            }
            assert_eq!(
                seen,
                (0..all.len()).collect::<Vec<_>>(),
                "{shards} shards must partition the corpus"
            );
        }
        // Balanced: sizes differ by at most one.
        for shards in 1..=4 {
            let sizes: Vec<usize> = (0..shards)
                .map(|s| corpus.shard_range(s, shards).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced split {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let corpus = Corpus::builder().instance("a", mis(6)).build();
        let _ = corpus.shard_range(2, 2);
    }

    #[test]
    fn rng_seed_depends_on_every_coordinate() {
        let base = JobKey {
            instance: "a".into(),
            backend: "greedy".into(),
            eps: 0.3,
            seed: 0,
        };
        let mut variants = vec![base.clone()];
        variants.push(JobKey {
            instance: "b".into(),
            ..base.clone()
        });
        variants.push(JobKey {
            backend: "bnb".into(),
            ..base.clone()
        });
        variants.push(JobKey {
            eps: 0.2,
            ..base.clone()
        });
        variants.push(JobKey { seed: 1, ..base });
        let seeds: Vec<u64> = variants.iter().map(JobKey::rng_seed).collect();
        for i in 0..seeds.len() {
            for j in 0..i {
                assert_ne!(seeds[i], seeds[j], "{} vs {}", variants[i], variants[j]);
            }
        }
    }

    #[test]
    fn defaults_fill_backends_and_eps() {
        let corpus = Corpus::builder().instance("a", mis(6)).build();
        assert_eq!(corpus.backends.len(), engine::BACKENDS.len());
        assert_eq!(corpus.eps_grid, vec![corpus.base.eps]);
        assert_eq!(corpus.len(), engine::BACKENDS.len());
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn unknown_backend_rejected() {
        let _ = Corpus::builder()
            .instance("a", mis(6))
            .backend("no-such")
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate instance name")]
    fn duplicate_names_rejected() {
        let _ = Corpus::builder()
            .instance("a", mis(6))
            .instance("a", mis(8))
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate backend")]
    fn duplicate_backends_rejected() {
        let _ = Corpus::builder()
            .instance("a", mis(6))
            .backend("greedy")
            .all_backends()
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate eps")]
    fn duplicate_eps_rejected() {
        let _ = Corpus::builder()
            .instance("a", mis(6))
            .backend("greedy")
            .eps_grid([0.2, 0.2])
            .build();
    }
}
