//! Partial-sweep results over **arbitrary** contiguous job ranges — the
//! checkpoint and work-stealing unit underneath `dapc-serve`'s
//! fault-tolerant orchestration.
//!
//! [`crate::solve_shard`] fixes the unit of distribution at "one shard of
//! a static i-of-n split". A fault-tolerant coordinator needs something
//! finer: when a worker dies halfway through its slice, the *remaining*
//! job range must be reassignable to any other worker, and the completed
//! prefix must be salvageable from checkpoints. [`solve_range`] and
//! [`PartReport`] provide exactly that: solve any contiguous canonical
//! range, get back a snapshotable aggregation that merges with any other
//! disjoint range of the same corpus — merging is associative and
//! commutative (the mergeable-span [`BatchAggregator`] does the heavy
//! lifting), so *any* disjoint cover of the corpus, however it was carved
//! up by crashes and retries, finishes into the identical
//! [`StreamReport`] the single-process run produces, timings aside.

use crate::cache::{CacheStats, PrepCache};
use crate::corpus::Corpus;
use crate::report::{BatchAggregator, StreamReport};
use crate::run::{reference_optima, stream_jobs, RuntimeConfig};
use crate::snap;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Magic + version prefix of the part-report snapshot format: seven
/// identifying bytes and a format version byte. The body is the fixed
/// header (`corpus_jobs · start · jobs · workers · peak_buffered ·
/// wall_micros`), the six cache counters, and the length-prefixed
/// [`BatchAggregator`] snapshot — all integers little-endian, the stream
/// self-delimiting (trailing bytes are corruption). Version 2 appends a
/// 16-byte FNV-1a-128 seal over every preceding byte, so *any* bit flip
/// or truncation in a checkpoint file surfaces as a load error instead
/// of a silently wrong merge.
pub const PART_MAGIC: &[u8; 8] = dapc_core::snapmagic::PART.bytes;

/// The aggregation of one contiguous job range of a corpus (or, after
/// merging, of any disjoint union of ranges): what a checkpoint file
/// holds and what a coordinator stitches back together. Produced by
/// [`solve_range`], shipped with [`PartReport::save_to`] /
/// [`PartReport::load_from`], recombined with [`PartReport::merge`] and
/// closed out with [`PartReport::finish`].
///
/// Unlike [`crate::ShardReport`] a part carries no `i`-of-`n` shard
/// coordinates — its identity is the canonical ranges its aggregator
/// covers ([`PartReport::covered`]), which is what makes crash-driven
/// repartitions mergeable at all.
#[derive(Debug)]
pub struct PartReport {
    /// Total jobs of the corpus being partially solved (validation that
    /// parts of the *same* sweep are merged).
    pub corpus_jobs: usize,
    /// Canonical index of the earliest job covered (the range start even
    /// while the part is empty).
    pub start: usize,
    /// Jobs this part covers (after merging: the sum).
    pub jobs: usize,
    /// The part's online aggregation, mergeable and snapshotable.
    pub aggregator: BatchAggregator,
    /// Prep-cache counters of the producing process (after merging:
    /// fieldwise sums over per-process caches).
    pub cache: CacheStats,
    /// Concurrent pump tasks the part ran with (after merging: the
    /// maximum).
    pub workers: usize,
    /// Reorder-buffer high-water mark (after merging: the maximum).
    pub peak_buffered: usize,
    /// Wall-clock time spent producing the part. Merging takes the
    /// per-part **maximum**, like shard merging: cooperating processes
    /// run concurrently.
    pub wall: Duration,
}

impl PartReport {
    /// The canonical job ranges this part covers, in normal form
    /// (sorted, disjoint, adjacent runs coalesced) — one entry straight
    /// from [`solve_range`], possibly several after merging
    /// non-adjacent parts.
    pub fn covered(&self) -> Vec<Range<usize>> {
        self.aggregator.covered()
    }

    /// Folds another part of the same sweep into this one: aggregators
    /// merge (associative and commutative over disjoint job sets), cache
    /// counters sum, wall time and concurrency telemetry take per-part
    /// maxima.
    ///
    /// # Panics
    ///
    /// Panics when the parts come from different corpora (`corpus_jobs`
    /// differs) or cover overlapping job ranges (the same checkpoint
    /// merged twice).
    pub fn merge(&mut self, other: PartReport) {
        assert_eq!(
            self.corpus_jobs, other.corpus_jobs,
            "parts of different corpora ({} vs {} jobs)",
            self.corpus_jobs, other.corpus_jobs
        );
        self.start = self.start.min(other.start);
        self.jobs += other.jobs;
        self.aggregator.merge(other.aggregator);
        self.cache.absorb(&other.cache);
        self.workers = self.workers.max(other.workers);
        self.peak_buffered = self.peak_buffered.max(other.peak_buffered);
        self.wall = self.wall.max(other.wall);
    }

    /// Finalises a fully merged part into the [`StreamReport`] the
    /// single-process streaming path would have returned (timings and
    /// per-process cache counters aside — groups and backends are equal
    /// bit for bit).
    ///
    /// # Panics
    ///
    /// Panics when the merged parts do not cover every job of the corpus
    /// — a checkpoint is missing.
    pub fn finish(self) -> StreamReport {
        assert_eq!(
            self.jobs, self.corpus_jobs,
            "merged parts cover {} of {} corpus jobs — a range is missing",
            self.jobs, self.corpus_jobs
        );
        let (groups, backends) = self.aggregator.finish();
        StreamReport {
            jobs: self.jobs,
            groups,
            backends,
            cache: self.cache,
            workers: self.workers,
            peak_buffered: self.peak_buffered,
            wall: self.wall,
        }
    }

    /// Writes this part in the versioned binary format (see
    /// [`PART_MAGIC`]).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(PART_MAGIC);
        snap::write_u64(&mut buf, self.corpus_jobs as u64)?;
        snap::write_u64(&mut buf, self.start as u64)?;
        snap::write_u64(&mut buf, self.jobs as u64)?;
        snap::write_u64(&mut buf, self.workers as u64)?;
        snap::write_u64(&mut buf, self.peak_buffered as u64)?;
        snap::write_u64(&mut buf, self.wall.as_micros() as u64)?;
        snap::write_u64(&mut buf, self.cache.families as u64)?;
        snap::write_u64(&mut buf, self.cache.entries as u64)?;
        snap::write_u64(&mut buf, self.cache.bytes as u64)?;
        snap::write_u64(&mut buf, self.cache.hits)?;
        snap::write_u64(&mut buf, self.cache.misses)?;
        snap::write_u64(&mut buf, self.cache.evictions)?;
        let mut aggregator = Vec::new();
        self.aggregator.save_to(&mut aggregator)?;
        snap::write_bytes(&mut buf, &aggregator)?;
        snap::seal(&mut buf);
        w.write_all(&buf)
    }

    /// Reads a part written by [`PartReport::save_to`]. Loading is
    /// all-or-nothing and never panics on untrusted input — a torn
    /// checkpoint file surfaces as an `Err` the coordinator treats as
    /// "this range was never completed".
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported version, a header disagreeing with the embedded
    /// aggregator (job count, start index, or coverage beyond the
    /// corpus), or trailing bytes; with
    /// [`io::ErrorKind::UnexpectedEof`] on truncation at any byte;
    /// besides propagating reader errors and the aggregator loader's own
    /// failures. A failed seal check (any byte under the seal flipped or
    /// missing) is `InvalidData` too.
    pub fn load_from<R: io::Read>(r: R) -> io::Result<Self> {
        let mut r = snap::SealingReader::new(dapc_chaos::corrupt_reader("part.load", r));
        snap::check_magic(&mut r, PART_MAGIC, "part-report")?;
        let corpus_jobs = snap::read_u64(&mut r)? as usize;
        let start = snap::read_u64(&mut r)? as usize;
        let jobs = snap::read_u64(&mut r)? as usize;
        if jobs > corpus_jobs {
            return Err(snap::invalid(format!(
                "part claims {jobs} of {corpus_jobs} corpus jobs"
            )));
        }
        let workers = snap::read_u64(&mut r)? as usize;
        let peak_buffered = snap::read_u64(&mut r)? as usize;
        let wall = Duration::from_micros(snap::read_u64(&mut r)?);
        let cache = CacheStats {
            families: snap::read_u64(&mut r)? as usize,
            entries: snap::read_u64(&mut r)? as usize,
            bytes: snap::read_u64(&mut r)? as usize,
            hits: snap::read_u64(&mut r)?,
            misses: snap::read_u64(&mut r)?,
            evictions: snap::read_u64(&mut r)?,
        };
        let aggregator_bytes = snap::read_bytes(&mut r, "aggregator snapshot")?;
        let mut aggregator_slice = aggregator_bytes.as_slice();
        let aggregator = BatchAggregator::load_from(&mut aggregator_slice)?;
        if !aggregator_slice.is_empty() {
            return Err(snap::invalid("trailing bytes after the aggregator block"));
        }
        if aggregator.jobs() != jobs {
            return Err(snap::invalid(format!(
                "part header claims {jobs} jobs but its aggregator folded {}",
                aggregator.jobs()
            )));
        }
        let covered = aggregator.covered();
        if let Some(first) = covered.first() {
            if first.start != start {
                return Err(snap::invalid(format!(
                    "part header starts at {start} but its aggregation at {}",
                    first.start
                )));
            }
        }
        if let Some(last) = covered.last() {
            if last.end > corpus_jobs {
                return Err(snap::invalid(format!(
                    "part covers jobs up to {} of a {corpus_jobs}-job corpus",
                    last.end
                )));
            }
        }
        r.verify_seal("part-report")?;
        // Self-delimiting like every snapshot format here: anything after
        // the last field is corruption, not padding.
        let mut trailing = [0u8; 1];
        if r.read(&mut trailing)? != 0 {
            return Err(snap::invalid("trailing bytes after the part report"));
        }
        Ok(PartReport {
            corpus_jobs,
            start,
            jobs,
            aggregator,
            cache,
            workers,
            peak_buffered,
            wall,
        })
    }
}

/// Solves the contiguous canonical job range `range` of `corpus` with a
/// fresh [`PrepCache`], returning the mergeable [`PartReport`].
///
/// Every `(key, report)` outcome inside the range is byte-identical to
/// the same job in the unsharded sweep, at any `jobs`/`prep_workers`
/// setting — jobs keep their global keys and key-derived RNG streams.
/// Reference optima are solved only for the instances the range actually
/// touches; ranges sharing an instance compute the same (deterministic)
/// optimum, which the merge verifies.
///
/// # Examples
///
/// A corpus carved into three uneven ranges — the shape a crashed
/// worker's reassigned remainder produces — merges back to the
/// single-process aggregation:
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
/// use dapc_runtime::{solve_many_streaming, solve_range, Corpus, RuntimeConfig};
///
/// let corpus = Corpus::builder()
///     .instance(
///         "MIS/cycle12",
///         problems::max_independent_set_unweighted(&gen::cycle(12)),
///     )
///     .backend("greedy")
///     .backend("bnb")
///     .eps(0.3)
///     .seeds(0..3)
///     .build();
/// let rt = RuntimeConfig::new();
///
/// // Ranges may merge in any order and any grouping.
/// let mut merged = solve_range(&corpus, 4..5, &rt);
/// merged.merge(solve_range(&corpus, 0..4, &rt));
/// merged.merge(solve_range(&corpus, 5..corpus.len(), &rt));
/// let stitched = merged.finish();
///
/// let single = solve_many_streaming(&corpus, &rt, |_r| {});
/// assert_eq!(stitched.jobs, single.jobs);
/// for (a, b) in stitched.groups.iter().zip(&single.groups) {
///     let (mut a, mut b) = (a.clone(), b.clone());
///     a.micros = 0; // wall-clock columns differ run to run,
///     b.micros = 0; // everything else is equal bit for bit
///     assert_eq!(a, b);
/// }
/// ```
///
/// # Panics
///
/// Panics when `range` reaches beyond the corpus.
pub fn solve_range(corpus: &Corpus, range: Range<usize>, rt: &RuntimeConfig) -> PartReport {
    solve_range_with_cache(corpus, range, rt, &PrepCache::new())
}

/// [`solve_range`] against a caller-owned [`PrepCache`] — warm it first
/// (e.g. from an earlier worker's prep snapshot) to ship memoised prep
/// work between cooperating processes.
pub fn solve_range_with_cache(
    corpus: &Corpus,
    range: Range<usize>,
    rt: &RuntimeConfig,
    cache: &PrepCache,
) -> PartReport {
    solve_range_streaming_with_cache(corpus, range, rt, cache, |_r| {})
}

/// [`solve_range_with_cache`] with an `on_result` hook: every
/// [`crate::JobResult`] of the range is handed over by value exactly
/// once, in canonical order, before being dropped — the range-scoped
/// sibling of [`crate::solve_many_streaming`], and what a solve service
/// uses to stream per-job results to a client while the mergeable
/// aggregation accrues.
pub fn solve_range_streaming_with_cache<F>(
    corpus: &Corpus,
    range: Range<usize>,
    rt: &RuntimeConfig,
    cache: &PrepCache,
    on_result: F,
) -> PartReport
where
    F: FnMut(crate::JobResult) + Send + 'static,
{
    // dapc-allow(wall-clock): wall-time report field; timings are excluded from report identity
    let start = Instant::now();
    let jobs = corpus.range_jobs(range.clone());
    let optima = if rt.reference_optima && !jobs.is_empty() {
        let touched: BTreeSet<&str> = jobs.iter().map(|j| j.key.instance.as_str()).collect();
        reference_optima(corpus, Some(&touched), rt.prep_cache, cache)
    } else {
        BTreeMap::new()
    };
    let aggregator = BatchAggregator::with_optima_at(optima, range.start);
    let (aggregator, pumps, peak_buffered) = stream_jobs(jobs, aggregator, rt, cache, on_result);
    PartReport {
        corpus_jobs: corpus.len(),
        start: range.start,
        jobs: range.len(),
        aggregator,
        cache: cache.stats(),
        workers: pumps,
        peak_buffered,
        wall: start.elapsed(),
    }
}
