//! Primitive readers/writers shared by the runtime's versioned binary
//! snapshot formats ([`crate::BatchAggregator`], [`crate::ShardReport`],
//! [`crate::PrepCache`]): little-endian integers, length-prefixed UTF-8
//! strings, and the magic/version check split so corrupt and
//! future-versioned streams fail with distinct errors.
//!
//! Two rules every reader here obeys (the same hardening contract as
//! `dapc_core`'s subset-cache snapshot loader):
//!
//! 1. **No length field is trusted with an allocation.** Variable-length
//!    payloads are read through `Read::take`, so memory grows with the
//!    bytes actually present and a corrupt length surfaces as
//!    [`std::io::ErrorKind::UnexpectedEof`] instead of an abort.
//! 2. **Truncation at any field boundary is an `Err`** — the higher-level
//!    loaders parse a full snapshot into fresh values before mutating
//!    anything, so a failed load never half-applies.

use dapc_ilp::hash::{fnv1a_128, FNV128_OFFSET};
use std::io::{self, Read, Write};

/// An [`std::io::ErrorKind::InvalidData`] error with `msg`.
pub fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes a little-endian `u64`.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a little-endian `u128`.
pub fn write_u128<W: Write>(w: &mut W, v: u128) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u128`.
pub fn read_u128<R: Read>(r: &mut R) -> io::Result<u128> {
    let mut buf = [0u8; 16];
    r.read_exact(&mut buf)?;
    Ok(u128::from_le_bytes(buf))
}

/// Reads one byte.
pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Writes a bool as one `0`/`1` byte.
pub fn write_bool<W: Write>(w: &mut W, v: bool) -> io::Result<()> {
    w.write_all(&[u8::from(v)])
}

/// Reads a `0`/`1` byte; anything else is `InvalidData` naming `what`.
pub fn read_bool<R: Read>(r: &mut R, what: &str) -> io::Result<bool> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(invalid(format!("bad {what} flag {b}"))),
    }
}

/// Writes `bytes` as `len: u64` followed by the raw bytes.
pub fn write_bytes<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    write_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)
}

/// Reads a length-prefixed byte block, allocating only in proportion to
/// the bytes actually present.
pub fn read_bytes<R: Read>(r: &mut R, what: &str) -> io::Result<Vec<u8>> {
    let len = read_u64(r)?;
    let mut bytes = Vec::new();
    r.take(len).read_to_end(&mut bytes)?;
    if bytes.len() as u64 != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated {what}: {} of {len} bytes", bytes.len()),
        ));
    }
    Ok(bytes)
}

/// Writes a string as a length-prefixed UTF-8 byte block.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_bytes(w, s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string (alloc bounded by real bytes).
pub fn read_str<R: Read>(r: &mut R, what: &str) -> io::Result<String> {
    let bytes = read_bytes(r, what)?;
    String::from_utf8(bytes).map_err(|_| invalid(format!("{what} is not UTF-8")))
}

/// Appends the 16-byte FNV-1a-128 seal over everything currently in
/// `buf`. Sealed formats serialise all fields into a buffer first, call
/// this last, and write the buffer in one shot; loaders parse the
/// fields through a [`SealingReader`] and call
/// [`SealingReader::verify_seal`] once every field is in. Any bit flip
/// or truncation anywhere under the seal is then guaranteed to surface
/// as an `Err` — a snapshot can fail to load, but never half-load or
/// load wrong.
pub fn seal(buf: &mut Vec<u8>) {
    let digest = fnv1a_128(FNV128_OFFSET, buf);
    buf.extend_from_slice(&digest.to_le_bytes());
}

/// A reader that folds every byte it passes through into a running
/// FNV-1a-128 digest, so a loader can parse a sealed snapshot's fields
/// normally and then check the trailing seal against exactly the bytes
/// it consumed. Field-level validation errors fire first (they read
/// fewer bytes); the seal catches everything those checks cannot.
pub struct SealingReader<R> {
    inner: R,
    digest: u128,
}

impl<R: Read> SealingReader<R> {
    /// Starts a fresh digest over `inner`.
    pub fn new(inner: R) -> Self {
        SealingReader {
            inner,
            digest: FNV128_OFFSET,
        }
    }

    /// Reads the 16-byte seal from the underlying stream (NOT folded
    /// into the digest) and compares it with the digest of everything
    /// read so far. Call after the last sealed field and before any
    /// trailing-bytes check.
    pub fn verify_seal(&mut self, what: &str) -> io::Result<()> {
        let expect = self.digest;
        let mut buf = [0u8; 16];
        self.inner.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("truncated {what} snapshot seal"),
                )
            } else {
                e
            }
        })?;
        if u128::from_le_bytes(buf) != expect {
            return Err(invalid(format!(
                "{what} snapshot seal mismatch (corrupt or torn file)"
            )));
        }
        Ok(())
    }
}

impl<R: Read> Read for SealingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest = fnv1a_128(self.digest, &buf[..n]);
        Ok(n)
    }
}

/// Checks an 8-byte `magic` prefix whose last byte is the format
/// version, failing with distinct messages for "not this format at all"
/// and "right format, unsupported version".
pub fn check_magic<R: Read>(r: &mut R, magic: &[u8; 8], what: &str) -> io::Result<()> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)?;
    if got[..7] != magic[..7] {
        return Err(invalid(format!("not a dapc {what} snapshot (bad magic)")));
    }
    if got[7] != magic[7] {
        return Err(invalid(format!(
            "unsupported {what} snapshot version {} (expected {})",
            got[7], magic[7]
        )));
    }
    Ok(())
}
