//! # dapc-runtime
//!
//! The parallel batch-solve subsystem: stream whole corpora of
//! `(instance × backend × ε × seed)` jobs across the process-wide
//! `dapc_exec` executor with per-instance-family prep caching, and get
//! back the aggregation the experiment tables need — either with the full
//! per-job result vector ([`solve_many`] → [`BatchReport`]), purely
//! online ([`solve_many_streaming`] → [`StreamReport`] plus an
//! `on_result` hook) for corpora that do not fit one process's memory, or
//! **sharded across processes** ([`solve_shard`] → mergeable
//! [`ShardReport`] snapshots) for corpora that do not fit one machine.
//!
//! Four guarantees shape the design:
//!
//! 1. **Order-independence.** Every job derives its `StdRng` from its own
//!    [`JobKey`], so results are byte-identical to sequential execution at
//!    any worker count — fan-out changes wall-clock time, never outcomes.
//! 2. **Cache-transparency.** The [`PrepCache`] shares only memoised
//!    exact subset solves, which are deterministic functions of their key;
//!    reports with the cache on and off are equal, the cache only skips
//!    repeated local computation (the memoised-subproblem-reuse idea of
//!    Chekuri & Quanrud 2018 applied across runs).
//! 3. **One pool, graceful nesting.** Across-corpus fan-out (`jobs`) and
//!    intra-solve prep sharding (`prep_workers`) both run on the shared
//!    executor, so oversubscribed `jobs × prep_workers` combinations
//!    queue instead of spawning threads; a [`BatchAggregator`] behind a
//!    bounded reorder buffer restores canonical delivery order (the
//!    streaming-computation framing of Koufogiannakis & Young 2011
//!    applied to the sweep itself).
//! 4. **One instance model, pluggable strategies.** Jobs go through the
//!    `dapc_core::engine` registry, so any registered backend — current or
//!    future — batches without new code here.
//!
//! # Examples
//!
//! ```
//! use dapc_graph::gen;
//! use dapc_ilp::problems;
//! use dapc_runtime::{solve_many, Corpus, RuntimeConfig};
//!
//! let corpus = Corpus::builder()
//!     .instance(
//!         "MIS/cycle18",
//!         problems::max_independent_set_unweighted(&gen::cycle(18)),
//!     )
//!     .instance(
//!         "VC/cycle14",
//!         problems::min_vertex_cover_unweighted(&gen::cycle(14)),
//!     )
//!     .backend("three-phase")
//!     .backend("bnb")
//!     .eps(0.3)
//!     .seeds(0..3)
//!     .build();
//! let report = solve_many(&corpus, &RuntimeConfig::new().jobs(4));
//! assert_eq!(report.results.len(), 2 * 2 * 1 * 3);
//! assert!(report.results.iter().all(|r| r.report.feasible()));
//! // Seeds of one family share prep work through the cache:
//! assert!(report.cache.hits > 0);
//! // The worst three-phase packing seed still meets (1 − ε)·OPT:
//! let g = report.group("MIS/cycle18", "three-phase", 0.3).unwrap();
//! assert!(g.meets_guarantee());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod corpus;
mod part;
mod report;
mod run;
mod shard;
pub mod snap;

pub use cache::{CacheStats, PrepCache, PREP_CACHE_MAGIC};
pub use corpus::{Corpus, CorpusBuilder, Job, JobKey};
pub use part::{
    solve_range, solve_range_streaming_with_cache, solve_range_with_cache, PartReport, PART_MAGIC,
};
pub use report::{
    BackendSummary, BatchAggregator, BatchReport, GroupStats, GroupSummary, JobResult,
    StreamReport, AGGREGATOR_MAGIC,
};
pub use run::{
    solve_many, solve_many_streaming, solve_many_streaming_with_cache, solve_many_with_cache,
    RuntimeConfig,
};
pub use shard::{solve_shard, solve_shard_with_cache, ShardReport, SHARD_MAGIC};
