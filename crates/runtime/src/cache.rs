//! The cross-job preparation cache: one [`SharedSubsetCache`] per
//! instance family.

use crate::snap;
use dapc_core::engine::SharedSubsetCache;
use dapc_ilp::{IlpInstance, SolverBudget};
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Registry gauge for the resident family count, resolved once.
fn metrics_families() -> &'static dapc_obs::Gauge {
    static G: std::sync::OnceLock<dapc_obs::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| dapc_obs::gauge("runtime.prep_cache.families"))
}

/// Magic + version prefix of the whole-cache warm-start format: seven
/// identifying bytes and a format version byte. The body is
/// `family count: u64` followed by families sorted by key, each as
/// `instance fingerprint: u64 · budget: u64 · length-prefixed
/// SharedSubsetCache snapshot`, all integers little-endian.
pub const PREP_CACHE_MAGIC: &[u8; 8] = dapc_core::snapmagic::PREP_CACHE.bytes;

/// Hoists the `dapc_core::prep` subset-solve memoisation from per-run to
/// per-instance-family: families are keyed by
/// `(instance fingerprint, budget)`, and every job of one family shares
/// one [`SharedSubsetCache`] behind an `Arc`.
///
/// Cached entries are deterministic functions of their key, so attaching
/// a cache never changes any job's report — only how much exact local
/// computation is repeated. Handles are cheap to clone (shallow); a cache
/// can outlive a single [`crate::solve_many`] call to keep its memo warm
/// across batches of the same family.
///
/// By default families are unbounded; [`PrepCache::with_family_capacity`]
/// puts every family under a byte budget with least-recently-used
/// eviction, so long-running batch services sweeping many large instance
/// families hold their memory flat. Eviction is transparent — a victim is
/// recomputed on its next lookup, never changing a report.
#[derive(Clone, Default)]
pub struct PrepCache {
    families: Arc<Mutex<BTreeMap<(u64, u64), SharedSubsetCache>>>,
    /// Byte budget applied to every family cache (`None` = unbounded).
    family_capacity: Option<usize>,
}

impl PrepCache {
    /// Creates an empty cache with unbounded families.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache whose families each hold at most
    /// ~`capacity` bytes of memoised subset solves, evicting
    /// least-recently-used entries beyond that.
    pub fn with_family_capacity(capacity: usize) -> Self {
        PrepCache {
            families: Arc::default(),
            family_capacity: Some(capacity),
        }
    }

    /// The family cache for `(ilp, budget)`, created on first use.
    pub fn family(&self, ilp: &IlpInstance, budget: &SolverBudget) -> SharedSubsetCache {
        let (family, count) = {
            // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
            let mut families = self.families.lock().expect("prep cache lock");
            let family = families
                .entry((ilp.fingerprint(), budget.node_limit))
                .or_insert_with(|| match self.family_capacity {
                    Some(bytes) => SharedSubsetCache::with_capacity(bytes),
                    None => SharedSubsetCache::new(),
                })
                .clone();
            (family, families.len())
        };
        if dapc_obs::enabled() {
            // With several caches alive the gauge tracks the one most
            // recently touched — good enough for the common one-resident-
            // cache daemon and batch shapes.
            metrics_families().set(count as u64);
        }
        family
    }

    /// Persists one family's memoised subset solves in the
    /// `SharedSubsetCache` warm-start format (stable 128-bit subset
    /// digests, so snapshots are valid across runs and platforms).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_family<W: io::Write>(
        &self,
        ilp: &IlpInstance,
        budget: &SolverBudget,
        w: W,
    ) -> io::Result<()> {
        self.family(ilp, budget).save_to(w)
    }

    /// Warm-starts one family from a snapshot written by
    /// [`PrepCache::save_family`] (or `SharedSubsetCache::save_to`),
    /// returning the number of entries loaded. Warm entries turn the
    /// family's cold misses into hits — counters and work change, reports
    /// never do.
    ///
    /// # Errors
    ///
    /// Fails like `SharedSubsetCache::load_into` on a bad or truncated
    /// snapshot.
    pub fn warm_family<R: io::Read>(
        &self,
        ilp: &IlpInstance,
        budget: &SolverBudget,
        r: R,
    ) -> io::Result<usize> {
        self.family(ilp, budget).load_into(r)
    }

    /// Persists **every** family's memoised subset solves in one
    /// versioned snapshot (see [`PREP_CACHE_MAGIC`]) — the whole-cache
    /// form of [`PrepCache::save_family`], used to ship prep work between
    /// shard processes ([`crate::ShardReport::with_prep`]). The byte
    /// stream is canonical: families are written sorted by key, each in
    /// the `SharedSubsetCache` canonical entry order.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let families = self.families.lock().expect("prep cache lock");
        let mut keys: Vec<(u64, u64)> = families.keys().copied().collect();
        keys.sort_unstable();
        w.write_all(PREP_CACHE_MAGIC)?;
        snap::write_u64(&mut w, keys.len() as u64)?;
        for key in keys {
            snap::write_u64(&mut w, key.0)?;
            snap::write_u64(&mut w, key.1)?;
            let mut blob = Vec::new();
            families[&key].save_to(&mut blob)?;
            snap::write_bytes(&mut w, &blob)?;
        }
        Ok(())
    }

    /// Warm-starts every family found in a snapshot written by
    /// [`PrepCache::save_to`], returning the total number of memoised
    /// subset solves loaded. Families are created on demand (under this
    /// cache's capacity policy) and merged into when they already exist.
    /// Like every warm start, loading moves counters and work, never a
    /// report.
    ///
    /// Loading is all-or-nothing: the snapshot is fully parsed and every
    /// family blob validated before anything is inserted, so a truncated
    /// or corrupt stream leaves the cache untouched.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported version, a duplicated family, a corrupt family blob,
    /// or trailing bytes after the last family, and with
    /// [`io::ErrorKind::UnexpectedEof`] on truncation at any field
    /// boundary.
    pub fn load_into<R: io::Read>(&self, mut r: R) -> io::Result<usize> {
        snap::check_magic(&mut r, PREP_CACHE_MAGIC, "prep-cache")?;
        let count = snap::read_u64(&mut r)?;
        // Parse every family once, into caches built under this
        // PrepCache's capacity policy, before any real family is
        // touched — the single-parse fast path hands the parsed cache
        // over wholesale when the family does not exist yet.
        // (family key, policy-built cache, entry count, raw blob).
        type ParsedFamily = ((u64, u64), SharedSubsetCache, usize, Vec<u8>);
        let mut parsed: Vec<ParsedFamily> = Vec::new();
        for _ in 0..count {
            let fingerprint = snap::read_u64(&mut r)?;
            let budget = snap::read_u64(&mut r)?;
            let key = (fingerprint, budget);
            let blob = snap::read_bytes(&mut r, "family snapshot")?;
            let family = match self.family_capacity {
                Some(bytes) => SharedSubsetCache::with_capacity(bytes),
                None => SharedSubsetCache::new(),
            };
            let entries = family.load_into(blob.as_slice())?;
            if parsed.iter().any(|(k, ..)| *k == key) {
                return Err(snap::invalid(format!(
                    "family {key:?} appears twice in the snapshot"
                )));
            }
            parsed.push((key, family, entries, blob));
        }
        // Self-delimiting like every snapshot format here: bytes after
        // the last family are corruption, not padding — rejecting them
        // (before any insertion) keeps the all-or-nothing contract.
        let mut trailing = [0u8; 1];
        if r.read(&mut trailing)? != 0 {
            return Err(snap::invalid("trailing bytes after the last family"));
        }
        let mut loaded = 0;
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let mut families = self.families.lock().expect("prep cache lock");
        for (key, fresh, entries, blob) in parsed {
            match families.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(fresh);
                    loaded += entries;
                }
                // A family that already exists is merged into (the rare
                // warm-on-warm path): replay the validated blob.
                std::collections::btree_map::Entry::Occupied(slot) => {
                    loaded += slot.get().load_into(blob.as_slice())?;
                }
            }
        }
        Ok(loaded)
    }

    /// Aggregate counters across every family.
    pub fn stats(&self) -> CacheStats {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let families = self.families.lock().expect("prep cache lock");
        let mut stats = CacheStats {
            families: families.len(),
            ..CacheStats::default()
        };
        for cache in families.values() {
            stats.entries += cache.len();
            stats.bytes += cache.bytes();
            stats.hits += cache.hits();
            stats.misses += cache.misses();
            stats.evictions += cache.evictions();
        }
        stats
    }
}

impl std::fmt::Debug for PrepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PrepCache").field(&self.stats()).finish()
    }
}

/// Aggregate prep-cache counters, surfaced in
/// [`crate::BatchReport::cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct `(instance fingerprint, budget)` families.
    pub families: usize,
    /// Memoised subset solves across all families.
    pub entries: usize,
    /// Approximate bytes held across all families.
    pub bytes: usize,
    /// Cross-run lookups answered from a family cache.
    pub hits: u64,
    /// Cross-run lookups that ran the exact solver.
    pub misses: u64,
    /// Entries dropped by the per-family LRU policy (always 0 for
    /// unbounded caches).
    pub evictions: u64,
}

impl CacheStats {
    /// Fieldwise sum with another process's counters, used when merging
    /// [`crate::ShardReport`]s: the work counters (`hits`, `misses`,
    /// `evictions`) add exactly; `families`/`entries`/`bytes` become
    /// totals *across per-process caches*, which may double-count a
    /// family two shards both materialised.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.families += other.families;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// `hits / (hits + misses)`, or `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    #[test]
    fn families_split_by_instance_and_budget() {
        let cache = PrepCache::new();
        let a = problems::max_independent_set_unweighted(&gen::cycle(8));
        let b = problems::max_independent_set_unweighted(&gen::cycle(10));
        let default = SolverBudget::default();
        let tight = SolverBudget {
            node_limit: 10,
            ..Default::default()
        };
        let fa = cache.family(&a, &default);
        assert_eq!(cache.family(&a, &default), fa, "same family, same cache");
        assert_ne!(cache.family(&b, &default), fa);
        assert_ne!(cache.family(&a, &tight), fa);
        assert_eq!(cache.stats().families, 3);
    }

    #[test]
    fn family_capacity_propagates() {
        let bounded = PrepCache::with_family_capacity(4096);
        let ilp = problems::max_independent_set_unweighted(&gen::cycle(6));
        let family = bounded.family(&ilp, &SolverBudget::default());
        assert_eq!(family.capacity(), Some(4096));
        let unbounded = PrepCache::new();
        assert_eq!(
            unbounded.family(&ilp, &SolverBudget::default()).capacity(),
            None
        );
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let some = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((some.hit_rate() - 0.75).abs() < 1e-12);
    }
}
