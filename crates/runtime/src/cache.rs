//! The cross-job preparation cache: one [`SharedSubsetCache`] per
//! instance family.

use dapc_core::engine::SharedSubsetCache;
use dapc_ilp::{IlpInstance, SolverBudget};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Hoists the `dapc_core::prep` subset-solve memoisation from per-run to
/// per-instance-family: families are keyed by
/// `(instance fingerprint, budget)`, and every job of one family shares
/// one [`SharedSubsetCache`] behind an `Arc`.
///
/// Cached entries are deterministic functions of their key, so attaching
/// a cache never changes any job's report — only how much exact local
/// computation is repeated. Handles are cheap to clone (shallow); a cache
/// can outlive a single [`crate::solve_many`] call to keep its memo warm
/// across batches of the same family.
///
/// By default families are unbounded; [`PrepCache::with_family_capacity`]
/// puts every family under a byte budget with least-recently-used
/// eviction, so long-running batch services sweeping many large instance
/// families hold their memory flat. Eviction is transparent — a victim is
/// recomputed on its next lookup, never changing a report.
#[derive(Clone, Default)]
pub struct PrepCache {
    families: Arc<Mutex<HashMap<(u64, u64), SharedSubsetCache>>>,
    /// Byte budget applied to every family cache (`None` = unbounded).
    family_capacity: Option<usize>,
}

impl PrepCache {
    /// Creates an empty cache with unbounded families.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache whose families each hold at most
    /// ~`capacity` bytes of memoised subset solves, evicting
    /// least-recently-used entries beyond that.
    pub fn with_family_capacity(capacity: usize) -> Self {
        PrepCache {
            families: Arc::default(),
            family_capacity: Some(capacity),
        }
    }

    /// The family cache for `(ilp, budget)`, created on first use.
    pub fn family(&self, ilp: &IlpInstance, budget: &SolverBudget) -> SharedSubsetCache {
        self.families
            .lock()
            .expect("prep cache lock")
            .entry((ilp.fingerprint(), budget.node_limit))
            .or_insert_with(|| match self.family_capacity {
                Some(bytes) => SharedSubsetCache::with_capacity(bytes),
                None => SharedSubsetCache::new(),
            })
            .clone()
    }

    /// Persists one family's memoised subset solves in the
    /// `SharedSubsetCache` warm-start format (stable 128-bit subset
    /// digests, so snapshots are valid across runs and platforms).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_family<W: io::Write>(
        &self,
        ilp: &IlpInstance,
        budget: &SolverBudget,
        w: W,
    ) -> io::Result<()> {
        self.family(ilp, budget).save_to(w)
    }

    /// Warm-starts one family from a snapshot written by
    /// [`PrepCache::save_family`] (or `SharedSubsetCache::save_to`),
    /// returning the number of entries loaded. Warm entries turn the
    /// family's cold misses into hits — counters and work change, reports
    /// never do.
    ///
    /// # Errors
    ///
    /// Fails like `SharedSubsetCache::load_into` on a bad or truncated
    /// snapshot.
    pub fn warm_family<R: io::Read>(
        &self,
        ilp: &IlpInstance,
        budget: &SolverBudget,
        r: R,
    ) -> io::Result<usize> {
        self.family(ilp, budget).load_into(r)
    }

    /// Aggregate counters across every family.
    pub fn stats(&self) -> CacheStats {
        let families = self.families.lock().expect("prep cache lock");
        let mut stats = CacheStats {
            families: families.len(),
            ..CacheStats::default()
        };
        for cache in families.values() {
            stats.entries += cache.len();
            stats.bytes += cache.bytes();
            stats.hits += cache.hits();
            stats.misses += cache.misses();
            stats.evictions += cache.evictions();
        }
        stats
    }
}

impl std::fmt::Debug for PrepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PrepCache").field(&self.stats()).finish()
    }
}

/// Aggregate prep-cache counters, surfaced in
/// [`crate::BatchReport::cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct `(instance fingerprint, budget)` families.
    pub families: usize,
    /// Memoised subset solves across all families.
    pub entries: usize,
    /// Approximate bytes held across all families.
    pub bytes: usize,
    /// Cross-run lookups answered from a family cache.
    pub hits: u64,
    /// Cross-run lookups that ran the exact solver.
    pub misses: u64,
    /// Entries dropped by the per-family LRU policy (always 0 for
    /// unbounded caches).
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    #[test]
    fn families_split_by_instance_and_budget() {
        let cache = PrepCache::new();
        let a = problems::max_independent_set_unweighted(&gen::cycle(8));
        let b = problems::max_independent_set_unweighted(&gen::cycle(10));
        let default = SolverBudget::default();
        let tight = SolverBudget { node_limit: 10 };
        let fa = cache.family(&a, &default);
        assert_eq!(cache.family(&a, &default), fa, "same family, same cache");
        assert_ne!(cache.family(&b, &default), fa);
        assert_ne!(cache.family(&a, &tight), fa);
        assert_eq!(cache.stats().families, 3);
    }

    #[test]
    fn family_capacity_propagates() {
        let bounded = PrepCache::with_family_capacity(4096);
        let ilp = problems::max_independent_set_unweighted(&gen::cycle(6));
        let family = bounded.family(&ilp, &SolverBudget::default());
        assert_eq!(family.capacity(), Some(4096));
        let unbounded = PrepCache::new();
        assert_eq!(
            unbounded.family(&ilp, &SolverBudget::default()).capacity(),
            None
        );
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let some = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((some.hit_rate() - 0.75).abs() < 1e-12);
    }
}
