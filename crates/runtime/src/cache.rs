//! The cross-job preparation cache: one [`SharedSubsetCache`] per
//! instance family.

use dapc_core::engine::SharedSubsetCache;
use dapc_ilp::{IlpInstance, SolverBudget};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hoists the `dapc_core::prep` subset-solve memoisation from per-run to
/// per-instance-family: families are keyed by
/// `(instance fingerprint, budget)`, and every job of one family shares
/// one [`SharedSubsetCache`] behind an `Arc`.
///
/// Cached entries are deterministic functions of their key, so attaching
/// a cache never changes any job's report — only how much exact local
/// computation is repeated. Handles are cheap to clone (shallow); a cache
/// can outlive a single [`crate::solve_many`] call to keep its memo warm
/// across batches of the same family.
#[derive(Clone, Default)]
pub struct PrepCache {
    families: Arc<Mutex<HashMap<(u64, u64), SharedSubsetCache>>>,
}

impl PrepCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The family cache for `(ilp, budget)`, created on first use.
    pub fn family(&self, ilp: &IlpInstance, budget: &SolverBudget) -> SharedSubsetCache {
        self.families
            .lock()
            .expect("prep cache lock")
            .entry((ilp.fingerprint(), budget.node_limit))
            .or_default()
            .clone()
    }

    /// Aggregate counters across every family.
    pub fn stats(&self) -> CacheStats {
        let families = self.families.lock().expect("prep cache lock");
        let mut stats = CacheStats {
            families: families.len(),
            ..CacheStats::default()
        };
        for cache in families.values() {
            stats.entries += cache.len();
            stats.hits += cache.hits();
            stats.misses += cache.misses();
        }
        stats
    }
}

impl std::fmt::Debug for PrepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PrepCache").field(&self.stats()).finish()
    }
}

/// Aggregate prep-cache counters, surfaced in
/// [`crate::BatchReport::cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct `(instance fingerprint, budget)` families.
    pub families: usize,
    /// Memoised subset solves across all families.
    pub entries: usize,
    /// Cross-run lookups answered from a family cache.
    pub hits: u64,
    /// Cross-run lookups that ran the exact solver.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    #[test]
    fn families_split_by_instance_and_budget() {
        let cache = PrepCache::new();
        let a = problems::max_independent_set_unweighted(&gen::cycle(8));
        let b = problems::max_independent_set_unweighted(&gen::cycle(10));
        let default = SolverBudget::default();
        let tight = SolverBudget { node_limit: 10 };
        let fa = cache.family(&a, &default);
        assert_eq!(cache.family(&a, &default), fa, "same family, same cache");
        assert_ne!(cache.family(&b, &default), fa);
        assert_ne!(cache.family(&a, &tight), fa);
        assert_eq!(cache.stats().families, 3);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let some = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((some.hit_rate() - 0.75).abs() < 1e-12);
    }
}
