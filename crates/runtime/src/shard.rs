//! Multi-process sharding of one corpus: each cooperating process solves
//! a contiguous slice of the canonical job order ([`solve_shard`]) and
//! ships back a compact [`ShardReport`] — the shard's mergeable
//! [`BatchAggregator`] plus its counters, optionally bundled with a
//! prep-cache warm-start snapshot — instead of per-job results. Merging
//! every shard's report ([`ShardReport::merge`] / [`ShardReport::finish`])
//! reproduces the single-process [`StreamReport`] exactly, timings aside:
//! this is the aggregate-by-compact-summaries shape of distributed
//! covering/packing (Koufogiannakis & Young, Distributed Computing 2011)
//! applied to the experiment sweep itself.
//!
//! Because every job derives its RNG from its own [`crate::JobKey`] and
//! [`crate::Corpus::shard_range`] never renumbers jobs, a sharded sweep
//! is byte-identical to the unsharded one job for job — sharding, like
//! every other runtime knob, changes where work runs, never what it
//! computes.

use crate::cache::{CacheStats, PrepCache};
use crate::corpus::Corpus;
use crate::part::solve_range_with_cache;
use crate::report::{BatchAggregator, StreamReport};
use crate::run::RuntimeConfig;
use crate::snap;
use std::io::{self, Read};
use std::time::Duration;

/// Magic + version prefix of the shard-report snapshot format: seven
/// identifying bytes and a format version byte. The body is the fixed
/// header (`shard · shards · corpus_jobs · jobs · workers ·
/// peak_buffered · wall_micros`), the six cache counters, the
/// length-prefixed [`BatchAggregator`] snapshot, and the optional
/// length-prefixed prep-cache snapshot behind a presence flag — all
/// integers little-endian. Version 2 appends a 16-byte FNV-1a-128 seal
/// over every preceding byte, so any bit flip or truncation in a shipped
/// report surfaces as a load error instead of a silently wrong merge.
pub const SHARD_MAGIC: &[u8; 8] = dapc_core::snapmagic::SHARD.bytes;

/// What one shard of a corpus sends home: the mergeable aggregation of
/// its job slice plus run counters — everything the merged experiment
/// tables need, in size proportional to the number of summary cells, not
/// jobs. Produced by [`solve_shard`], shipped with
/// [`ShardReport::save_to`] / [`ShardReport::load_from`], recombined with
/// [`ShardReport::merge`] and closed out with [`ShardReport::finish`].
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index this report was produced as (after merging: the
    /// smallest merged index).
    pub shard: usize,
    /// Total shard count of the split.
    pub shards: usize,
    /// Total jobs of the corpus being split (validation that shards of
    /// the *same* sweep are merged).
    pub corpus_jobs: usize,
    /// Jobs this report covers (after merging: the sum).
    pub jobs: usize,
    /// The shard's online aggregation, mergeable and snapshotable.
    pub aggregator: BatchAggregator,
    /// Prep-cache counters of the shard's process (after merging:
    /// fieldwise sums over per-process caches).
    pub cache: CacheStats,
    /// Concurrent pump tasks the shard ran with (after merging: the
    /// maximum).
    pub workers: usize,
    /// Reorder-buffer high-water mark (after merging: the maximum).
    pub peak_buffered: usize,
    /// Wall-clock time of the shard. Merging takes the per-shard
    /// **maximum**: cooperating processes run concurrently, so the
    /// merged wall models the slowest shard, not the sum.
    pub wall: Duration,
    /// Optional prep-cache warm-start snapshot (see
    /// [`ShardReport::with_prep`]), for shipping memoised subset solves
    /// to a cooperating process. Dropped by [`ShardReport::merge`] —
    /// warm starts are for running shards, not for merged tables.
    pub prep: Option<Vec<u8>>,
}

impl ShardReport {
    /// Bundles a warm-start snapshot of `cache` (the
    /// [`PrepCache::save_to`] format) into the report, so a cooperating
    /// process can seed its own cache from it via
    /// [`ShardReport::warm_start`] before solving a later shard of the
    /// same families. Warm starts move counters and work, never a
    /// report.
    pub fn with_prep(mut self, cache: &PrepCache) -> Self {
        let mut snapshot = Vec::new();
        cache
            .save_to(&mut snapshot)
            // dapc-allow(panic): writing to a Vec cannot fail
            .expect("writing to a Vec cannot fail");
        self.prep = Some(snapshot);
        self
    }

    /// Loads this report's bundled prep snapshot (if any) into `cache`,
    /// returning the number of memoised subset solves seeded (0 when the
    /// report carries no snapshot).
    ///
    /// # Errors
    ///
    /// Fails like [`PrepCache::load_into`] on a corrupt snapshot.
    pub fn warm_start(&self, cache: &PrepCache) -> io::Result<usize> {
        match &self.prep {
            Some(snapshot) => cache.load_into(snapshot.as_slice()),
            None => Ok(0),
        }
    }

    /// Folds another shard of the same split into this report:
    /// aggregators merge (associative and commutative over disjoint job
    /// sets), cache counters sum, wall time and concurrency telemetry
    /// take per-shard maxima.
    ///
    /// **Wall-time semantics:** `wall` is the per-shard **maximum**, not
    /// the sum — cooperating shard processes run concurrently, so the
    /// merged wall models the critical path (the slowest shard), exactly
    /// like the field documents. Summing would bill a 4-process sweep
    /// 4× its elapsed time. Pinned by the
    /// `merge_takes_per_shard_wall_maximum` unit test.
    ///
    /// # Panics
    ///
    /// Panics when the reports come from different splits (`shards` or
    /// `corpus_jobs` differ) or cover overlapping job ranges (the same
    /// shard merged twice).
    pub fn merge(&mut self, other: ShardReport) {
        assert_eq!(
            self.shards, other.shards,
            "cannot merge a {}-shard split with a {}-shard split",
            self.shards, other.shards
        );
        assert_eq!(
            self.corpus_jobs, other.corpus_jobs,
            "shards of different corpora ({} vs {} jobs)",
            self.corpus_jobs, other.corpus_jobs
        );
        self.shard = self.shard.min(other.shard);
        self.jobs += other.jobs;
        self.aggregator.merge(other.aggregator);
        self.cache.absorb(&other.cache);
        self.workers = self.workers.max(other.workers);
        self.peak_buffered = self.peak_buffered.max(other.peak_buffered);
        self.wall = self.wall.max(other.wall);
        self.prep = None;
    }

    /// Finalises a fully merged report into the [`StreamReport`] the
    /// single-process streaming path would have returned (timings and
    /// per-process cache snapshots aside — groups and backends are equal
    /// bit for bit).
    ///
    /// # Panics
    ///
    /// Panics when shards are missing: the merged report must cover
    /// every job of the corpus.
    pub fn finish(self) -> StreamReport {
        assert_eq!(
            self.jobs, self.corpus_jobs,
            "merged report covers {} of {} corpus jobs — a shard is missing",
            self.jobs, self.corpus_jobs
        );
        let (groups, backends) = self.aggregator.finish();
        StreamReport {
            jobs: self.jobs,
            groups,
            backends,
            cache: self.cache,
            workers: self.workers,
            peak_buffered: self.peak_buffered,
            wall: self.wall,
        }
    }

    /// Writes this report in the versioned binary format (see
    /// [`SHARD_MAGIC`]).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(SHARD_MAGIC);
        snap::write_u64(&mut buf, self.shard as u64)?;
        snap::write_u64(&mut buf, self.shards as u64)?;
        snap::write_u64(&mut buf, self.corpus_jobs as u64)?;
        snap::write_u64(&mut buf, self.jobs as u64)?;
        snap::write_u64(&mut buf, self.workers as u64)?;
        snap::write_u64(&mut buf, self.peak_buffered as u64)?;
        snap::write_u64(&mut buf, self.wall.as_micros() as u64)?;
        snap::write_u64(&mut buf, self.cache.families as u64)?;
        snap::write_u64(&mut buf, self.cache.entries as u64)?;
        snap::write_u64(&mut buf, self.cache.bytes as u64)?;
        snap::write_u64(&mut buf, self.cache.hits)?;
        snap::write_u64(&mut buf, self.cache.misses)?;
        snap::write_u64(&mut buf, self.cache.evictions)?;
        let mut aggregator = Vec::new();
        self.aggregator.save_to(&mut aggregator)?;
        snap::write_bytes(&mut buf, &aggregator)?;
        snap::write_bool(&mut buf, self.prep.is_some())?;
        if let Some(prep) = &self.prep {
            snap::write_bytes(&mut buf, prep)?;
        }
        snap::seal(&mut buf);
        w.write_all(&buf)
    }

    /// Reads a report written by [`ShardReport::save_to`]. Loading is
    /// all-or-nothing and never panics on untrusted input.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported version, an out-of-range shard header, a job count
    /// disagreeing with the embedded aggregator, or trailing bytes (in
    /// the aggregator block or after the report); with
    /// [`io::ErrorKind::UnexpectedEof`] on
    /// truncation at any field boundary; besides propagating reader
    /// errors and the aggregator loader's own failures. A failed seal
    /// check (any byte under the seal flipped or missing) is
    /// `InvalidData` too.
    pub fn load_from<R: io::Read>(r: R) -> io::Result<Self> {
        let mut r = snap::SealingReader::new(dapc_chaos::corrupt_reader("shard.load", r));
        snap::check_magic(&mut r, SHARD_MAGIC, "shard-report")?;
        let shard = snap::read_u64(&mut r)? as usize;
        let shards = snap::read_u64(&mut r)? as usize;
        let corpus_jobs = snap::read_u64(&mut r)? as usize;
        let jobs = snap::read_u64(&mut r)? as usize;
        if shards == 0 || shard >= shards {
            return Err(snap::invalid(format!(
                "shard header {shard}/{shards} out of range"
            )));
        }
        if jobs > corpus_jobs {
            return Err(snap::invalid(format!(
                "shard claims {jobs} of {corpus_jobs} corpus jobs"
            )));
        }
        let workers = snap::read_u64(&mut r)? as usize;
        let peak_buffered = snap::read_u64(&mut r)? as usize;
        let wall = Duration::from_micros(snap::read_u64(&mut r)?);
        let cache = CacheStats {
            families: snap::read_u64(&mut r)? as usize,
            entries: snap::read_u64(&mut r)? as usize,
            bytes: snap::read_u64(&mut r)? as usize,
            hits: snap::read_u64(&mut r)?,
            misses: snap::read_u64(&mut r)?,
            evictions: snap::read_u64(&mut r)?,
        };
        let aggregator_bytes = snap::read_bytes(&mut r, "aggregator snapshot")?;
        let mut aggregator_slice = aggregator_bytes.as_slice();
        let aggregator = BatchAggregator::load_from(&mut aggregator_slice)?;
        if !aggregator_slice.is_empty() {
            return Err(snap::invalid("trailing bytes after the aggregator block"));
        }
        if aggregator.jobs() != jobs {
            return Err(snap::invalid(format!(
                "shard header claims {jobs} jobs but its aggregator folded {}",
                aggregator.jobs()
            )));
        }
        let prep = if snap::read_bool(&mut r, "prep-snapshot presence")? {
            Some(snap::read_bytes(&mut r, "prep snapshot")?)
        } else {
            None
        };
        r.verify_seal("shard-report")?;
        // The report is self-delimiting: like the aggregator sub-block,
        // anything after the last field is corruption, not padding.
        let mut trailing = [0u8; 1];
        if r.read(&mut trailing)? != 0 {
            return Err(snap::invalid("trailing bytes after the shard report"));
        }
        Ok(ShardReport {
            shard,
            shards,
            corpus_jobs,
            jobs,
            aggregator,
            cache,
            workers,
            peak_buffered,
            wall,
            prep,
        })
    }
}

/// Solves shard `shard` of `shards` of `corpus` (the contiguous slice
/// [`Corpus::shard_range`] defines) with a fresh [`PrepCache`], returning
/// the mergeable [`ShardReport`].
///
/// Every `(key, report)` outcome inside the shard is byte-identical to
/// the same job in the unsharded sweep, at any `jobs`/`prep_workers`
/// setting — jobs keep their global keys and key-derived RNG streams.
/// Reference optima are solved only for the instances the shard actually
/// touches; shards sharing an instance compute the same (deterministic)
/// optimum, which the merge verifies.
///
/// # Examples
///
/// A two-shard split merged back together equals the single-process run:
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
/// use dapc_runtime::{solve_many_streaming, solve_shard, Corpus, RuntimeConfig};
///
/// let corpus = Corpus::builder()
///     .instance(
///         "MIS/cycle14",
///         problems::max_independent_set_unweighted(&gen::cycle(14)),
///     )
///     .backend("greedy")
///     .backend("bnb")
///     .eps(0.3)
///     .seeds(0..3)
///     .build();
/// let rt = RuntimeConfig::new();
///
/// // Run the halves — in real use, in two separate processes, with the
/// // reports shipped home via `save_to`/`load_from`.
/// let mut merged = solve_shard(&corpus, 0, 2, &rt);
/// merged.merge(solve_shard(&corpus, 1, 2, &rt));
/// let sharded = merged.finish();
///
/// let single = solve_many_streaming(&corpus, &rt, |_r| {});
/// assert_eq!(sharded.jobs, single.jobs);
/// assert_eq!(sharded.groups.len(), single.groups.len());
/// for (a, b) in sharded.groups.iter().zip(&single.groups) {
///     let (mut a, mut b) = (a.clone(), b.clone());
///     a.micros = 0; // wall-clock columns differ run to run,
///     b.micros = 0; // everything else is equal bit for bit
///     assert_eq!(a, b);
/// }
/// ```
pub fn solve_shard(
    corpus: &Corpus,
    shard: usize,
    shards: usize,
    rt: &RuntimeConfig,
) -> ShardReport {
    solve_shard_with_cache(corpus, shard, shards, rt, &PrepCache::new())
}

/// [`solve_shard`] against a caller-owned [`PrepCache`] — warm it first
/// (e.g. from an earlier shard's [`ShardReport::warm_start`] snapshot) to
/// ship prep work between cooperating processes.
pub fn solve_shard_with_cache(
    corpus: &Corpus,
    shard: usize,
    shards: usize,
    rt: &RuntimeConfig,
    cache: &PrepCache,
) -> ShardReport {
    // A shard is the special case of a partial solve whose range is the
    // static i-of-n slice — the same pipeline serves both.
    let part = solve_range_with_cache(corpus, corpus.shard_range(shard, shards), rt, cache);
    ShardReport {
        shard,
        shards,
        corpus_jobs: part.corpus_jobs,
        jobs: part.jobs,
        aggregator: part.aggregator,
        cache: part.cache,
        workers: part.workers,
        peak_buffered: part.peak_buffered,
        wall: part.wall,
        prep: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_report(shard: usize, wall: Duration, workers: usize) -> ShardReport {
        ShardReport {
            shard,
            shards: 4,
            corpus_jobs: 8,
            jobs: 0,
            aggregator: BatchAggregator::new(),
            cache: CacheStats {
                families: 1,
                entries: 2,
                bytes: 100,
                hits: 10,
                misses: 5,
                evictions: 1,
            },
            workers,
            peak_buffered: workers,
            wall,
            prep: None,
        }
    }

    /// Pins the documented merge semantics: wall time and concurrency
    /// telemetry take per-shard **maxima** (shards run concurrently, so
    /// the merged wall is the critical path, never the sum), while cache
    /// counters sum fieldwise.
    #[test]
    fn merge_takes_per_shard_wall_maximum() {
        let mut merged = bare_report(2, Duration::from_micros(300), 2);
        merged.merge(bare_report(1, Duration::from_micros(700), 5));
        merged.merge(bare_report(3, Duration::from_micros(400), 3));

        assert_eq!(
            merged.wall,
            Duration::from_micros(700),
            "merged wall is the slowest shard, not the 1400µs sum"
        );
        assert_eq!(merged.workers, 5, "workers take the maximum");
        assert_eq!(merged.peak_buffered, 5, "peak_buffered takes the maximum");
        assert_eq!(merged.shard, 1, "merged index is the smallest");
        assert_eq!(merged.cache.hits, 30, "cache counters sum");
        assert_eq!(merged.cache.misses, 15);
        assert_eq!(merged.cache.evictions, 3);
    }
}
