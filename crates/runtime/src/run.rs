//! The batch driver: fan a corpus out across a worker pool.

use crate::cache::PrepCache;
use crate::corpus::{Corpus, Job};
use crate::report::{BatchReport, JobResult};
use dapc_core::engine;
use dapc_core::prep::SubsetSolver;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use threadpool::ThreadPool;

/// How a batch is executed. Orthogonal to *what* is solved: no
/// [`RuntimeConfig`] choice changes any job's `(key, report)` outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads (default 1 = run jobs inline on the caller).
    pub jobs: usize,
    /// Whether to share prep caches across jobs of one instance family
    /// (default `true`).
    pub prep_cache: bool,
    /// Whether to compute a reference optimum per instance so the report
    /// can aggregate approximation ratios (default `true`).
    pub reference_optima: bool,
    /// Worker threads for the preparation step *inside each job*.
    /// Orthogonal to `jobs`: `jobs` parallelises across the corpus,
    /// `prep_workers` shards one large instance's exact subset solves.
    /// Values above 1 override each job's `SolveConfig::prep_workers`;
    /// the default (1) leaves whatever the corpus's `base_config` set.
    /// Like every other runtime knob it never changes a job's
    /// `(key, report)` outcome — preparation output is byte-identical at
    /// any worker count.
    pub prep_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            jobs: 1,
            prep_cache: true,
            reference_optima: true,
            prep_workers: 1,
        }
    }
}

impl RuntimeConfig {
    /// Starts from the defaults (sequential, caching, with reference
    /// optima).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (clamped to at least 1 at execution).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables the shared prep cache.
    pub fn prep_cache(mut self, on: bool) -> Self {
        self.prep_cache = on;
        self
    }

    /// Enables or disables the per-instance reference optima (and with
    /// them the ratio columns of the report).
    pub fn reference_optima(mut self, on: bool) -> Self {
        self.reference_optima = on;
        self
    }

    /// Shards each job's preparation step across `workers` threads
    /// (clamped to at least 1 at execution). Most useful for corpora of
    /// few, large instances, where across-job parallelism alone cannot
    /// fill the machine.
    pub fn prep_workers(mut self, workers: usize) -> Self {
        self.prep_workers = workers;
        self
    }
}

/// Solves every job of `corpus` under `rt` with a fresh [`PrepCache`].
///
/// Results come back in the corpus's canonical order and are
/// byte-identical to sequential execution (`jobs = 1`) at any worker
/// count: each job draws its randomness from an RNG derived from its own
/// key, and cached subset solves are deterministic.
pub fn solve_many(corpus: &Corpus, rt: &RuntimeConfig) -> BatchReport {
    solve_many_with_cache(corpus, rt, &PrepCache::new())
}

/// [`solve_many`] against a caller-owned [`PrepCache`], so the memo stays
/// warm across successive batches over the same instance families.
pub fn solve_many_with_cache(
    corpus: &Corpus,
    rt: &RuntimeConfig,
    cache: &PrepCache,
) -> BatchReport {
    let start = Instant::now();
    let jobs = corpus.jobs();
    let workers = rt.jobs.max(1);
    let use_cache = rt.prep_cache;

    let prep_workers = rt.prep_workers.max(1);

    let results: Vec<JobResult> = if workers == 1 {
        jobs.into_iter()
            .map(|job| run_job(job, use_cache, cache, prep_workers))
            .collect()
    } else {
        let pool = ThreadPool::new(workers);
        let slots: Arc<Mutex<Vec<Option<JobResult>>>> =
            Arc::new(Mutex::new((0..jobs.len()).map(|_| None).collect()));
        for job in jobs {
            let slots = Arc::clone(&slots);
            let cache = cache.clone();
            pool.execute(move || {
                let index = job.index;
                let result = run_job(job, use_cache, &cache, prep_workers);
                slots.lock().expect("result slots")[index] = Some(result);
            });
        }
        pool.join();
        Arc::try_unwrap(slots)
            .expect("pool joined, no worker holds the slots")
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|slot| slot.expect("every job filled its slot"))
            .collect()
    };

    // Reference optima, one exact solve per instance. Routed through the
    // family cache so a batch that already ran `bnb` gets them for free.
    let mut optima: HashMap<String, (u64, bool)> = HashMap::new();
    if rt.reference_optima {
        for inst in &corpus.instances {
            let full = vec![true; inst.ilp.n()];
            let budget = corpus.base.budget;
            let mut solver = if use_cache {
                SubsetSolver::with_shared(&inst.ilp, budget, cache.family(&inst.ilp, &budget))
            } else {
                SubsetSolver::new(&inst.ilp, budget)
            };
            let (opt, _, exact) = solver.solve_mask(&full, None);
            optima.insert(inst.name.clone(), (opt, exact));
        }
    }

    let (groups, backends) = BatchReport::summarise(&results, |name| optima.get(name).copied());
    BatchReport {
        results,
        groups,
        backends,
        cache: cache.stats(),
        workers,
        wall: start.elapsed(),
    }
}

fn run_job(job: Job, use_cache: bool, cache: &PrepCache, prep_workers: usize) -> JobResult {
    let Job {
        key, ilp, mut cfg, ..
    } = job;
    if use_cache {
        cfg.prep_cache = Some(cache.family(&ilp, &cfg.budget));
    }
    // Like `prep_cache`, the runtime knob only adds to the corpus's own
    // configuration: a `RuntimeConfig` left at the default (1) must not
    // silently reset a `prep_workers` the corpus set via `base_config`.
    if prep_workers > 1 {
        cfg.prep_workers = prep_workers;
    }
    let timer = Instant::now();
    let report =
        engine::solve(&key.backend, &ilp, &cfg).expect("corpus build validated every backend key");
    JobResult {
        key,
        report,
        micros: timer.elapsed().as_micros() as u64,
    }
}
