//! The batch driver: stream a corpus through the process-wide executor.
//!
//! [`solve_many_streaming`] is the core pipeline: `min(jobs, |corpus|)`
//! pump tasks on the shared `dapc_exec` pool claim jobs from an atomic
//! cursor, and finished results flow through a **bounded reorder buffer**
//! that restores the corpus's canonical order before feeding an online
//! [`BatchAggregator`] and the caller's `on_result` hook — so a corpus
//! never has to fit its full report vector in one process.
//! [`solve_many`] is a thin wrapper that collects the per-job results
//! into the familiar [`BatchReport`].
//!
//! When a job's own preparation step shards (`prep_workers > 1`), its
//! subset solves are submitted to the *same* executor pool the job runs
//! on — never a child pool — so `jobs × prep_workers` beyond the pool
//! size degrades into queueing (with the scope owner helping inline)
//! instead of oversubscribing the machine.

use crate::cache::PrepCache;
use crate::corpus::{Corpus, Job};
use crate::report::{BatchAggregator, BatchReport, JobResult, StreamReport};
use dapc_core::engine;
use dapc_core::prep::SubsetSolver;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cached registry handles for the streaming pipeline. Every recording
/// site gates on [`dapc_obs::enabled`], so the disabled path costs one
/// relaxed load; nothing here can change a job's `(key, report)`.
mod metrics {
    use dapc_obs::{Counter, Histogram};
    use std::sync::OnceLock;

    /// Reorder-buffer occupancy right after a result parks.
    pub fn reorder_occupancy() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("runtime.stream.reorder_occupancy"))
    }

    /// Wall microseconds of one job's solve (queueing excluded).
    pub fn job_wall() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("runtime.job.wall_micros"))
    }

    /// Busy microseconds of one pump task over its whole run; against
    /// `runtime.stream.wall_micros` × pump count this yields pump
    /// utilisation.
    pub fn pump_busy() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("runtime.stream.pump_busy_micros"))
    }

    /// Wall microseconds of one `stream_jobs` pipeline run.
    pub fn stream_wall() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("runtime.stream.wall_micros"))
    }

    /// Jobs fed through the streaming pipeline.
    pub fn stream_jobs() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("runtime.stream.jobs"))
    }
}

/// How a batch is executed. Orthogonal to *what* is solved: no
/// [`RuntimeConfig`] choice changes any job's `(key, report)` outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Maximum concurrently running jobs (default 1 = run jobs inline on
    /// the caller). Above 1, that many pump tasks share the process-wide
    /// `dapc_exec` pool — no private pool is spawned.
    pub jobs: usize,
    /// Whether to share prep caches across jobs of one instance family
    /// (default `true`).
    pub prep_cache: bool,
    /// Whether to compute a reference optimum per instance so the report
    /// can aggregate approximation ratios (default `true`).
    pub reference_optima: bool,
    /// Concurrency cap for the preparation step *inside each job*.
    /// Orthogonal to `jobs`: `jobs` parallelises across the corpus,
    /// `prep_workers` shards one large instance's exact subset solves —
    /// both on the same shared executor. Values above 1 override each
    /// job's `SolveConfig::prep_workers`; the default (1) leaves whatever
    /// the corpus's `base_config` set. Like every other runtime knob it
    /// never changes a job's `(key, report)` outcome — preparation output
    /// is byte-identical at any worker count.
    pub prep_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            jobs: 1,
            prep_cache: true,
            reference_optima: true,
            prep_workers: 1,
        }
    }
}

impl RuntimeConfig {
    /// Starts from the defaults (sequential, caching, with reference
    /// optima).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the concurrent-job cap (clamped to at least 1 at execution).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables the shared prep cache.
    pub fn prep_cache(mut self, on: bool) -> Self {
        self.prep_cache = on;
        self
    }

    /// Enables or disables the per-instance reference optima (and with
    /// them the ratio columns of the report).
    pub fn reference_optima(mut self, on: bool) -> Self {
        self.reference_optima = on;
        self
    }

    /// Shards each job's preparation step across up to `workers`
    /// executor slots (clamped to at least 1 at execution). Most useful
    /// for corpora of few, large instances, where across-job parallelism
    /// alone cannot fill the machine.
    pub fn prep_workers(mut self, workers: usize) -> Self {
        self.prep_workers = workers;
        self
    }
}

/// Solves every job of `corpus` under `rt` with a fresh [`PrepCache`].
///
/// Results come back in the corpus's canonical order and are
/// byte-identical to sequential execution (`jobs = 1`) at any worker
/// count: each job draws its randomness from an RNG derived from its own
/// key, and cached subset solves are deterministic.
pub fn solve_many(corpus: &Corpus, rt: &RuntimeConfig) -> BatchReport {
    solve_many_with_cache(corpus, rt, &PrepCache::new())
}

/// [`solve_many`] against a caller-owned [`PrepCache`], so the memo stays
/// warm across successive batches over the same instance families.
///
/// A thin wrapper over [`solve_many_streaming_with_cache`] whose
/// `on_result` hook collects every job into the returned
/// [`BatchReport`]'s result vector.
pub fn solve_many_with_cache(
    corpus: &Corpus,
    rt: &RuntimeConfig,
    cache: &PrepCache,
) -> BatchReport {
    let results = Arc::new(Mutex::new(Vec::with_capacity(corpus.len())));
    let sink = Arc::clone(&results);
    let stream = solve_many_streaming_with_cache(corpus, rt, cache, move |r: JobResult| {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        sink.lock().expect("batch result sink").push(r);
    });
    let results = Arc::try_unwrap(results)
        // dapc-allow(panic): the streaming call returned, so the hook (the only other holder) is dropped
        .expect("streaming returned, the hook was dropped")
        .into_inner()
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        .expect("batch result sink");
    BatchReport {
        results,
        groups: stream.groups,
        backends: stream.backends,
        cache: stream.cache,
        workers: stream.workers,
        wall: stream.wall,
    }
}

/// Streams every job of `corpus` through `on_result` with a fresh
/// [`PrepCache`], keeping only the online aggregation in memory.
///
/// The hook receives each [`JobResult`] by value exactly once, **in the
/// corpus's canonical order** (a bounded reorder buffer restores it
/// under parallel execution); nothing is retained after the call, so
/// memory stays proportional to the reorder window, not the corpus. The
/// hook runs on whichever thread finished the delivering job, one call
/// at a time. A panicking job (or hook) fails the batch — the panic is
/// re-raised on the caller after every in-flight job winds down.
///
/// Every `(key, report)` the hook sees is byte-identical to what
/// sequential execution produces, at any `jobs`/`prep_workers` setting.
///
/// # Examples
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
/// use dapc_runtime::{solve_many_streaming, Corpus, RuntimeConfig};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let corpus = Corpus::builder()
///     .instance(
///         "MIS/cycle16",
///         problems::max_independent_set_unweighted(&gen::cycle(16)),
///     )
///     .backend("three-phase")
///     .eps(0.3)
///     .seeds(0..4)
///     .build();
/// // Stream at 4 concurrent jobs; count feasible seeds without ever
/// // holding the per-job reports.
/// let feasible = Arc::new(AtomicUsize::new(0));
/// let seen = Arc::clone(&feasible);
/// let stream = solve_many_streaming(&corpus, &RuntimeConfig::new().jobs(4), move |r| {
///     if r.report.feasible() {
///         seen.fetch_add(1, Ordering::Relaxed);
///     }
/// });
/// assert_eq!(stream.jobs, 4);
/// assert_eq!(feasible.load(Ordering::Relaxed), 4);
/// // The aggregation still came back — without the result vector.
/// assert_eq!(stream.groups.len(), 1);
/// assert!(stream.groups[0].meets_guarantee());
/// ```
pub fn solve_many_streaming<F>(corpus: &Corpus, rt: &RuntimeConfig, on_result: F) -> StreamReport
where
    F: FnMut(JobResult) + Send + 'static,
{
    solve_many_streaming_with_cache(corpus, rt, &PrepCache::new(), on_result)
}

/// [`solve_many_streaming`] against a caller-owned [`PrepCache`].
pub fn solve_many_streaming_with_cache<F>(
    corpus: &Corpus,
    rt: &RuntimeConfig,
    cache: &PrepCache,
    on_result: F,
) -> StreamReport
where
    F: FnMut(JobResult) + Send + 'static,
{
    // dapc-allow(wall-clock): wall-time report field; timings are excluded from report identity
    let start = Instant::now();
    let jobs = corpus.jobs();
    let n = jobs.len();

    // Reference optima come first: the online aggregator folds each
    // job's ratio as it is delivered, which needs the cell's optimum up
    // front. The lookups route through the family cache exactly like job
    // lookups, so for an unbounded cache the hit/miss totals match the
    // legacy collect-then-aggregate path (which solved them last) — only
    // the order of the counter events moves.
    let optima = if rt.reference_optima {
        reference_optima(corpus, None, rt.prep_cache, cache)
    } else {
        BTreeMap::new()
    };
    let aggregator = BatchAggregator::with_optima(optima);
    let (aggregator, pumps, peak_buffered) = stream_jobs(jobs, aggregator, rt, cache, on_result);

    let (groups, backends) = aggregator.finish();
    StreamReport {
        jobs: n,
        groups,
        backends,
        cache: cache.stats(),
        workers: pumps,
        peak_buffered,
        wall: start.elapsed(),
    }
}

/// The shared pump pipeline behind [`solve_many_streaming_with_cache`]
/// and [`crate::solve_shard`]: runs `jobs` (any contiguous slice of a
/// corpus, in canonical order) through `min(rt.jobs, |jobs|)` pump tasks
/// and the reorder buffer, feeding `aggregator` and `on_result` in
/// order. Returns the fed aggregator, the pump count, and the reorder
/// buffer's high-water mark.
pub(crate) fn stream_jobs<F>(
    jobs: Vec<Job>,
    aggregator: BatchAggregator,
    rt: &RuntimeConfig,
    cache: &PrepCache,
    on_result: F,
) -> (BatchAggregator, usize, usize)
where
    F: FnMut(JobResult) + Send + 'static,
{
    let n = jobs.len();
    let use_cache = rt.prep_cache;
    let prep_workers = rt.prep_workers.max(1);
    let pumps = rt.jobs.max(1).min(n).max(1);
    // dapc-allow(wall-clock): stream-stage telemetry only, gated on dapc_obs::enabled
    let stream_started = dapc_obs::enabled().then(Instant::now);
    let finish = |out| {
        if let Some(started) = stream_started {
            metrics::stream_wall().observe_micros(started.elapsed());
            metrics::stream_jobs().add(n as u64);
        }
        out
    };
    if pumps == 1 {
        let mut aggregator = aggregator;
        let mut on_result = on_result;
        for job in jobs {
            let result = run_job(job, use_cache, cache, prep_workers);
            aggregator.push(&result);
            on_result(result);
        }
        return finish((aggregator, 1, 0));
    }
    let delivery = Arc::new(Delivery::new(
        aggregator,
        on_result,
        reorder_capacity(pumps),
    ));
    let jobs = Arc::new(jobs);
    let cursor = Arc::new(AtomicUsize::new(0));
    dapc_exec::scope(|s| {
        for _ in 0..pumps {
            let delivery = Arc::clone(&delivery);
            let jobs = Arc::clone(&jobs);
            let cursor = Arc::clone(&cursor);
            let cache = cache.clone();
            s.spawn(move || {
                // dapc-allow(wall-clock): pump telemetry only, gated on dapc_obs::enabled
                let pump_started = dapc_obs::enabled().then(Instant::now);
                loop {
                    if delivery.is_poisoned() {
                        break;
                    }
                    // ordering: Relaxed — pump cursor only claims unique job indices; results reorder downstream
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else {
                        break;
                    };
                    let job = job.clone();
                    match catch_unwind(AssertUnwindSafe(|| {
                        run_job(job, use_cache, &cache, prep_workers)
                    })) {
                        Ok(result) => delivery.submit(index, result),
                        Err(payload) => {
                            // A job died: its index will never be
                            // delivered, so in-order delivery can no
                            // longer advance. Poison the pipeline so
                            // every pump (parked or not) winds down,
                            // then let the scope re-raise the panic.
                            delivery.poison();
                            resume_unwind(payload);
                        }
                    }
                }
                if let Some(started) = pump_started {
                    metrics::pump_busy().observe_micros(started.elapsed());
                }
            });
        }
    });
    let (aggregator, peak) = Arc::try_unwrap(delivery)
        .ok()
        // dapc-allow(panic): the worker scope has joined, so no pump still holds the delivery
        .expect("scope joined, no pump holds the delivery")
        .into_parts();
    finish((aggregator, pumps, peak))
}

/// Reference optima, one exact solve per instance, routed through the
/// family cache so a batch that already ran `bnb` gets them for free.
/// `only` restricts the solves to a subset of instance names (the
/// instances a shard actually touches); `None` covers the whole corpus.
pub(crate) fn reference_optima(
    corpus: &Corpus,
    only: Option<&std::collections::BTreeSet<&str>>,
    use_cache: bool,
    cache: &PrepCache,
) -> BTreeMap<String, (u64, bool)> {
    let mut optima = BTreeMap::new();
    for inst in &corpus.instances {
        if only.is_some_and(|names| !names.contains(inst.name.as_str())) {
            continue;
        }
        let full = vec![true; inst.ilp.n()];
        let budget = corpus.base.budget;
        let mut solver = if use_cache {
            SubsetSolver::with_shared(&inst.ilp, budget, cache.family(&inst.ilp, &budget))
        } else {
            SubsetSolver::new(&inst.ilp, budget)
        };
        let (opt, _, exact) = solver.solve_mask(&full, None);
        optima.insert(inst.name.clone(), (opt, exact));
    }
    optima
}

/// How many out-of-order results may be parked at once: enough that the
/// pumps rarely stall, small enough that streaming memory stays
/// proportional to the worker count, never the corpus.
///
/// The bound is **inclusive**: [`Delivery::submit`]'s admission check
/// (`parked.len() < capacity`) parks a result only while the buffer is
/// below capacity, so `peak_buffered` can *reach* `max(2·pumps, 16)` but
/// never exceed it (audited; pinned by an assertion in the streaming
/// tests). Parked results are not the whole streaming footprint, though:
/// a submitter blocked on a full buffer keeps its own finished result in
/// hand, so up to `capacity + pumps − 1` finished results can exist at
/// once — still proportional to the worker count, never the corpus.
fn reorder_capacity(pumps: usize) -> usize {
    (2 * pumps).max(16)
}

/// The in-order delivery stage: a bounded reorder buffer in front of the
/// aggregator and the caller's hook.
///
/// `submit` never blocks for the next-expected index, and a blocked
/// submitter holds no executor resources besides its pump slot; since
/// pumps claim job indices in increasing order, the pump owning the
/// next-expected job is never the one blocked — so the pipeline cannot
/// deadlock, at any pool size.
///
/// When a job panics its index can never be delivered, so the pump
/// [`Delivery::poison`]s the pipeline first: parked submitters wake and
/// bail out, the other pumps stop claiming, and the executor scope
/// re-raises the original panic — a dead job fails the batch instead of
/// hanging it.
struct Delivery<F> {
    state: Mutex<DeliveryState<F>>,
    /// Signalled whenever in-order delivery advances (or the pipeline is
    /// poisoned).
    advanced: Condvar,
    capacity: usize,
}

struct DeliveryState<F> {
    /// Index the canonical order expects next.
    next: usize,
    /// Finished results waiting for an earlier job, keyed by job index.
    parked: BTreeMap<usize, JobResult>,
    peak: usize,
    /// A job panicked: in-order delivery can never complete, results are
    /// discarded and every pump winds down.
    poisoned: bool,
    aggregator: BatchAggregator,
    on_result: F,
}

impl<F: FnMut(JobResult)> Delivery<F> {
    fn new(aggregator: BatchAggregator, on_result: F, capacity: usize) -> Self {
        Delivery {
            state: Mutex::new(DeliveryState {
                next: 0,
                parked: BTreeMap::new(),
                peak: 0,
                poisoned: false,
                aggregator,
                on_result,
            }),
            advanced: Condvar::new(),
            capacity,
        }
    }

    /// Hands the finished `result` of job `index` over: delivered
    /// immediately when it is the next expected (draining any parked
    /// successors), parked while there is room, otherwise the submitter
    /// waits for the in-order frontier to advance. On a poisoned
    /// pipeline the result is discarded and the call returns at once.
    fn submit(&self, index: usize, result: JobResult) {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let mut st = self.state.lock().expect("delivery lock");
        let mut slot = Some(result);
        loop {
            if st.poisoned {
                return;
            }
            if index == st.next {
                // dapc-allow(panic): the slot is refilled before every loop iteration that can reach this take
                let result = slot.take().expect("result still in hand");
                // The aggregator or the caller's hook may panic; that
                // still has to poison the pipeline (and wake parked
                // submitters) or the batch would hang instead of
                // failing. Catching here also keeps the mutex itself
                // unpoisoned, so the wound-down pumps exit cleanly.
                let delivered = catch_unwind(AssertUnwindSafe(|| {
                    st.emit(result);
                    loop {
                        let next = st.next;
                        match st.parked.remove(&next) {
                            Some(parked) => st.emit(parked),
                            None => break,
                        }
                    }
                }));
                if let Err(payload) = delivered {
                    st.poisoned = true;
                    drop(st);
                    self.advanced.notify_all();
                    resume_unwind(payload);
                }
                drop(st);
                self.advanced.notify_all();
                return;
            }
            if st.parked.len() < self.capacity {
                st.parked
                    // dapc-allow(panic): the slot is refilled before every loop iteration that can reach this take
                    .insert(index, slot.take().expect("result still in hand"));
                st.peak = st.peak.max(st.parked.len());
                if dapc_obs::enabled() {
                    metrics::reorder_occupancy().observe(st.parked.len() as u64);
                }
                return;
            }
            // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
            st = self.advanced.wait(st).expect("delivery lock");
        }
    }

    /// Marks the pipeline dead after a job panic and wakes every parked
    /// submitter so the batch fails fast instead of hanging.
    fn poison(&self) {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        self.state.lock().expect("delivery lock").poisoned = true;
        self.advanced.notify_all();
    }

    fn is_poisoned(&self) -> bool {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        self.state.lock().expect("delivery lock").poisoned
    }

    fn into_parts(self) -> (BatchAggregator, usize) {
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let st = self.state.into_inner().expect("delivery lock");
        debug_assert!(
            st.poisoned || st.parked.is_empty(),
            "undelivered results left parked"
        );
        (st.aggregator, st.peak)
    }
}

impl<F: FnMut(JobResult)> DeliveryState<F> {
    fn emit(&mut self, result: JobResult) {
        self.aggregator.push(&result);
        (self.on_result)(result);
        self.next += 1;
    }
}

fn run_job(job: Job, use_cache: bool, cache: &PrepCache, prep_workers: usize) -> JobResult {
    let Job {
        key, ilp, mut cfg, ..
    } = job;
    if use_cache {
        cfg.prep_cache = Some(cache.family(&ilp, &cfg.budget));
    }
    // Like `prep_cache`, the runtime knob only adds to the corpus's own
    // configuration: a `RuntimeConfig` left at the default (1) must not
    // silently reset a `prep_workers` the corpus set via `base_config`.
    if prep_workers > 1 {
        cfg.prep_workers = prep_workers;
    }
    // dapc-allow(wall-clock): per-job micros field; timings are excluded from report identity
    let timer = Instant::now();
    let report =
        // dapc-allow(panic): corpus construction already validated every backend key against the registry
        engine::solve(&key.backend, &ilp, &cfg).expect("corpus build validated every backend key");
    let micros = timer.elapsed().as_micros() as u64;
    if dapc_obs::enabled() {
        metrics::job_wall().observe(micros);
    }
    JobResult {
        key,
        report,
        micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::JobKey;

    fn sample_result() -> JobResult {
        let ilp = dapc_ilp::problems::max_independent_set_unweighted(&dapc_graph::gen::cycle(6));
        let report = engine::solve("greedy", &ilp, &dapc_core::engine::SolveConfig::new())
            .expect("greedy is registered");
        JobResult {
            key: JobKey {
                instance: "i".into(),
                backend: "greedy".into(),
                eps: 0.3,
                seed: 0,
            },
            report,
            micros: 0,
        }
    }

    /// The job-panic path: a submitter blocked on a full reorder buffer
    /// (its index cannot be delivered because an earlier one is missing)
    /// must wake and bail out when the pipeline is poisoned — before the
    /// poison flag existed, it waited on `advanced` forever and the batch
    /// hung instead of failing.
    #[test]
    fn poison_releases_parked_submitters() {
        let delivery = Arc::new(Delivery::new(BatchAggregator::new(), |_r: JobResult| {}, 1));
        let submitter = Arc::clone(&delivery);
        let blocked = std::thread::spawn(move || {
            submitter.submit(1, sample_result()); // parks (capacity 1)
            submitter.submit(2, sample_result()); // full buffer: blocks
        });
        // Whether the poison lands before, between or after the submits,
        // the submitter thread must wind down instead of hanging.
        std::thread::sleep(std::time::Duration::from_millis(20));
        delivery.poison();
        blocked.join().expect("parked submitter winds down");
        assert!(delivery.is_poisoned());
        let (aggregator, _) = Arc::try_unwrap(delivery)
            .ok()
            .expect("submitter done")
            .into_parts();
        assert_eq!(aggregator.jobs(), 0, "nothing was ever deliverable");
    }

    /// The hook-panic path: a panic inside `on_result` (or the
    /// aggregator) must poison the pipeline and wake parked submitters
    /// just like a job panic — before the delivering `emit` was wrapped,
    /// the panic left the flag unset and blocked pumps slept forever.
    #[test]
    fn hook_panic_poisons_and_releases_parked_submitters() {
        let delivery = Arc::new(Delivery::new(
            BatchAggregator::new(),
            |_r: JobResult| panic!("hook boom"),
            1,
        ));
        delivery.submit(1, sample_result()); // parks (capacity 1)
        let submitter = Arc::clone(&delivery);
        let blocked = std::thread::spawn(move || {
            submitter.submit(2, sample_result()); // full buffer: blocks
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Delivering the next-expected index runs the panicking hook.
        let delivering = Arc::clone(&delivery);
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            delivering.submit(0, sample_result());
        }));
        assert!(outcome.is_err(), "the hook panic must re-raise");
        blocked.join().expect("parked submitter winds down");
        assert!(delivery.is_poisoned());
    }
}
