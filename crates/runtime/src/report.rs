//! Batch results: per-job reports plus the per-group and per-backend
//! aggregation that used to be hand-rolled in `dapc-bench`.
//!
//! Aggregation is *online* since the streaming refactor: a
//! [`BatchAggregator`] consumes [`JobResult`]s one at a time in the
//! corpus's canonical order and folds the per-`(instance, backend, ε)`
//! and per-backend summaries incrementally, so
//! [`crate::solve_many_streaming`] never has to hold the full result
//! vector — [`crate::solve_many`] is a thin wrapper that still collects
//! one.

use crate::cache::CacheStats;
use crate::corpus::JobKey;
use dapc_core::engine::SolveReport;
use dapc_ilp::Sense;
use dapc_local::RoundCost;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// One job's outcome: its key, the engine report, and how long the job
/// took on its worker.
///
/// The `(key, report)` pair is a pure function of the corpus — it is
/// byte-identical across worker counts and cache configurations. The
/// timing is not, which is why it lives beside the report instead of
/// inside it.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Identity of the job.
    pub key: JobKey,
    /// The unified engine report.
    pub report: SolveReport,
    /// Wall-clock microseconds spent solving this job.
    pub micros: u64,
}

/// Aggregation over the seed sweep of one `(instance, backend, ε)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSummary {
    /// Instance name.
    pub instance: String,
    /// Backend registry key.
    pub backend: String,
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Whether the instance packs or covers.
    pub sense: Sense,
    /// Number of variables of the instance.
    pub vars: usize,
    /// Number of seeds aggregated.
    pub jobs: usize,
    /// Whether every seed produced a feasible assignment.
    pub feasible: bool,
    /// Reference optimum, when the runtime computed one.
    pub opt: Option<u64>,
    /// Whether the reference optimum was proven optimal.
    pub opt_exact: bool,
    /// Smallest objective value across seeds.
    pub min_value: u64,
    /// Largest objective value across seeds.
    pub max_value: u64,
    /// Mean objective value across seeds.
    pub mean_value: f64,
    /// `min value / opt` (packing's worst seed; needs a reference).
    pub min_ratio: Option<f64>,
    /// `max value / opt` (covering's worst seed; needs a reference).
    pub max_ratio: Option<f64>,
    /// Mean of `value / opt` across seeds.
    pub mean_ratio: Option<f64>,
    /// Charged LOCAL rounds of the last seed (the legacy table column).
    pub rounds_last: usize,
    /// Mean charged LOCAL rounds across seeds.
    pub mean_rounds: f64,
    /// Total wall-clock microseconds across the group's jobs.
    pub micros: u64,
}

impl GroupSummary {
    /// Whether the worst seed met the paper's guarantee: `≥ 1 − ε` of the
    /// optimum for packing, `≤ 1 + ε` of it for covering. `false` when no
    /// reference optimum is available.
    pub fn meets_guarantee(&self) -> bool {
        match self.sense {
            Sense::Packing => self.min_ratio.is_some_and(|r| r + 1e-9 >= 1.0 - self.eps),
            Sense::Covering => self.max_ratio.is_some_and(|r| r <= 1.0 + self.eps + 1e-9),
        }
    }
}

/// Roll-up of every group of one backend.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendSummary {
    /// Backend registry key.
    pub backend: String,
    /// Total jobs run by this backend.
    pub jobs: usize,
    /// Whether every job was feasible.
    pub feasible: bool,
    /// Worst packing seed across groups (`min value/opt`).
    pub min_ratio: Option<f64>,
    /// Worst covering seed across groups (`max value/opt`).
    pub max_ratio: Option<f64>,
    /// Job-weighted mean of `value / opt`.
    pub mean_ratio: Option<f64>,
    /// Job-weighted mean charged LOCAL rounds.
    pub mean_rounds: f64,
    /// Total wall-clock microseconds across the backend's jobs.
    pub micros: u64,
}

/// Everything [`crate::solve_many`] returns.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results in the corpus's canonical order — byte-identical
    /// across worker counts and cache configurations (timings aside).
    pub results: Vec<JobResult>,
    /// One summary per `(instance, backend, ε)` cell, in job order.
    pub groups: Vec<GroupSummary>,
    /// One roll-up per backend, in corpus backend order.
    pub backends: Vec<BackendSummary>,
    /// Aggregate prep-cache counters for the run.
    pub cache: CacheStats,
    /// Concurrent jobs (pump tasks) the batch actually ran with:
    /// `min(RuntimeConfig::jobs, corpus length)`.
    pub workers: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
}

impl BatchReport {
    /// The deterministic payload: every `(key, report)` pair in canonical
    /// order. Two batches over the same corpus are interchangeable iff
    /// their outcomes are equal, regardless of workers or caching.
    pub fn outcomes(&self) -> Vec<(&JobKey, &SolveReport)> {
        self.results.iter().map(|r| (&r.key, &r.report)).collect()
    }

    /// Looks a group up by cell coordinates (`eps` compared bit-exactly).
    pub fn group(&self, instance: &str, backend: &str, eps: f64) -> Option<&GroupSummary> {
        self.groups.iter().find(|g| {
            g.instance == instance && g.backend == backend && g.eps.to_bits() == eps.to_bits()
        })
    }

    /// A compact text rendering (one line per group plus cache totals).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>5} {:>6} {:>7} {:>7} {:>7} {:>8} {:>9}\n",
            "instance", "backend", "eps", "OPT", "worst r", "mean r", "ok", "rounds", "ms"
        ));
        for g in &self.groups {
            let worst = match g.sense {
                Sense::Packing => g.min_ratio,
                Sense::Covering => g.max_ratio,
            };
            out.push_str(&format!(
                "{:<24} {:>12} {:>5} {:>6} {:>7} {:>7} {:>7} {:>8} {:>9.1}\n",
                g.instance,
                g.backend,
                g.eps,
                g.opt
                    .map(|o| if g.opt_exact {
                        o.to_string()
                    } else {
                        format!("{o}*")
                    })
                    .unwrap_or_else(|| "-".into()),
                worst
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                g.mean_ratio
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                g.meets_guarantee(),
                g.rounds_last,
                g.micros as f64 / 1000.0,
            ));
        }
        out.push_str(&format!(
            "workers {} | wall {:.1?} | prep cache: {} families, {} entries, {} hits / {} misses (rate {:.2})\n",
            self.workers,
            self.wall,
            self.cache.families,
            self.cache.entries,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
        ));
        out
    }
}

/// Everything [`crate::solve_many_streaming`] returns: the aggregation of
/// a batch *without* its per-job result vector — jobs were handed to the
/// `on_result` hook in canonical order and dropped, so a corpus no longer
/// has to fit its full report vector in memory.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Number of jobs solved (and delivered to the hook).
    pub jobs: usize,
    /// One summary per `(instance, backend, ε)` cell, in job order.
    pub groups: Vec<GroupSummary>,
    /// One roll-up per backend, in corpus backend order.
    pub backends: Vec<BackendSummary>,
    /// Aggregate prep-cache counters for the run.
    pub cache: CacheStats,
    /// Concurrent jobs (pump tasks) the batch actually ran with:
    /// `min(RuntimeConfig::jobs, corpus length)`.
    pub workers: usize,
    /// High-water mark of the reorder buffer: the most out-of-order
    /// results parked at once while waiting for an earlier job. Bounded
    /// by the runtime's reorder capacity; `0` on the sequential path.
    pub peak_buffered: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
}

/// Online aggregation of [`JobResult`]s in canonical corpus order: the
/// incremental form of the summary tables [`BatchReport`] carries.
///
/// Feed every result exactly once via [`BatchAggregator::push`] —
/// **in canonical order** (the order [`crate::Corpus::jobs`] defines;
/// [`crate::solve_many_streaming`]'s reorder buffer guarantees it) — then
/// call [`BatchAggregator::finish`]. Because each cell's reference
/// optimum is fixed up front, every per-job fold matches the legacy
/// collect-then-aggregate arithmetic bit for bit.
#[derive(Debug, Default)]
pub struct BatchAggregator {
    optima: HashMap<String, (u64, bool)>,
    groups: Vec<GroupSummary>,
    /// Cells already opened, for the out-of-order guard — a set lookup
    /// per new cell, so huge streamed corpora stay O(cells), not
    /// O(cells²).
    seen_cells: HashSet<(String, String, u64)>,
    jobs: usize,
}

impl BatchAggregator {
    /// An aggregator with no reference optima (all ratio columns stay
    /// `None`).
    pub fn new() -> Self {
        Self::default()
    }

    /// An aggregator with per-instance reference optima
    /// (`name → (optimum, proven exact)`), enabling the ratio columns.
    pub fn with_optima(optima: HashMap<String, (u64, bool)>) -> Self {
        BatchAggregator {
            optima,
            ..Self::default()
        }
    }

    /// Results consumed so far.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Folds one result into its `(instance, backend, ε)` group.
    ///
    /// # Panics
    ///
    /// Panics if `r` re-opens a cell that was already closed — the
    /// telltale of out-of-order delivery.
    pub fn push(&mut self, r: &JobResult) {
        self.jobs += 1;
        let cell = (&r.key.instance, &r.key.backend, r.key.eps.to_bits());
        let matches = |g: &GroupSummary| (&g.instance, &g.backend, g.eps.to_bits()) == cell;
        if !self.groups.last().is_some_and(matches) {
            assert!(
                self.seen_cells.insert((
                    r.key.instance.clone(),
                    r.key.backend.clone(),
                    r.key.eps.to_bits()
                )),
                "result for {} delivered out of canonical order",
                r.key
            );
            let (opt, opt_exact) = match self.optima.get(&r.key.instance) {
                Some(&(o, e)) => (Some(o), e),
                None => (None, false),
            };
            self.groups.push(GroupSummary {
                instance: r.key.instance.clone(),
                backend: r.key.backend.clone(),
                eps: r.key.eps,
                sense: r.report.sense,
                vars: r.report.assignment.len(),
                jobs: 0,
                feasible: true,
                opt,
                opt_exact,
                min_value: u64::MAX,
                max_value: 0,
                mean_value: 0.0,
                min_ratio: None,
                max_ratio: None,
                mean_ratio: None,
                rounds_last: 0,
                mean_rounds: 0.0,
                micros: 0,
            });
        }
        let g = self.groups.last_mut().expect("group just ensured");
        g.jobs += 1;
        g.feasible &= r.report.feasible();
        g.min_value = g.min_value.min(r.report.value);
        g.max_value = g.max_value.max(r.report.value);
        g.mean_value += r.report.value as f64;
        if let Some(opt) = g.opt {
            let ratio = r.report.value as f64 / opt.max(1) as f64;
            g.min_ratio = Some(g.min_ratio.map_or(ratio, |m: f64| m.min(ratio)));
            g.max_ratio = Some(g.max_ratio.map_or(ratio, |m: f64| m.max(ratio)));
            g.mean_ratio = Some(g.mean_ratio.unwrap_or(0.0) + ratio);
        }
        g.rounds_last = r.report.rounds();
        g.mean_rounds += r.report.rounds() as f64;
        g.micros += r.micros;
    }

    /// Finalises the running sums into means and rolls the groups up per
    /// backend.
    pub fn finish(self) -> (Vec<GroupSummary>, Vec<BackendSummary>) {
        let mut groups = self.groups;
        for g in &mut groups {
            let jobs = g.jobs as f64;
            g.mean_value /= jobs;
            g.mean_rounds /= jobs;
            if let Some(sum) = g.mean_ratio {
                g.mean_ratio = Some(sum / jobs);
            }
        }

        let mut backends: Vec<BackendSummary> = Vec::new();
        for g in &groups {
            if !backends.iter().any(|b| b.backend == g.backend) {
                backends.push(BackendSummary {
                    backend: g.backend.clone(),
                    jobs: 0,
                    feasible: true,
                    min_ratio: None,
                    max_ratio: None,
                    mean_ratio: None,
                    mean_rounds: 0.0,
                    micros: 0,
                });
            }
            let b = backends
                .iter_mut()
                .find(|b| b.backend == g.backend)
                .expect("backend just ensured");
            b.jobs += g.jobs;
            b.feasible &= g.feasible;
            if let Some(r) = g.min_ratio {
                b.min_ratio = Some(b.min_ratio.map_or(r, |m: f64| m.min(r)));
            }
            if let Some(r) = g.max_ratio {
                b.max_ratio = Some(b.max_ratio.map_or(r, |m: f64| m.max(r)));
            }
            if let Some(r) = g.mean_ratio {
                b.mean_ratio = Some(b.mean_ratio.unwrap_or(0.0) + r * g.jobs as f64);
            }
            b.mean_rounds += g.mean_rounds * g.jobs as f64;
            b.micros += g.micros;
        }
        for b in &mut backends {
            let jobs = b.jobs as f64;
            b.mean_rounds /= jobs;
            if let Some(sum) = b.mean_ratio {
                b.mean_ratio = Some(sum / jobs);
            }
        }
        (groups, backends)
    }
}
