//! Batch results: per-job reports plus the per-group and per-backend
//! aggregation that used to be hand-rolled in `dapc-bench`.
//!
//! Aggregation is *online* since the streaming refactor: a
//! [`BatchAggregator`] consumes [`JobResult`]s one at a time in the
//! corpus's canonical order and folds the per-`(instance, backend, ε)`
//! and per-backend summaries incrementally, so
//! [`crate::solve_many_streaming`] never has to hold the full result
//! vector — [`crate::solve_many`] is a thin wrapper that still collects
//! one.
//!
//! Since the shard-merge refactor the aggregator is also *mergeable*:
//! every per-cell accumulator is kept in an exactly-mergeable form —
//! integer `(sum, count)` pairs for the means, min/max for the extrema,
//! per-shard maxima for the worst-seed phase counters — grouped into
//! **spans** of consecutive canonical job indices. N cooperating
//! processes each fold their contiguous slice of the corpus (see
//! [`crate::solve_shard`]), ship a versioned binary snapshot
//! ([`BatchAggregator::save_to`] / [`BatchAggregator::load_from`]), and
//! [`BatchAggregator::merge`] reassembles them into the *identical*
//! aggregation a single process would have produced: sums and extrema are
//! associative over the integers (no float fold depends on the shard
//! split — ratios and means are derived from the integer accumulators
//! only at [`BatchAggregator::finish`] time), and the one order-sensitive
//! column (`rounds_last`) follows the span with the later canonical
//! index. Merging is associative and commutative over disjoint job sets.

use crate::cache::CacheStats;
use crate::corpus::JobKey;
use crate::snap;
use dapc_core::engine::{BackendStats, SolveReport};
use dapc_ilp::Sense;
use dapc_local::RoundCost;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::time::Duration;

/// One job's outcome: its key, the engine report, and how long the job
/// took on its worker.
///
/// The `(key, report)` pair is a pure function of the corpus — it is
/// byte-identical across worker counts and cache configurations. The
/// timing is not, which is why it lives beside the report instead of
/// inside it.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Identity of the job.
    pub key: JobKey,
    /// The unified engine report.
    pub report: SolveReport,
    /// Wall-clock microseconds spent solving this job.
    pub micros: u64,
}

/// Worst-seed phase counters of one group, folded online so the
/// experiment tables never need the per-job result vector: each field is
/// the **maximum over the group's seeds** of the corresponding
/// [`BackendStats`] counter (packing and covering fill disjoint fields;
/// the reference backends touch none).
///
/// Maxima are associative and commutative, so shard merging reproduces
/// the single-process values exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Packing: variables deleted by carving + the Phase 3 decomposition
    /// (worst seed).
    pub deleted: usize,
    /// Packing: final components solved (worst seed).
    pub components: usize,
    /// Covering: weight fixed to one during carving (worst seed).
    pub fixed_weight: u64,
    /// Covering: hyperedges deleted by carving (worst seed).
    pub deleted_edges: usize,
}

impl GroupStats {
    fn fold(&mut self, stats: &BackendStats) {
        match stats {
            BackendStats::Packing(s) => {
                self.deleted = self.deleted.max(s.deleted_carving + s.deleted_phase3);
                self.components = self.components.max(s.components);
            }
            BackendStats::Covering(s) => {
                self.fixed_weight = self.fixed_weight.max(s.fixed_weight);
                self.deleted_edges = self.deleted_edges.max(s.deleted_edges);
            }
            BackendStats::Gkm { .. }
            | BackendStats::Ensemble { .. }
            | BackendStats::Centralised { .. } => {}
        }
    }

    fn absorb(&mut self, other: &GroupStats) {
        self.deleted = self.deleted.max(other.deleted);
        self.components = self.components.max(other.components);
        self.fixed_weight = self.fixed_weight.max(other.fixed_weight);
        self.deleted_edges = self.deleted_edges.max(other.deleted_edges);
    }
}

/// Aggregation over the seed sweep of one `(instance, backend, ε)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSummary {
    /// Instance name.
    pub instance: String,
    /// Backend registry key.
    pub backend: String,
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Whether the instance packs or covers.
    pub sense: Sense,
    /// Number of variables of the instance.
    pub vars: usize,
    /// Number of seeds aggregated.
    pub jobs: usize,
    /// Whether every seed produced a feasible assignment.
    pub feasible: bool,
    /// Reference optimum, when the runtime computed one.
    pub opt: Option<u64>,
    /// Whether the reference optimum was proven optimal.
    pub opt_exact: bool,
    /// Smallest objective value across seeds.
    pub min_value: u64,
    /// Largest objective value across seeds.
    pub max_value: u64,
    /// Mean objective value across seeds.
    pub mean_value: f64,
    /// `min value / opt` (packing's worst seed; needs a reference).
    pub min_ratio: Option<f64>,
    /// `max value / opt` (covering's worst seed; needs a reference).
    pub max_ratio: Option<f64>,
    /// Mean of `value / opt` across seeds.
    pub mean_ratio: Option<f64>,
    /// Charged LOCAL rounds of the last seed (the legacy table column).
    pub rounds_last: usize,
    /// Mean charged LOCAL rounds across seeds.
    pub mean_rounds: f64,
    /// Total wall-clock microseconds across the group's jobs.
    pub micros: u64,
    /// Worst-seed phase counters of the group's backend.
    pub stats: GroupStats,
}

impl GroupSummary {
    /// Whether the worst seed met the paper's guarantee: `≥ 1 − ε` of the
    /// optimum for packing, `≤ 1 + ε` of it for covering. `false` when no
    /// reference optimum is available.
    pub fn meets_guarantee(&self) -> bool {
        match self.sense {
            Sense::Packing => self.min_ratio.is_some_and(|r| r + 1e-9 >= 1.0 - self.eps),
            Sense::Covering => self.max_ratio.is_some_and(|r| r <= 1.0 + self.eps + 1e-9),
        }
    }
}

/// Roll-up of every group of one backend.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendSummary {
    /// Backend registry key.
    pub backend: String,
    /// Total jobs run by this backend.
    pub jobs: usize,
    /// Whether every job was feasible.
    pub feasible: bool,
    /// Worst packing seed across groups (`min value/opt`).
    pub min_ratio: Option<f64>,
    /// Worst covering seed across groups (`max value/opt`).
    pub max_ratio: Option<f64>,
    /// Job-weighted mean of `value / opt`.
    pub mean_ratio: Option<f64>,
    /// Job-weighted mean charged LOCAL rounds.
    pub mean_rounds: f64,
    /// Total wall-clock microseconds across the backend's jobs.
    pub micros: u64,
}

/// Everything [`crate::solve_many`] returns.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results in the corpus's canonical order — byte-identical
    /// across worker counts and cache configurations (timings aside).
    pub results: Vec<JobResult>,
    /// One summary per `(instance, backend, ε)` cell, in job order.
    pub groups: Vec<GroupSummary>,
    /// One roll-up per backend, in corpus backend order.
    pub backends: Vec<BackendSummary>,
    /// Aggregate prep-cache counters for the run.
    pub cache: CacheStats,
    /// Concurrent jobs (pump tasks) the batch actually ran with:
    /// `min(RuntimeConfig::jobs, corpus length)`.
    pub workers: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
}

impl BatchReport {
    /// The deterministic payload: every `(key, report)` pair in canonical
    /// order. Two batches over the same corpus are interchangeable iff
    /// their outcomes are equal, regardless of workers or caching.
    pub fn outcomes(&self) -> Vec<(&JobKey, &SolveReport)> {
        self.results.iter().map(|r| (&r.key, &r.report)).collect()
    }

    /// Looks a group up by cell coordinates (`eps` compared bit-exactly).
    pub fn group(&self, instance: &str, backend: &str, eps: f64) -> Option<&GroupSummary> {
        find_group(&self.groups, instance, backend, eps)
    }

    /// A compact text rendering (one line per group plus cache totals).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>5} {:>6} {:>7} {:>7} {:>7} {:>8} {:>9}\n",
            "instance", "backend", "eps", "OPT", "worst r", "mean r", "ok", "rounds", "ms"
        ));
        for g in &self.groups {
            let worst = match g.sense {
                Sense::Packing => g.min_ratio,
                Sense::Covering => g.max_ratio,
            };
            out.push_str(&format!(
                "{:<24} {:>12} {:>5} {:>6} {:>7} {:>7} {:>7} {:>8} {:>9.1}\n",
                g.instance,
                g.backend,
                g.eps,
                g.opt
                    .map(|o| if g.opt_exact {
                        o.to_string()
                    } else {
                        format!("{o}*")
                    })
                    .unwrap_or_else(|| "-".into()),
                worst
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                g.mean_ratio
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                g.meets_guarantee(),
                g.rounds_last,
                g.micros as f64 / 1000.0,
            ));
        }
        out.push_str(&format!(
            "workers {} | wall {:.1?} | prep cache: {} families, {} entries, {} hits / {} misses (rate {:.2})\n",
            self.workers,
            self.wall,
            self.cache.families,
            self.cache.entries,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
        ));
        out
    }
}

/// Everything [`crate::solve_many_streaming`] returns: the aggregation of
/// a batch *without* its per-job result vector — jobs were handed to the
/// `on_result` hook in canonical order and dropped, so a corpus no longer
/// has to fit its full report vector in memory.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Number of jobs solved (and delivered to the hook).
    pub jobs: usize,
    /// One summary per `(instance, backend, ε)` cell, in job order.
    pub groups: Vec<GroupSummary>,
    /// One roll-up per backend, in corpus backend order.
    pub backends: Vec<BackendSummary>,
    /// Aggregate prep-cache counters for the run.
    pub cache: CacheStats,
    /// Concurrent jobs (pump tasks) the batch actually ran with:
    /// `min(RuntimeConfig::jobs, corpus length)`.
    pub workers: usize,
    /// High-water mark of the reorder buffer: the most out-of-order
    /// results parked at once while waiting for an earlier job. At most
    /// the runtime's reorder capacity, `max(2·pumps, 16)` (the bound is
    /// inclusive — the admission check parks a result only while the
    /// buffer is *below* capacity); `0` on the sequential path. Note the
    /// buffer is not the whole streaming footprint: up to `pumps − 1`
    /// further finished results can be held in-hand by submitters blocked
    /// on a full buffer.
    pub peak_buffered: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
}

impl StreamReport {
    /// Looks a group up by cell coordinates (`eps` compared bit-exactly).
    pub fn group(&self, instance: &str, backend: &str, eps: f64) -> Option<&GroupSummary> {
        find_group(&self.groups, instance, backend, eps)
    }
}

fn find_group<'a>(
    groups: &'a [GroupSummary],
    instance: &str,
    backend: &str,
    eps: f64,
) -> Option<&'a GroupSummary> {
    groups.iter().find(|g| {
        g.instance == instance && g.backend == backend && g.eps.to_bits() == eps.to_bits()
    })
}

/// The exactly-mergeable accumulator of one `(instance, backend, ε)`
/// cell: integer sums and extrema only, so folding is associative — any
/// split of a cell's seed run into consecutive fragments recombines to
/// the same accumulator. Ratios and means are *derived* from these
/// integers at finish time; no float is folded per job.
#[derive(Clone, Debug, PartialEq)]
struct GroupAcc {
    instance: String,
    backend: String,
    eps: f64,
    sense: Sense,
    vars: usize,
    jobs: usize,
    feasible: bool,
    opt: Option<u64>,
    opt_exact: bool,
    min_value: u64,
    max_value: u64,
    /// Σ objective values (u128: immune to overflow on huge sweeps).
    value_sum: u128,
    /// Σ charged LOCAL rounds.
    rounds_sum: u64,
    /// Rounds of the group's last seed *in canonical order* — the one
    /// order-sensitive column; [`BatchAggregator::finish`] takes it from
    /// the fragment with the later canonical index.
    rounds_last: usize,
    micros: u64,
    stats: GroupStats,
}

impl GroupAcc {
    fn open(r: &JobResult, opt: Option<u64>, opt_exact: bool) -> Self {
        GroupAcc {
            instance: r.key.instance.clone(),
            backend: r.key.backend.clone(),
            eps: r.key.eps,
            sense: r.report.sense,
            vars: r.report.assignment.len(),
            jobs: 0,
            feasible: true,
            opt,
            opt_exact,
            min_value: u64::MAX,
            max_value: 0,
            value_sum: 0,
            rounds_sum: 0,
            rounds_last: 0,
            micros: 0,
            stats: GroupStats::default(),
        }
    }

    fn fold(&mut self, r: &JobResult) {
        self.jobs += 1;
        self.feasible &= r.report.feasible();
        self.min_value = self.min_value.min(r.report.value);
        self.max_value = self.max_value.max(r.report.value);
        self.value_sum += u128::from(r.report.value);
        self.rounds_sum += r.report.rounds() as u64;
        self.rounds_last = r.report.rounds();
        self.micros += r.micros;
        self.stats.fold(&r.report.stats);
    }

    fn cell(&self) -> (&str, &str, u64) {
        (&self.instance, &self.backend, self.eps.to_bits())
    }

    /// Folds `later` — the same cell's fragment from the next span in
    /// canonical order — into this accumulator.
    fn absorb(&mut self, later: GroupAcc) {
        debug_assert_eq!(self.cell(), later.cell());
        assert_eq!(
            (self.sense, self.vars, self.opt, self.opt_exact),
            (later.sense, later.vars, later.opt, later.opt_exact),
            "shards disagree on cell {}/{}/eps{}",
            self.instance,
            self.backend,
            self.eps,
        );
        self.jobs += later.jobs;
        self.feasible &= later.feasible;
        self.min_value = self.min_value.min(later.min_value);
        self.max_value = self.max_value.max(later.max_value);
        self.value_sum += later.value_sum;
        self.rounds_sum += later.rounds_sum;
        self.rounds_last = later.rounds_last;
        self.micros += later.micros;
        self.stats.absorb(&later.stats);
    }

    fn finish(self) -> GroupSummary {
        let jobs = self.jobs as f64;
        let (min_ratio, max_ratio, mean_ratio) = match self.opt {
            // Ratios derive from the integer accumulators only here, so
            // they are independent of how the seed run was sharded.
            // `min(vᵢ)/opt = min(vᵢ/opt)` exactly: correctly-rounded
            // division by a positive constant is monotone.
            Some(opt) => {
                let opt = opt.max(1) as f64;
                (
                    Some(self.min_value as f64 / opt),
                    Some(self.max_value as f64 / opt),
                    Some(self.value_sum as f64 / opt / jobs),
                )
            }
            None => (None, None, None),
        };
        GroupSummary {
            instance: self.instance,
            backend: self.backend,
            eps: self.eps,
            sense: self.sense,
            vars: self.vars,
            jobs: self.jobs,
            feasible: self.feasible,
            opt: self.opt,
            opt_exact: self.opt_exact,
            min_value: self.min_value,
            max_value: self.max_value,
            mean_value: self.value_sum as f64 / jobs,
            min_ratio,
            max_ratio,
            mean_ratio,
            rounds_last: self.rounds_last,
            mean_rounds: self.rounds_sum as f64 / jobs,
            micros: self.micros,
            stats: self.stats,
        }
    }
}

/// One run of consecutive canonical job indices and its per-cell
/// accumulators, in delivery order.
#[derive(Clone, Debug, PartialEq)]
struct Span {
    /// Canonical index of the span's first job.
    start: usize,
    /// Jobs folded into the span.
    len: usize,
    groups: Vec<GroupAcc>,
}

impl Span {
    fn end(&self) -> usize {
        self.start + self.len
    }

    fn overlaps(&self, other: &Span) -> bool {
        self.len > 0 && other.len > 0 && self.start < other.end() && other.start < self.end()
    }
}

/// Online aggregation of [`JobResult`]s in canonical corpus order: the
/// incremental form of the summary tables [`BatchReport`] carries — and
/// the unit that multi-process sharding snapshots, ships, and merges.
///
/// Feed every result exactly once via [`BatchAggregator::push`] —
/// **in canonical order** (the order [`crate::Corpus::jobs`] defines;
/// [`crate::solve_many_streaming`]'s reorder buffer guarantees it) — then
/// call [`BatchAggregator::finish`]. A shard aggregator starts at its
/// slice's first canonical index ([`BatchAggregator::with_optima_at`])
/// and is recombined with [`BatchAggregator::merge`]; because every
/// accumulator is integer-exact and order-insensitive (see the module
/// docs), the merged aggregation equals the single-process one bit for
/// bit, timings aside.
#[derive(Debug)]
pub struct BatchAggregator {
    optima: BTreeMap<String, (u64, bool)>,
    /// Disjoint spans of consecutive canonical indices. The span at
    /// index 0 is the *live* span [`BatchAggregator::push`] extends;
    /// merged-in spans follow in arrival order and are sorted at finish,
    /// which is what makes [`BatchAggregator::merge`] commutative.
    spans: Vec<Span>,
    /// Cells already closed in the live span, for the out-of-order
    /// guard — a set lookup per new cell, so huge streamed corpora stay
    /// O(cells), not O(cells²).
    seen_cells: BTreeSet<(String, String, u64)>,
}

/// Magic + version prefix of the aggregator snapshot format: seven
/// identifying bytes and a format version byte. The body is the optima
/// table (`count · (name · optimum · exact)*`, names sorted), the
/// `start: u64` canonical index the aggregation begins at (meaningful
/// for still-empty shard aggregators, whose offset must survive a
/// checkpoint), and the spans (`count · (start · len · group count ·
/// groups)*`) in **normal form** — sorted by start, empty spans
/// omitted, adjacent spans coalesced — every integer little-endian and
/// every string length-prefixed UTF-8. The normal form is what makes
/// the stream canonical: aggregators holding the same aggregation
/// serialise identically, whatever their push/merge history.
pub const AGGREGATOR_MAGIC: &[u8; 8] = dapc_core::snapmagic::AGGREGATOR.bytes;

impl Default for BatchAggregator {
    fn default() -> Self {
        Self::with_optima_at(BTreeMap::new(), 0)
    }
}

impl BatchAggregator {
    /// An aggregator with no reference optima (all ratio columns stay
    /// `None`), starting at canonical index 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// An aggregator with per-instance reference optima
    /// (`name → (optimum, proven exact)`), enabling the ratio columns;
    /// starts at canonical index 0.
    pub fn with_optima(optima: BTreeMap<String, (u64, bool)>) -> Self {
        Self::with_optima_at(optima, 0)
    }

    /// A **shard** aggregator: like [`BatchAggregator::with_optima`], but
    /// the first pushed result is declared to be the job at canonical
    /// index `start` — the information [`BatchAggregator::merge`] needs
    /// to stitch shards back together in corpus order.
    pub fn with_optima_at(optima: BTreeMap<String, (u64, bool)>, start: usize) -> Self {
        BatchAggregator {
            optima,
            spans: vec![Span {
                start,
                len: 0,
                groups: Vec::new(),
            }],
            seen_cells: BTreeSet::new(),
        }
    }

    /// Results consumed so far (across every span).
    pub fn jobs(&self) -> usize {
        self.spans.iter().map(|s| s.len).sum()
    }

    /// The canonical job ranges this aggregation covers, in normal form:
    /// sorted, disjoint, non-empty, adjacent runs coalesced. One entry
    /// per *gap-separated* run — a coordinator resuming a sweep from
    /// checkpoints subtracts these from the corpus range to find the
    /// jobs still owed.
    pub fn covered(&self) -> Vec<std::ops::Range<usize>> {
        Self::coalesced(self.spans.clone())
            .into_iter()
            .map(|s| s.start..s.end())
            .collect()
    }

    /// Folds one result into its `(instance, backend, ε)` group.
    ///
    /// # Panics
    ///
    /// Panics if `r` re-opens a cell that was already closed — the
    /// telltale of out-of-order delivery — or if results were merged in
    /// since construction (a merged aggregator only finishes or merges
    /// further; it no longer consumes).
    pub fn push(&mut self, r: &JobResult) {
        assert!(
            self.spans.len() == 1,
            "push on a merged aggregator: merge after streaming, not during"
        );
        let span = &mut self.spans[0];
        span.len += 1;
        let cell = (&r.key.instance, &r.key.backend, r.key.eps.to_bits());
        let matches = |g: &GroupAcc| (&g.instance, &g.backend, g.eps.to_bits()) == cell;
        if !span.groups.last().is_some_and(matches) {
            assert!(
                self.seen_cells.insert((
                    r.key.instance.clone(),
                    r.key.backend.clone(),
                    r.key.eps.to_bits()
                )),
                "result for {} delivered out of canonical order",
                r.key
            );
            let (opt, opt_exact) = match self.optima.get(&r.key.instance) {
                Some(&(o, e)) => (Some(o), e),
                None => (None, false),
            };
            span.groups.push(GroupAcc::open(r, opt, opt_exact));
        }
        // dapc-allow(panic): the accumulator was pushed by the branch directly above
        span.groups.last_mut().expect("group just ensured").fold(r);
    }

    /// Merges another aggregator — typically a shard's, loaded with
    /// [`BatchAggregator::load_from`] — into this one.
    ///
    /// Merging is **associative and commutative over disjoint job
    /// sets**: shards may arrive in any order and any grouping, and the
    /// finished aggregation equals what one process pushing the whole
    /// corpus would produce (timing columns aside), because every
    /// accumulator is integer-exact and spans are reassembled in
    /// canonical order at [`BatchAggregator::finish`] time.
    ///
    /// ```
    /// use dapc_graph::gen;
    /// use dapc_ilp::problems;
    /// use dapc_runtime::{solve_many, solve_shard, Corpus, RuntimeConfig};
    ///
    /// let corpus = Corpus::builder()
    ///     .instance(
    ///         "MIS/cycle16",
    ///         problems::max_independent_set_unweighted(&gen::cycle(16)),
    ///     )
    ///     .backend("greedy")
    ///     .eps(0.3)
    ///     .seeds(0..6)
    ///     .build();
    /// let rt = RuntimeConfig::new();
    /// // Two cooperating processes, one shard each — merged in reverse
    /// // order, merge is commutative.
    /// let first = solve_shard(&corpus, 0, 2, &rt);
    /// let second = solve_shard(&corpus, 1, 2, &rt);
    /// let mut merged = second.aggregator;
    /// merged.merge(first.aggregator);
    /// let (groups, _) = merged.finish();
    /// let single = solve_many(&corpus, &rt);
    /// assert_eq!(groups.len(), single.groups.len());
    /// assert_eq!(groups[0].jobs, 6);
    /// assert_eq!(groups[0].min_value, single.groups[0].min_value);
    /// assert_eq!(groups[0].mean_value, single.groups[0].mean_value);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the two aggregators cover overlapping canonical job
    /// ranges (the same shard merged twice) or disagree on an instance's
    /// reference optimum.
    pub fn merge(&mut self, other: BatchAggregator) {
        use std::collections::btree_map::Entry;
        for (name, val) in other.optima {
            match self.optima.entry(name) {
                Entry::Occupied(e) => assert_eq!(
                    *e.get(),
                    val,
                    "shards disagree on the reference optimum of {:?}",
                    e.key()
                ),
                Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        for span in other.spans {
            if span.len == 0 {
                continue;
            }
            for own in &self.spans {
                assert!(
                    !own.overlaps(&span),
                    "shard job ranges overlap: [{}, {}) vs [{}, {}) — was a shard merged twice?",
                    own.start,
                    own.end(),
                    span.start,
                    span.end(),
                );
            }
            self.spans.push(span);
        }
    }

    /// Sorts spans into canonical order and folds every *adjacent* pair
    /// into one (absorbing the boundary fragments of a cell split across
    /// two shards) — the normal form both [`BatchAggregator::finish`]
    /// and [`BatchAggregator::save_to`] work on. Any set of spans
    /// covering the same jobs coalesces to the same normal form,
    /// whatever the push/merge history; gaps survive as separate spans.
    fn coalesced(spans: Vec<Span>) -> Vec<Span> {
        let mut spans: Vec<Span> = spans.into_iter().filter(|s| s.len > 0).collect();
        spans.sort_unstable_by_key(|s| s.start);
        let mut out: Vec<Span> = Vec::new();
        for span in spans {
            match out.last_mut() {
                Some(prev) if prev.end() == span.start => {
                    prev.len += span.len;
                    let mut groups = span.groups.into_iter();
                    if let Some(first) = groups.next() {
                        match prev.groups.last_mut() {
                            Some(last) if last.cell() == first.cell() => last.absorb(first),
                            _ => prev.groups.push(first),
                        }
                        prev.groups.extend(groups);
                    }
                }
                _ => out.push(span),
            }
        }
        out
    }

    /// Finalises the accumulators into [`GroupSummary`]s (means and
    /// ratios derived from the integer sums) and rolls the groups up per
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if the merged spans leave an **interior** gap of canonical
    /// indices — a middle shard of the corpus was never merged in. The
    /// aggregator does not know the corpus size, so a missing *first or
    /// last* shard cannot be detected here; merge at the
    /// [`crate::ShardReport`] level, whose
    /// [`crate::ShardReport::finish`] checks full coverage against the
    /// corpus job count.
    pub fn finish(self) -> (Vec<GroupSummary>, Vec<BackendSummary>) {
        let spans = Self::coalesced(self.spans);
        if let [first, second, ..] = &spans[..] {
            // dapc-allow(panic): the documented merge-gap contract of finish (see # Panics)
            panic!(
                "merged shards leave a gap: jobs [{}, {}) are missing",
                first.end(),
                second.start,
            );
        }
        let groups: Vec<GroupSummary> = spans
            .into_iter()
            .flat_map(|s| s.groups)
            .map(GroupAcc::finish)
            .collect();

        let mut backends: Vec<BackendSummary> = Vec::new();
        for g in &groups {
            if !backends.iter().any(|b| b.backend == g.backend) {
                backends.push(BackendSummary {
                    backend: g.backend.clone(),
                    jobs: 0,
                    feasible: true,
                    min_ratio: None,
                    max_ratio: None,
                    mean_ratio: None,
                    mean_rounds: 0.0,
                    micros: 0,
                });
            }
            let b = backends
                .iter_mut()
                .find(|b| b.backend == g.backend)
                // dapc-allow(panic): the accumulator was pushed by the branch directly above
                .expect("backend just ensured");
            b.jobs += g.jobs;
            b.feasible &= g.feasible;
            if let Some(r) = g.min_ratio {
                b.min_ratio = Some(b.min_ratio.map_or(r, |m: f64| m.min(r)));
            }
            if let Some(r) = g.max_ratio {
                b.max_ratio = Some(b.max_ratio.map_or(r, |m: f64| m.max(r)));
            }
            if let Some(r) = g.mean_ratio {
                b.mean_ratio = Some(b.mean_ratio.unwrap_or(0.0) + r * g.jobs as f64);
            }
            b.mean_rounds += g.mean_rounds * g.jobs as f64;
            b.micros += g.micros;
        }
        for b in &mut backends {
            let jobs = b.jobs as f64;
            b.mean_rounds /= jobs;
            if let Some(sum) = b.mean_ratio {
                b.mean_ratio = Some(sum / jobs);
            }
        }
        (groups, backends)
    }

    /// Writes this aggregator in the versioned binary snapshot format
    /// (see [`AGGREGATOR_MAGIC`]). The byte stream is canonical: spans
    /// are written in their coalesced normal form, so two aggregators
    /// holding the same aggregation — one that pushed the whole run,
    /// one merged from shard fragments — serialise identically.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(AGGREGATOR_MAGIC)?;
        let mut optima: Vec<_> = self.optima.iter().collect();
        optima.sort();
        snap::write_u64(&mut w, optima.len() as u64)?;
        for (name, &(opt, exact)) in optima {
            snap::write_str(&mut w, name)?;
            snap::write_u64(&mut w, opt)?;
            snap::write_bool(&mut w, exact)?;
        }
        let spans = Self::coalesced(self.spans.clone());
        // The canonical index the aggregation begins at: for an empty
        // (still unconsumed) shard aggregator this is the live span's
        // offset, which a checkpoint must preserve for the resumed
        // pushes to land at the right indices.
        let start = spans
            .first()
            .map_or(self.spans[0].start, |first| first.start);
        snap::write_u64(&mut w, start as u64)?;
        snap::write_u64(&mut w, spans.len() as u64)?;
        for span in spans {
            snap::write_u64(&mut w, span.start as u64)?;
            snap::write_u64(&mut w, span.len as u64)?;
            snap::write_u64(&mut w, span.groups.len() as u64)?;
            for g in &span.groups {
                snap::write_str(&mut w, &g.instance)?;
                snap::write_str(&mut w, &g.backend)?;
                snap::write_u64(&mut w, g.eps.to_bits())?;
                w.write_all(&[match g.sense {
                    Sense::Packing => 0,
                    Sense::Covering => 1,
                }])?;
                snap::write_u64(&mut w, g.vars as u64)?;
                snap::write_u64(&mut w, g.jobs as u64)?;
                snap::write_bool(&mut w, g.feasible)?;
                snap::write_bool(&mut w, g.opt.is_some())?;
                snap::write_u64(&mut w, g.opt.unwrap_or(0))?;
                snap::write_bool(&mut w, g.opt_exact)?;
                snap::write_u64(&mut w, g.min_value)?;
                snap::write_u64(&mut w, g.max_value)?;
                snap::write_u128(&mut w, g.value_sum)?;
                snap::write_u64(&mut w, g.rounds_sum)?;
                snap::write_u64(&mut w, g.rounds_last as u64)?;
                snap::write_u64(&mut w, g.micros)?;
                snap::write_u64(&mut w, g.stats.deleted as u64)?;
                snap::write_u64(&mut w, g.stats.components as u64)?;
                snap::write_u64(&mut w, g.stats.fixed_weight)?;
                snap::write_u64(&mut w, g.stats.deleted_edges as u64)?;
            }
        }
        Ok(())
    }

    /// Reads a snapshot written by [`BatchAggregator::save_to`] into a
    /// fresh aggregator. Loading is all-or-nothing: the stream is fully
    /// parsed and validated first, so an error never yields a
    /// half-populated aggregator.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported version, or any inconsistent field (an unknown sense
    /// byte, a non-boolean flag, a span whose group job counts do not sum
    /// to its length, overlapping or duplicated spans/cells), and with
    /// [`io::ErrorKind::UnexpectedEof`] on truncation at any field
    /// boundary, besides propagating reader errors. It never panics on
    /// untrusted input.
    pub fn load_from<R: io::Read>(mut r: R) -> io::Result<Self> {
        snap::check_magic(&mut r, AGGREGATOR_MAGIC, "batch-aggregator")?;
        let optima_count = snap::read_u64(&mut r)?;
        let mut optima = BTreeMap::new();
        for _ in 0..optima_count {
            let name = snap::read_str(&mut r, "instance name")?;
            let opt = snap::read_u64(&mut r)?;
            let exact = snap::read_bool(&mut r, "optimum exactness")?;
            if optima.insert(name, (opt, exact)).is_some() {
                return Err(snap::invalid("duplicate instance in the optima table"));
            }
        }
        let start = snap::read_u64(&mut r)? as usize;
        let span_count = snap::read_u64(&mut r)?;
        let mut spans: Vec<Span> = Vec::new();
        for _ in 0..span_count {
            let start = snap::read_u64(&mut r)? as usize;
            let len = snap::read_u64(&mut r)? as usize;
            if len == 0 {
                return Err(snap::invalid("empty span in snapshot"));
            }
            let group_count = snap::read_u64(&mut r)?;
            let mut groups: Vec<GroupAcc> = Vec::new();
            let mut cells = BTreeSet::new();
            let mut jobs_total = 0usize;
            for _ in 0..group_count {
                let instance = snap::read_str(&mut r, "instance name")?;
                let backend = snap::read_str(&mut r, "backend name")?;
                let eps = f64::from_bits(snap::read_u64(&mut r)?);
                let sense = match snap::read_u8(&mut r)? {
                    0 => Sense::Packing,
                    1 => Sense::Covering,
                    b => return Err(snap::invalid(format!("bad sense byte {b}"))),
                };
                let vars = snap::read_u64(&mut r)? as usize;
                let jobs = snap::read_u64(&mut r)? as usize;
                if jobs == 0 {
                    return Err(snap::invalid("group with zero jobs"));
                }
                let feasible = snap::read_bool(&mut r, "feasibility")?;
                let has_opt = snap::read_bool(&mut r, "optimum presence")?;
                let opt_value = snap::read_u64(&mut r)?;
                let opt = has_opt.then_some(opt_value);
                let opt_exact = snap::read_bool(&mut r, "optimum exactness")?;
                let min_value = snap::read_u64(&mut r)?;
                let max_value = snap::read_u64(&mut r)?;
                let value_sum = snap::read_u128(&mut r)?;
                let rounds_sum = snap::read_u64(&mut r)?;
                let rounds_last = snap::read_u64(&mut r)? as usize;
                let micros = snap::read_u64(&mut r)?;
                let stats = GroupStats {
                    deleted: snap::read_u64(&mut r)? as usize,
                    components: snap::read_u64(&mut r)? as usize,
                    fixed_weight: snap::read_u64(&mut r)?,
                    deleted_edges: snap::read_u64(&mut r)? as usize,
                };
                if !cells.insert((instance.clone(), backend.clone(), eps.to_bits())) {
                    return Err(snap::invalid(format!(
                        "cell {instance}/{backend}/eps{eps} appears twice in one span"
                    )));
                }
                jobs_total += jobs;
                groups.push(GroupAcc {
                    instance,
                    backend,
                    eps,
                    sense,
                    vars,
                    jobs,
                    feasible,
                    opt,
                    opt_exact,
                    min_value,
                    max_value,
                    value_sum,
                    rounds_sum,
                    rounds_last,
                    micros,
                    stats,
                });
            }
            if jobs_total != len {
                return Err(snap::invalid(format!(
                    "span claims {len} jobs but its groups sum to {jobs_total}"
                )));
            }
            let span = Span { start, len, groups };
            if spans.iter().any(|s| s.overlaps(&span)) {
                return Err(snap::invalid("overlapping spans in snapshot"));
            }
            spans.push(span);
        }
        // A snapshot of a single contiguous span stays resumable: pushes
        // continue where the aggregation stopped, guarded by its cell
        // set. An empty snapshot resumes at the persisted start index.
        let seen_cells = match &spans[..] {
            [only] => only
                .groups
                .iter()
                .map(|g| (g.instance.clone(), g.backend.clone(), g.eps.to_bits()))
                .collect(),
            _ => BTreeSet::new(),
        };
        if spans.is_empty() {
            spans.push(Span {
                start,
                len: 0,
                groups: Vec::new(),
            });
        } else if spans.iter().map(|s| s.start).min() != Some(start) {
            return Err(snap::invalid(format!(
                "snapshot start {start} disagrees with its earliest span"
            )));
        }
        Ok(BatchAggregator {
            optima,
            spans,
            seen_cells,
        })
    }
}
