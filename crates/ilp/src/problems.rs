//! ILP formulations of the combinatorial problems the paper names:
//! maximum independent set, maximum matching, minimum vertex cover,
//! minimum (k-distance) dominating set, and weighted set cover — plus
//! random general instances for stress tests.

use crate::instance::{Constraint, IlpInstance};
use dapc_graph::{power, Graph, Vertex};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Maximum (weight) independent set as packing: one variable per vertex,
/// `x_u + x_v ≤ 1` per edge.
///
/// # Panics
///
/// Panics if `weights.len() != g.n()`.
pub fn max_independent_set(g: &Graph, weights: Vec<u64>) -> IlpInstance {
    assert_eq!(weights.len(), g.n());
    let constraints = g
        .edges()
        .map(|(u, v)| Constraint::new(vec![(u, 1.0), (v, 1.0)], 1.0))
        .collect();
    IlpInstance::packing(g.n(), weights, constraints)
}

/// Unweighted maximum independent set.
pub fn max_independent_set_unweighted(g: &Graph) -> IlpInstance {
    max_independent_set(g, vec![1; g.n()])
}

/// A matching ILP together with the mapping from ILP variables back to
/// graph edges.
#[derive(Clone, Debug)]
pub struct MatchingIlp {
    /// The packing instance (variables are edges of the source graph).
    pub ilp: IlpInstance,
    /// `edge_of_var[i]` is the graph edge represented by variable `i`.
    pub edge_of_var: Vec<(Vertex, Vertex)>,
}

/// Maximum matching as packing: one variable per *edge*, `Σ_{e ∋ v} x_e ≤ 1`
/// per vertex. The communication hypergraph has the edge variables as
/// vertices and one hyperedge per graph vertex — exactly the line-graph
/// topology the LOCAL simulation needs.
pub fn max_matching(g: &Graph) -> MatchingIlp {
    let edge_of_var: Vec<(Vertex, Vertex)> = g.edges().collect();
    let mut edge_id = std::collections::BTreeMap::new();
    for (i, &e) in edge_of_var.iter().enumerate() {
        edge_id.insert(e, i as Vertex);
    }
    let mut constraints = Vec::with_capacity(g.n());
    for v in g.vertices() {
        let coeffs: Vec<(Vertex, f64)> = g
            .neighbors(v)
            .iter()
            .map(|&u| {
                let key = if v < u { (v, u) } else { (u, v) };
                (edge_id[&key], 1.0)
            })
            .collect();
        if !coeffs.is_empty() {
            constraints.push(Constraint::new(coeffs, 1.0));
        }
    }
    MatchingIlp {
        ilp: IlpInstance::packing(edge_of_var.len(), vec![1; edge_of_var.len()], constraints),
        edge_of_var,
    }
}

/// Minimum (weight) vertex cover as covering: `x_u + x_v ≥ 1` per edge.
///
/// # Panics
///
/// Panics if `weights.len() != g.n()`.
pub fn min_vertex_cover(g: &Graph, weights: Vec<u64>) -> IlpInstance {
    assert_eq!(weights.len(), g.n());
    let constraints = g
        .edges()
        .map(|(u, v)| Constraint::new(vec![(u, 1.0), (v, 1.0)], 1.0))
        .collect();
    IlpInstance::covering(g.n(), weights, constraints)
}

/// Unweighted minimum vertex cover.
pub fn min_vertex_cover_unweighted(g: &Graph) -> IlpInstance {
    min_vertex_cover(g, vec![1; g.n()])
}

/// Minimum (weight) dominating set as covering:
/// `Σ_{u ∈ N[v]} x_u ≥ 1` per vertex `v`.
///
/// # Panics
///
/// Panics if `weights.len() != g.n()`.
pub fn min_dominating_set(g: &Graph, weights: Vec<u64>) -> IlpInstance {
    k_dominating_set(g, 1, weights)
}

/// Unweighted minimum dominating set.
pub fn min_dominating_set_unweighted(g: &Graph) -> IlpInstance {
    min_dominating_set(g, vec![1; g.n()])
}

/// Minimum-weight `k`-distance dominating set (the running example of
/// Definition 1.3): `Σ_{u ∈ N^k(v)} x_u ≥ 1` per vertex. One round in the
/// resulting hypergraph simulates `k` rounds in `g`.
///
/// # Panics
///
/// Panics if `weights.len() != g.n()` or `k == 0`.
pub fn k_dominating_set(g: &Graph, k: usize, weights: Vec<u64>) -> IlpInstance {
    assert_eq!(weights.len(), g.n());
    assert!(k >= 1, "k must be at least 1");
    let constraints = power::k_neighborhoods(g, k)
        .into_iter()
        .map(|ball| Constraint::new(ball.into_iter().map(|u| (u, 1.0)).collect(), 1.0))
        .collect();
    IlpInstance::covering(g.n(), weights, constraints)
}

/// Weighted set cover as covering: variables are sets, one constraint per
/// universe element.
///
/// # Panics
///
/// Panics if weights mismatch, or some element of the universe appears in
/// no set (infeasible).
pub fn set_cover(universe: usize, sets: &[Vec<usize>], weights: Vec<u64>) -> IlpInstance {
    assert_eq!(weights.len(), sets.len());
    let mut member_of: Vec<Vec<Vertex>> = vec![Vec::new(); universe];
    for (s, elems) in sets.iter().enumerate() {
        for &e in elems {
            assert!(e < universe, "element {e} outside universe");
            member_of[e].push(s as Vertex);
        }
    }
    let constraints = member_of
        .into_iter()
        .enumerate()
        .map(|(e, ss)| {
            assert!(!ss.is_empty(), "element {e} appears in no set");
            Constraint::new(ss.into_iter().map(|s| (s, 1.0)).collect(), 1.0)
        })
        .collect();
    IlpInstance::covering(sets.len(), weights, constraints)
}

/// A random general packing instance: `m` constraints of the given support
/// `rank`, uniform coefficients in `(0, 1]`, bounds calibrated so that a
/// constant fraction of the variables fit.
pub fn random_packing(n: usize, m: usize, rank: usize, rng: &mut StdRng) -> IlpInstance {
    assert!(rank >= 1 && rank <= n);
    let weights: Vec<u64> = (0..n).map(|_| rng.random_range(1..=10)).collect();
    let constraints = (0..m)
        .map(|_| {
            let mut support: Vec<Vertex> = Vec::with_capacity(rank);
            while support.len() < rank {
                let v = rng.random_range(0..n) as Vertex;
                if !support.contains(&v) {
                    support.push(v);
                }
            }
            let coeffs: Vec<(Vertex, f64)> = support
                .into_iter()
                .map(|v| (v, rng.random_range(0.1..1.0)))
                .collect();
            let total: f64 = coeffs.iter().map(|&(_, a)| a).sum();
            Constraint::new(coeffs, total * rng.random_range(0.3..0.8))
        })
        .collect();
    IlpInstance::packing(n, weights, constraints)
}

/// A random general covering instance (always feasible by construction:
/// bounds are at most the coefficient sums).
pub fn random_covering(n: usize, m: usize, rank: usize, rng: &mut StdRng) -> IlpInstance {
    assert!(rank >= 1 && rank <= n);
    let weights: Vec<u64> = (0..n).map(|_| rng.random_range(1..=10)).collect();
    let constraints = (0..m)
        .map(|_| {
            let mut support: Vec<Vertex> = Vec::with_capacity(rank);
            while support.len() < rank {
                let v = rng.random_range(0..n) as Vertex;
                if !support.contains(&v) {
                    support.push(v);
                }
            }
            let coeffs: Vec<(Vertex, f64)> = support
                .into_iter()
                .map(|v| (v, rng.random_range(0.1..1.0)))
                .collect();
            let total: f64 = coeffs.iter().map(|&(_, a)| a).sum();
            Constraint::new(coeffs, total * rng.random_range(0.2..0.7))
        })
        .collect();
    IlpInstance::covering(n, weights, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn mis_ilp_shape() {
        let g = gen::cycle(5);
        let ilp = max_independent_set_unweighted(&g);
        assert_eq!(ilp.n(), 5);
        assert_eq!(ilp.m(), 5);
        // {0, 2} is independent in C5.
        assert!(ilp.is_feasible(&[true, false, true, false, false]));
        assert!(!ilp.is_feasible(&[true, true, false, false, false]));
    }

    #[test]
    fn matching_ilp_shape() {
        let g = gen::path(4); // edges (0,1), (1,2), (2,3)
        let m = max_matching(&g);
        assert_eq!(m.ilp.n(), 3);
        assert_eq!(m.edge_of_var.len(), 3);
        // Matching {(0,1), (2,3)} ok; {(0,1), (1,2)} not.
        let var_of = |e: (Vertex, Vertex)| m.edge_of_var.iter().position(|&x| x == e).unwrap();
        let mut x = vec![false; 3];
        x[var_of((0, 1))] = true;
        x[var_of((2, 3))] = true;
        assert!(m.ilp.is_feasible(&x));
        let mut y = vec![false; 3];
        y[var_of((0, 1))] = true;
        y[var_of((1, 2))] = true;
        assert!(!m.ilp.is_feasible(&y));
    }

    #[test]
    fn vc_ilp_shape() {
        let g = gen::star(5);
        let ilp = min_vertex_cover_unweighted(&g);
        // The hub alone covers the star.
        let mut x = vec![false; 5];
        x[0] = true;
        assert!(ilp.is_feasible(&x));
        assert!(!ilp.is_feasible(&[false; 5]));
    }

    #[test]
    fn ds_ilp_shape() {
        let g = gen::path(5);
        let ilp = min_dominating_set_unweighted(&g);
        // {1, 3} dominates P5.
        assert!(ilp.is_feasible(&[false, true, false, true, false]));
        // {0, 4} leaves vertex 2 undominated.
        assert!(!ilp.is_feasible(&[true, false, false, false, true]));
    }

    #[test]
    fn k_ds_uses_k_balls() {
        let g = gen::path(7);
        let ilp = k_dominating_set(&g, 2, vec![1; 7]);
        // Vertex 2 and 5: N^2 balls cover everything.
        let mut x = vec![false; 7];
        x[2] = true;
        x[5] = true;
        assert!(ilp.is_feasible(&x));
        // Single vertex 3 covers 1..=5 but not 0, 6.
        let mut y = vec![false; 7];
        y[3] = true;
        assert!(!ilp.is_feasible(&y));
    }

    #[test]
    fn set_cover_shape() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        let ilp = set_cover(4, &sets, vec![1; 4]);
        assert!(ilp.is_feasible(&[true, false, true, false]));
        assert!(!ilp.is_feasible(&[true, false, false, false]));
    }

    #[test]
    #[should_panic]
    fn set_cover_rejects_uncoverable() {
        let _ = set_cover(3, &[vec![0, 1]], vec![1]);
    }

    #[test]
    fn random_instances_are_well_formed() {
        let mut rng = gen::seeded_rng(9);
        let p = random_packing(30, 20, 4, &mut rng);
        assert!(p.is_feasible(&p.trivial_solution()));
        let c = random_covering(30, 20, 4, &mut rng);
        assert!(c.is_feasible(&c.trivial_solution()));
        assert_eq!(c.hypergraph().rank(), 4);
    }

    #[test]
    fn matching_hypergraph_is_line_graph_topology() {
        let g = gen::cycle(6);
        let m = max_matching(&g);
        let h = m.ilp.hypergraph();
        // In C6, each edge-variable shares a constraint with exactly 2
        // other edges.
        let primal = h.primal_graph();
        assert!(primal.is_regular(2));
    }
}
