//! Packing and covering ILP instances (Definitions 1.1–1.3 of the paper).
//!
//! An instance is `(A ∈ R^{m×n}_{≥0}, b ∈ R^m_{≥0}, w ∈ Z^n_{≥0})` with 0/1
//! variables; packing maximises `wᵀx` subject to `Ax ≤ b`, covering
//! minimises `wᵀx` subject to `Ax ≥ b`. The associated communication
//! hypergraph has one vertex per variable and one hyperedge per constraint
//! support (Definition 1.3) — it is constructed eagerly and drives all
//! distance computations in the distributed algorithms.

use dapc_graph::{Hypergraph, Vertex};

/// Whether an instance packs (maximise, `Ax ≤ b`) or covers (minimise,
/// `Ax ≥ b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximise `wᵀx` subject to `Ax ≤ b`.
    Packing,
    /// Minimise `wᵀx` subject to `Ax ≥ b`.
    Covering,
}

/// A single row of the constraint system: `Σ coeffs[i].1 · x_{coeffs[i].0}
/// {≤, ≥} bound`, with non-negative coefficients, sorted by variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    coeffs: Vec<(Vertex, f64)>,
    bound: f64,
}

impl Constraint {
    /// Builds a constraint; coefficients are sorted, merged and
    /// zero-entries dropped.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient or the bound is negative or non-finite.
    pub fn new(mut coeffs: Vec<(Vertex, f64)>, bound: f64) -> Self {
        assert!(bound >= 0.0 && bound.is_finite(), "bound must be ≥ 0");
        for &(v, a) in &coeffs {
            assert!(
                a >= 0.0 && a.is_finite(),
                "coefficient of x_{v} must be ≥ 0, got {a}"
            );
        }
        coeffs.sort_unstable_by_key(|&(v, _)| v);
        let mut merged: Vec<(Vertex, f64)> = Vec::with_capacity(coeffs.len());
        for (v, a) in coeffs {
            if a == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some((lv, la)) if *lv == v => *la += a,
                _ => merged.push((v, a)),
            }
        }
        Constraint {
            coeffs: merged,
            bound,
        }
    }

    /// The sorted non-zero `(variable, coefficient)` pairs.
    pub fn coeffs(&self) -> &[(Vertex, f64)] {
        &self.coeffs
    }

    /// The right-hand side.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The support (variables with non-zero coefficient), sorted.
    pub fn support(&self) -> Vec<Vertex> {
        self.coeffs.iter().map(|&(v, _)| v).collect()
    }

    /// Evaluates the left-hand side on a 0/1 assignment.
    pub fn lhs(&self, x: &[bool]) -> f64 {
        self.coeffs
            .iter()
            .filter(|&&(v, _)| x[v as usize])
            .map(|&(_, a)| a)
            .sum()
    }

    /// The sum of all coefficients (LHS under the all-ones assignment).
    pub fn coeff_sum(&self) -> f64 {
        self.coeffs.iter().map(|&(_, a)| a).sum()
    }
}

/// Numeric slack tolerated when checking constraints (the instances we
/// build use small integer-ish coefficients, so this is generous).
pub const FEASIBILITY_EPS: f64 = 1e-9;

/// An immutable packing or covering ILP instance.
///
/// # Examples
///
/// Maximum independent set on a triangle:
///
/// ```
/// use dapc_ilp::instance::{Constraint, IlpInstance, Sense};
///
/// let constraints = vec![
///     Constraint::new(vec![(0, 1.0), (1, 1.0)], 1.0),
///     Constraint::new(vec![(1, 1.0), (2, 1.0)], 1.0),
///     Constraint::new(vec![(0, 1.0), (2, 1.0)], 1.0),
/// ];
/// let ilp = IlpInstance::packing(3, vec![1, 1, 1], constraints);
/// assert!(ilp.is_feasible(&[true, false, false]));
/// assert!(!ilp.is_feasible(&[true, true, false]));
/// assert_eq!(ilp.value(&[true, false, false]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct IlpInstance {
    sense: Sense,
    weights: Vec<u64>,
    constraints: Vec<Constraint>,
    hypergraph: Hypergraph,
}

impl IlpInstance {
    fn build(sense: Sense, n: usize, weights: Vec<u64>, constraints: Vec<Constraint>) -> Self {
        assert_eq!(weights.len(), n, "one weight per variable");
        for c in &constraints {
            for &(v, _) in c.coeffs() {
                assert!(
                    (v as usize) < n,
                    "constraint mentions variable {v} >= n={n}"
                );
            }
        }
        if sense == Sense::Covering {
            for (j, c) in constraints.iter().enumerate() {
                assert!(
                    c.coeff_sum() + FEASIBILITY_EPS >= c.bound(),
                    "covering constraint {j} cannot be satisfied even by all-ones"
                );
            }
        }
        let hypergraph = Hypergraph::new(n, constraints.iter().map(Constraint::support).collect());
        IlpInstance {
            sense,
            weights,
            constraints,
            hypergraph,
        }
    }

    /// Builds a packing instance (maximise `wᵀx`, `Ax ≤ b`).
    ///
    /// # Panics
    ///
    /// Panics on negative coefficients or dangling variable references.
    pub fn packing(n: usize, weights: Vec<u64>, constraints: Vec<Constraint>) -> Self {
        Self::build(Sense::Packing, n, weights, constraints)
    }

    /// Builds a covering instance (minimise `wᵀx`, `Ax ≥ b`).
    ///
    /// # Panics
    ///
    /// Panics additionally if some constraint is unsatisfiable even by the
    /// all-ones assignment (the instance would be infeasible).
    pub fn covering(n: usize, weights: Vec<u64>, constraints: Vec<Constraint>) -> Self {
        Self::build(Sense::Covering, n, weights, constraints)
    }

    /// Packing or covering.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Number of constraints.
    pub fn m(&self) -> usize {
        self.constraints.len()
    }

    /// The weight of variable `v`.
    pub fn weight(&self, v: Vertex) -> u64 {
        self.weights[v as usize]
    }

    /// All weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// `‖w‖₁` — the paper assumes this is polynomial in `n`.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The Definition 1.3 communication hypergraph (vertex = variable,
    /// hyperedge = constraint support).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// A stable structural fingerprint of the instance (FNV-1a over the
    /// sense, weights and constraint system). Two instances with equal
    /// fingerprints are, with overwhelming probability, the same ILP —
    /// batch runtimes use this to key per-instance-family caches without
    /// holding onto the instances themselves.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::FNV_OFFSET;
        let mut eat = |v: u64| h = crate::hash::fnv1a_u64(h, v);
        eat(match self.sense {
            Sense::Packing => 1,
            Sense::Covering => 2,
        });
        eat(self.n() as u64);
        for &w in &self.weights {
            eat(w);
        }
        eat(self.constraints.len() as u64);
        for c in &self.constraints {
            eat(c.bound().to_bits());
            eat(c.coeffs().len() as u64);
            for &(v, a) in c.coeffs() {
                eat(v as u64);
                eat(a.to_bits());
            }
        }
        h
    }

    /// Whether a 0/1 assignment satisfies every constraint.
    pub fn is_feasible(&self, x: &[bool]) -> bool {
        assert_eq!(x.len(), self.n(), "assignment length mismatch");
        self.constraints.iter().all(|c| match self.sense {
            Sense::Packing => c.lhs(x) <= c.bound() + FEASIBILITY_EPS,
            Sense::Covering => c.lhs(x) + FEASIBILITY_EPS >= c.bound(),
        })
    }

    /// Ids of constraints violated by `x` (empty iff feasible).
    pub fn violated_constraints(&self, x: &[bool]) -> Vec<usize> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| match self.sense {
                Sense::Packing => c.lhs(x) > c.bound() + FEASIBILITY_EPS,
                Sense::Covering => c.lhs(x) + FEASIBILITY_EPS < c.bound(),
            })
            .map(|(j, _)| j)
            .collect()
    }

    /// Objective value `wᵀx`.
    pub fn value(&self, x: &[bool]) -> u64 {
        assert_eq!(x.len(), self.n(), "assignment length mismatch");
        x.iter()
            .zip(&self.weights)
            .filter(|(&xi, _)| xi)
            .map(|(_, &w)| w)
            .sum()
    }

    /// `W(P, S)` of §2.2/§2.3: the weight of solution `x` restricted to the
    /// subset `S` (given as a membership mask).
    ///
    /// # Panics
    ///
    /// Panics if mask lengths mismatch.
    pub fn value_on(&self, x: &[bool], subset: &[bool]) -> u64 {
        assert_eq!(x.len(), self.n());
        assert_eq!(subset.len(), self.n());
        (0..self.n())
            .filter(|&i| x[i] && subset[i])
            .map(|i| self.weights[i])
            .sum()
    }

    /// The trivial feasible solution: all-zeros for packing, all-ones for
    /// covering.
    pub fn trivial_solution(&self) -> Vec<bool> {
        match self.sense {
            Sense::Packing => vec![false; self.n()],
            Sense::Covering => vec![true; self.n()],
        }
    }
}

impl std::fmt::Display for IlpInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} ILP(n={}, m={}, ‖w‖₁={})",
            self.sense,
            self.n(),
            self.m(),
            self.total_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_mis() -> IlpInstance {
        IlpInstance::packing(
            3,
            vec![1, 2, 3],
            vec![
                Constraint::new(vec![(0, 1.0), (1, 1.0)], 1.0),
                Constraint::new(vec![(1, 1.0), (2, 1.0)], 1.0),
                Constraint::new(vec![(0, 1.0), (2, 1.0)], 1.0),
            ],
        )
    }

    #[test]
    fn constraint_merges_duplicates_and_drops_zeros() {
        let c = Constraint::new(vec![(2, 1.0), (0, 0.0), (2, 2.0), (1, 3.0)], 5.0);
        assert_eq!(c.coeffs(), &[(1, 3.0), (2, 3.0)]);
        assert_eq!(c.support(), vec![1, 2]);
        assert_eq!(c.coeff_sum(), 6.0);
    }

    #[test]
    fn packing_feasibility() {
        let ilp = triangle_mis();
        assert!(ilp.is_feasible(&[false, false, false]));
        assert!(ilp.is_feasible(&[false, false, true]));
        assert!(!ilp.is_feasible(&[true, true, true]));
        assert_eq!(ilp.violated_constraints(&[true, true, false]), vec![0]);
    }

    #[test]
    fn values_and_restricted_values() {
        let ilp = triangle_mis();
        let x = [true, false, true];
        assert_eq!(ilp.value(&x), 4);
        assert_eq!(ilp.value_on(&x, &[true, true, false]), 1);
        assert_eq!(ilp.value_on(&x, &[false, true, true]), 3);
    }

    #[test]
    fn covering_validation_rejects_impossible() {
        let ok = IlpInstance::covering(
            2,
            vec![1, 1],
            vec![Constraint::new(vec![(0, 1.0), (1, 1.0)], 2.0)],
        );
        assert!(ok.is_feasible(&[true, true]));
        assert!(!ok.is_feasible(&[true, false]));
        let result = std::panic::catch_unwind(|| {
            IlpInstance::covering(2, vec![1, 1], vec![Constraint::new(vec![(0, 1.0)], 2.0)])
        });
        assert!(result.is_err(), "unsatisfiable covering must be rejected");
    }

    #[test]
    fn hypergraph_matches_supports() {
        let ilp = triangle_mis();
        let h = ilp.hypergraph();
        assert_eq!(h.m(), 3);
        assert_eq!(h.edge(0), &[0, 1]);
        assert_eq!(h.distance(0, 2), Some(1));
    }

    #[test]
    fn trivial_solutions_are_feasible() {
        let p = triangle_mis();
        assert!(p.is_feasible(&p.trivial_solution()));
        let c = IlpInstance::covering(
            3,
            vec![1, 1, 1],
            vec![Constraint::new(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 2.0)],
        );
        assert!(c.is_feasible(&c.trivial_solution()));
    }

    #[test]
    fn fractional_coefficients_work() {
        let ilp = IlpInstance::packing(
            3,
            vec![1, 1, 1],
            vec![Constraint::new(vec![(0, 0.5), (1, 0.7), (2, 0.9)], 1.2)],
        );
        assert!(ilp.is_feasible(&[true, true, false])); // 1.2 <= 1.2
        assert!(!ilp.is_feasible(&[true, false, true])); // 1.4 > 1.2
    }

    #[test]
    #[should_panic]
    fn negative_coefficients_rejected() {
        let _ = Constraint::new(vec![(0, -1.0)], 1.0);
    }

    #[test]
    fn fingerprint_separates_instances() {
        let a = triangle_mis();
        let b = triangle_mis();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different weights, different constraints, different sense: all
        // move the fingerprint.
        let heavier = IlpInstance::packing(3, vec![2, 1, 1], a.constraints().to_vec());
        assert_ne!(a.fingerprint(), heavier.fingerprint());
        let looser = IlpInstance::packing(
            3,
            vec![1, 1, 1],
            vec![Constraint::new(vec![(0, 1.0), (1, 1.0)], 2.0)],
        );
        assert_ne!(a.fingerprint(), looser.fingerprint());
        let cover = IlpInstance::covering(
            3,
            vec![1, 1, 1],
            vec![Constraint::new(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 1.0)],
        );
        assert_ne!(a.fingerprint(), cover.fingerprint());
    }
}
