//! # dapc-ilp
//!
//! ILP substrate for the `dapc` workspace: packing and covering integer
//! linear programs (Definitions 1.1–1.3 of Chang & Li, PODC 2023), their
//! hypergraph modelling, local sub-instances (Observations 2.1–2.2) and
//! exact solvers for the "free local computation" the LOCAL model grants.
//!
//! * [`instance`] — `IlpInstance`, constraints, feasibility, `W(P, S)`;
//! * [`problems`] — MIS, matching, vertex cover, (k-)dominating set, set
//!   cover, random general instances;
//! * [`restrict`] — `P^local_S` / `Q^local_S` with fixed-variable support;
//! * [`solvers`] — structure-detecting exact solvers (conflict-graph MIS,
//!   Edmonds blossom, VC-via-MIS, general branch & bound, greedy
//!   fallbacks);
//! * [`verify`] — global feasibility checks and approximation verdicts.
//!
//! ```
//! use dapc_graph::gen;
//! use dapc_ilp::{problems, verify, solvers::SolverBudget};
//!
//! let g = gen::cycle(9);
//! let ilp = problems::max_independent_set_unweighted(&g);
//! let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
//! assert_eq!((opt, exact), (4, true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod instance;
pub mod problems;
pub mod restrict;
pub mod solvers;
pub mod verify;

pub use instance::{Constraint, IlpInstance, Sense};
pub use restrict::SubInstance;
pub use solvers::{Solution, SolverBudget};
pub use verify::{FeasibilityReport, Verdict};
