//! Exact local solvers with structure detection.
//!
//! The paper's clusters solve their local sub-instances *optimally* (free
//! local computation in the LOCAL model). [`solve`] reproduces that:
//! it inspects the sub-instance, routes the structured cases to fast exact
//! algorithms — conflict-graph MIS, blossom matching, vertex cover via MIS
//! complement — and everything else to the general branch & bound. All
//! paths report whether optimality was proven, so experiments can assert
//! that every local solve at experiment scale was exact.

pub mod blossom;
pub mod bnb;
pub mod greedy;
pub mod mis;

use crate::instance::{Sense, FEASIBILITY_EPS};
use crate::restrict::SubInstance;
use dapc_graph::GraphBuilder;

/// Resource limits for a local solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverBudget {
    /// Maximum branch & bound nodes before falling back to the incumbent.
    pub node_limit: u64,
    /// Cooperative-yield period: every `yield_every` search nodes a long
    /// exact solve offers its executor worker one of the worker's own
    /// queued subtasks via [`dapc_exec::yield_once`], so a giant solve
    /// cannot pin a worker for its whole duration. `0` disables the
    /// check. Yielding never changes what the solver computes — only
    /// when other queued tasks get to run — so results stay
    /// byte-identical at any setting.
    pub yield_every: u64,
}

/// Default cooperative-yield period: rare enough that the countdown is
/// noise next to the per-node bound computation, frequent enough that a
/// multi-second solve offers its worker to queued subtasks many times.
pub const DEFAULT_YIELD_EVERY: u64 = 8_192;

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            node_limit: 5_000_000,
            yield_every: DEFAULT_YIELD_EVERY,
        }
    }
}

impl SolverBudget {
    /// A budget that always runs to optimality. (Cooperative yielding
    /// stays on: it affects scheduling, never exactness.)
    pub fn unlimited() -> Self {
        SolverBudget {
            node_limit: u64::MAX,
            yield_every: DEFAULT_YIELD_EVERY,
        }
    }
}

/// Shared cooperative-yield countdown for the exact search loops:
/// decrements once per search node and, every `yield_every` nodes, offers
/// the executor worker running this solve one of its own queued subtasks
/// ([`dapc_exec::yield_once`]). Off the pool (or with `yield_every == 0`)
/// a tick is a couple of branch-predicted integer ops. Yielding only
/// reorders *when* other queued tasks run — the solve itself walks
/// exactly the same tree either way.
pub(crate) struct YieldClock {
    every: u64,
    left: u64,
}

impl YieldClock {
    pub(crate) fn new(every: u64) -> Self {
        YieldClock { every, left: every }
    }

    #[inline]
    pub(crate) fn tick(&mut self) {
        if self.every != 0 {
            self.left -= 1;
            if self.left == 0 {
                self.left = self.every;
                dapc_exec::yield_once();
            }
        }
    }
}

/// Which algorithm actually solved a sub-instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// No constraints: take everything (packing) or nothing (covering).
    Trivial,
    /// Pairwise packing constraints → conflict-graph max-weight IS.
    ConflictMis,
    /// Degree-≤2 unit packing constraints → blossom matching.
    Matching,
    /// Pairwise unit covering constraints → vertex cover via MIS complement.
    VertexCover,
    /// General branch & bound.
    BranchBound,
}

/// An exact (or budget-limited) solution of a local sub-instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Local 0/1 assignment (index-aligned with `sub.vars`).
    pub assignment: Vec<bool>,
    /// Objective value.
    pub value: u64,
    /// Whether optimality was proven.
    pub exact: bool,
    /// Which path solved it.
    pub method: Method,
}

/// Solves a local sub-instance exactly (modulo `budget`).
///
/// # Examples
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::{problems, restrict, solvers};
///
/// let g = gen::cycle(7);
/// let ilp = problems::max_independent_set_unweighted(&g);
/// let sub = restrict::packing_restriction(&ilp, &vec![true; 7]);
/// let sol = solvers::solve(&sub, &solvers::SolverBudget::default());
/// assert_eq!(sol.value, 3);
/// assert!(sol.exact);
/// assert_eq!(sol.method, solvers::Method::ConflictMis);
/// ```
pub fn solve(sub: &SubInstance, budget: &SolverBudget) -> Solution {
    if sub.m() == 0 {
        return trivial(sub);
    }
    match sub.sense {
        Sense::Packing => {
            if let Some(sol) = try_conflict_mis(sub, budget) {
                return sol;
            }
            if let Some(sol) = try_matching(sub) {
                return sol;
            }
            let r = bnb::solve_packing(sub, budget);
            Solution {
                assignment: r.assignment,
                value: r.value,
                exact: r.exact,
                method: Method::BranchBound,
            }
        }
        Sense::Covering => {
            if let Some(sol) = try_vertex_cover(sub, budget) {
                return sol;
            }
            let r = bnb::solve_covering(sub, budget);
            Solution {
                assignment: r.assignment,
                value: r.value,
                exact: r.exact,
                method: Method::BranchBound,
            }
        }
    }
}

fn trivial(sub: &SubInstance) -> Solution {
    let assignment: Vec<bool> = match sub.sense {
        Sense::Packing => sub.weights.iter().map(|&w| w > 0).collect(),
        Sense::Covering => vec![false; sub.n()],
    };
    let value = sub.value(&assignment);
    Solution {
        assignment,
        value,
        exact: true,
        method: Method::Trivial,
    }
}

/// Pairwise packing constraints → MWIS on the conflict graph.
fn try_conflict_mis(sub: &SubInstance, budget: &SolverBudget) -> Option<Solution> {
    let n = sub.n();
    let mut forced_zero = vec![false; n];
    let mut conflicts: Vec<(u32, u32)> = Vec::new();
    for c in &sub.constraints {
        let coeffs = c.coeffs();
        match coeffs.len() {
            0 => {}
            1 => {
                let (v, a) = coeffs[0];
                if a > c.bound() + FEASIBILITY_EPS {
                    forced_zero[v as usize] = true;
                }
            }
            2 => {
                let (u, au) = coeffs[0];
                let (v, av) = coeffs[1];
                if au > c.bound() + FEASIBILITY_EPS {
                    forced_zero[u as usize] = true;
                }
                if av > c.bound() + FEASIBILITY_EPS {
                    forced_zero[v as usize] = true;
                }
                if au + av > c.bound() + FEASIBILITY_EPS {
                    conflicts.push((u, v));
                }
            }
            _ => return None,
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in conflicts {
        if !forced_zero[u as usize] && !forced_zero[v as usize] {
            b.add_edge(u, v);
        }
    }
    let conflict_graph = b.build();
    let weights: Vec<u64> = (0..n)
        .map(|v| if forced_zero[v] { 0 } else { sub.weights[v] })
        .collect();
    let r = mis::max_weight_independent_set(&conflict_graph, &weights, budget);
    // Forced-zero vertices may appear in the IS with weight 0; strip them.
    let assignment: Vec<bool> = (0..n).map(|v| r.in_set[v] && !forced_zero[v]).collect();
    // Keep zero-weight unconstrained-but-unforced vertices out; they do not
    // change the value and MIS may or may not include them — that is fine.
    let value = sub.value(&assignment);
    Some(Solution {
        assignment,
        value,
        exact: r.exact,
        method: Method::ConflictMis,
    })
}

/// Unit, bound-1 packing constraints with every variable in ≤ 2 of them →
/// maximum matching (blossom), when all weights are equal.
fn try_matching(sub: &SubInstance) -> Option<Solution> {
    let n = sub.n();
    let w0 = sub.weights.first().copied().unwrap_or(1);
    if w0 == 0 || sub.weights.iter().any(|&w| w != w0) {
        return None;
    }
    for c in &sub.constraints {
        if (c.bound() - 1.0).abs() > FEASIBILITY_EPS {
            return None;
        }
        if c.coeffs()
            .iter()
            .any(|&(_, a)| (a - 1.0).abs() > FEASIBILITY_EPS)
        {
            return None;
        }
    }
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (j, c) in sub.constraints.iter().enumerate() {
        for &(v, _) in c.coeffs() {
            membership[v as usize].push(j as u32);
            if membership[v as usize].len() > 2 {
                return None;
            }
        }
    }
    // Build the matching graph: one vertex per constraint plus a private
    // dummy endpoint for every variable with a single membership.
    let m = sub.constraints.len();
    let mut next_dummy = m as u32;
    let mut var_edge: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut free_vars: Vec<usize> = Vec::new();
    for v in 0..n {
        match membership[v].as_slice() {
            [] => free_vars.push(v),
            [j] => {
                var_edge[v] = Some((*j, next_dummy));
                next_dummy += 1;
            }
            [j1, j2] => var_edge[v] = Some((*j1, *j2)),
            _ => unreachable!(),
        }
    }
    let mut b = GraphBuilder::new(next_dummy as usize);
    let mut edge_to_var: std::collections::BTreeMap<(u32, u32), usize> =
        std::collections::BTreeMap::new();
    for (v, e) in var_edge.iter().enumerate() {
        if let Some((a, bb)) = *e {
            let key = if a < bb { (a, bb) } else { (bb, a) };
            // Parallel variables on the same constraint pair: only one can
            // ever be 1; keep the first.
            edge_to_var.entry(key).or_insert(v);
            b.add_edge(key.0, key.1);
        }
    }
    let g = b.build();
    let matching = blossom::max_matching(&g);
    let mut assignment = vec![false; n];
    for v in free_vars {
        assignment[v] = true;
    }
    for (a, bb) in matching.edges() {
        if let Some(&v) = edge_to_var.get(&(a, bb)) {
            assignment[v] = true;
        }
    }
    let value = sub.value(&assignment);
    Some(Solution {
        assignment,
        value,
        exact: true,
        method: Method::Matching,
    })
}

/// Pairwise unit covering constraints → vertex cover = complement of MWIS.
fn try_vertex_cover(sub: &SubInstance, budget: &SolverBudget) -> Option<Solution> {
    let n = sub.n();
    let mut forced_one = vec![false; n];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in &sub.constraints {
        let coeffs = c.coeffs();
        if (c.bound() - 1.0).abs() > FEASIBILITY_EPS {
            return None;
        }
        match coeffs.len() {
            1 => {
                let (v, a) = coeffs[0];
                if (a - 1.0).abs() > FEASIBILITY_EPS {
                    return None;
                }
                forced_one[v as usize] = true;
            }
            2 => {
                let (u, au) = coeffs[0];
                let (v, av) = coeffs[1];
                if (au - 1.0).abs() > FEASIBILITY_EPS || (av - 1.0).abs() > FEASIBILITY_EPS {
                    return None;
                }
                edges.push((u, v));
            }
            _ => return None,
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        if !forced_one[u as usize] && !forced_one[v as usize] {
            b.add_edge(u, v);
        }
    }
    let g = b.build();
    // Min-weight VC over the residual edges = Σw − MWIS, but only vertices
    // incident to residual edges should ever pay; isolated vertices join
    // the IS for free.
    let weights: Vec<u64> = (0..n)
        .map(|v| if forced_one[v] { 0 } else { sub.weights[v] })
        .collect();
    let r = mis::max_weight_independent_set(&g, &weights, budget);
    let mut assignment: Vec<bool> = (0..n).map(|v| !r.in_set[v]).collect();
    for v in 0..n {
        if forced_one[v] {
            assignment[v] = true;
        } else if g.degree(v as u32) == 0 && !forced_one[v] {
            // Unconstrained vertex: never pay for it.
            assignment[v] = false;
        }
    }
    let value = sub.value(&assignment);
    Some(Solution {
        assignment,
        value,
        exact: r.exact,
        method: Method::VertexCover,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use crate::restrict::{covering_restriction, packing_restriction};
    use dapc_graph::gen;

    fn full(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn dispatch_mis() {
        let g = gen::cycle(9);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &full(9));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::ConflictMis);
        assert_eq!(sol.value, 4);
        assert!(sub.is_feasible(&sol.assignment));
    }

    #[test]
    fn dispatch_matching() {
        let g = gen::complete(6);
        let m = problems::max_matching(&g);
        let sub = packing_restriction(&m.ilp, &full(m.ilp.n()));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::Matching);
        assert_eq!(sol.value, 3);
        assert!(sub.is_feasible(&sol.assignment));
    }

    #[test]
    fn dispatch_vertex_cover() {
        let g = gen::cycle(7);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let sub = covering_restriction(&ilp, &full(7));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::VertexCover);
        assert_eq!(sol.value, 4);
        assert!(sub.is_feasible(&sol.assignment));
    }

    #[test]
    fn dispatch_bnb_for_dominating_set() {
        let g = gen::grid(3, 4);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let sub = covering_restriction(&ilp, &full(12));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::BranchBound);
        assert!(sol.exact);
        assert!(sub.is_feasible(&sol.assignment));
        // γ(3×4 grid) = 4 (verified exhaustively).
        assert_eq!(sol.value, 4);
    }

    #[test]
    fn dispatch_trivial() {
        let ilp = crate::instance::IlpInstance::packing(3, vec![2, 0, 5], vec![]);
        let sub = packing_restriction(&ilp, &full(3));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::Trivial);
        assert_eq!(sol.value, 7);
    }

    #[test]
    fn matching_with_pendant_and_parallel_vars() {
        // P3 has vertex degrees 1, 2, 1: pendant edges exercise dummies.
        let g = gen::path(3);
        let m = problems::max_matching(&g);
        let sub = packing_restriction(&m.ilp, &full(2));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.value, 1);
    }

    #[test]
    fn weighted_matching_on_path_uses_conflict_mis() {
        // On a path every matching constraint has support ≤ 2, so the
        // ConflictMis path (which handles weights exactly) takes over.
        let g = gen::path(4);
        let edges: Vec<_> = g.edges().collect();
        let mut constraints = Vec::new();
        for v in g.vertices() {
            let coeffs: Vec<(u32, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a == v || b == v)
                .map(|(i, _)| (i as u32, 1.0))
                .collect();
            constraints.push(crate::instance::Constraint::new(coeffs, 1.0));
        }
        let ilp = crate::instance::IlpInstance::packing(3, vec![1, 5, 1], constraints);
        let sub = packing_restriction(&ilp, &full(3));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::ConflictMis);
        // Middle edge alone (weight 5) beats the two outer edges (1+1).
        assert_eq!(sol.value, 5);
    }

    #[test]
    fn weighted_matching_on_star_falls_back_to_bnb() {
        // A star vertex of degree 3 yields a support-3 constraint, and
        // unequal weights rule out the blossom path — BnB must catch it.
        let g = gen::star(4); // edges (0,1), (0,2), (0,3)
        let edges: Vec<_> = g.edges().collect();
        let mut constraints = Vec::new();
        for v in g.vertices() {
            let coeffs: Vec<(u32, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a == v || b == v)
                .map(|(i, _)| (i as u32, 1.0))
                .collect();
            if !coeffs.is_empty() {
                constraints.push(crate::instance::Constraint::new(coeffs, 1.0));
            }
        }
        let ilp = crate::instance::IlpInstance::packing(3, vec![1, 5, 1], constraints);
        let sub = packing_restriction(&ilp, &full(3));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::BranchBound);
        assert_eq!(sol.value, 5);
    }

    #[test]
    fn vc_with_forced_singleton() {
        // Constraint x0 >= 1 plus edge (1,2).
        let ilp = crate::instance::IlpInstance::covering(
            3,
            vec![4, 1, 2],
            vec![
                crate::instance::Constraint::new(vec![(0, 1.0)], 1.0),
                crate::instance::Constraint::new(vec![(1, 1.0), (2, 1.0)], 1.0),
            ],
        );
        let sub = covering_restriction(&ilp, &full(3));
        let sol = solve(&sub, &SolverBudget::default());
        assert_eq!(sol.method, Method::VertexCover);
        assert_eq!(sol.value, 4 + 1);
        assert!(sol.assignment[0] && sol.assignment[1] && !sol.assignment[2]);
    }

    #[test]
    fn solver_agreement_mis_vs_bnb() {
        // The structured MIS path and the general B&B must agree.
        let mut rng = gen::seeded_rng(77);
        for _ in 0..20 {
            let g = gen::gnp(14, 0.3, &mut rng);
            let ilp = problems::max_independent_set_unweighted(&g);
            let sub = packing_restriction(&ilp, &full(14));
            let structured = try_conflict_mis(&sub, &SolverBudget::unlimited()).unwrap();
            let general = bnb::solve_packing(&sub, &SolverBudget::unlimited());
            assert_eq!(structured.value, general.value);
        }
    }

    #[test]
    fn solver_agreement_vc_vs_bnb() {
        let mut rng = gen::seeded_rng(78);
        for _ in 0..20 {
            let g = gen::gnp(12, 0.3, &mut rng);
            let ilp = problems::min_vertex_cover_unweighted(&g);
            let sub = covering_restriction(&ilp, &full(12));
            let structured = try_vertex_cover(&sub, &SolverBudget::unlimited()).unwrap();
            let general = bnb::solve_covering(&sub, &SolverBudget::unlimited());
            assert_eq!(structured.value, general.value);
        }
    }
}
