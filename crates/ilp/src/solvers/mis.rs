//! Exact maximum-weight independent set via bitset branch & bound.
//!
//! Independent set is the canonical packing problem of the paper (§1.4.2
//! presents the whole packing machinery through MIS), and every carve /
//! cluster step needs optimal local independent sets. This solver handles
//! the conflict-graph form: pairwise constraints only.

use crate::solvers::{SolverBudget, YieldClock};
use dapc_graph::{Graph, Vertex};

/// A dynamic bitset sized for `n` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Bits {
    words: Vec<u64>,
}

impl Bits {
    pub(crate) fn empty(n: usize) -> Self {
        Bits {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn full(n: usize) -> Self {
        let mut b = Bits::empty(n);
        for i in 0..n {
            b.set(i);
        }
        b
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub(crate) fn and_not(&self, other: &Bits) -> Bits {
        Bits {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Result of an independent-set search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MisResult {
    /// Membership mask of the best independent set found.
    pub in_set: Vec<bool>,
    /// Its total weight.
    pub weight: u64,
    /// Whether the search completed (`false` = node budget exhausted; the
    /// result is still a valid independent set, just possibly sub-optimal).
    pub exact: bool,
}

/// Maximum-weight independent set of `g` with the given weights.
///
/// Branch & bound over candidate bitsets: branch on the heaviest candidate
/// vertex, prune with the remaining-weight bound. `budget.node_limit` caps
/// the search tree (`u64::MAX` means "run to optimality") and
/// `budget.yield_every` sets the cooperative-yield period of long solves.
///
/// # Panics
///
/// Panics if `weights.len() != g.n()`.
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::solvers::mis::max_weight_independent_set;
/// use dapc_ilp::solvers::SolverBudget;
///
/// let g = gen::cycle(5);
/// let r = max_weight_independent_set(&g, &[1, 1, 1, 1, 1], &SolverBudget::unlimited());
/// assert_eq!(r.weight, 2);
/// assert!(r.exact);
/// ```
pub fn max_weight_independent_set(g: &Graph, weights: &[u64], budget: &SolverBudget) -> MisResult {
    assert_eq!(weights.len(), g.n());
    if g.max_degree() <= 2 {
        // Disjoint paths and cycles: exact linear-time DP. This is the
        // common case for carved cluster sub-instances of cycle/path
        // benchmarks and keeps large-n experiments exact.
        return mwis_degree_two(g, weights);
    }
    let n = g.n();
    let closed: Vec<Bits> = (0..n)
        .map(|v| {
            let mut b = Bits::empty(n);
            b.set(v);
            for &u in g.neighbors(v as Vertex) {
                b.set(u as usize);
            }
            b
        })
        .collect();
    let mut ctx = SearchCtx {
        weights,
        closed: &closed,
        best_weight: 0,
        best_set: Bits::empty(n),
        nodes_left: budget.node_limit,
        exact: true,
        yield_clock: YieldClock::new(budget.yield_every),
    };
    // Greedy incumbent (weight-descending) to tighten pruning early.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(weights[v]));
    let mut greedy = Bits::empty(n);
    let mut greedy_w = 0u64;
    let mut blocked = Bits::empty(n);
    for v in order {
        if !blocked.get(v) && weights[v] > 0 {
            greedy.set(v);
            greedy_w += weights[v];
            for i in closed[v].iter_ones() {
                blocked.set(i);
            }
        }
    }
    ctx.best_weight = greedy_w;
    ctx.best_set = greedy;
    let mut chosen = Bits::empty(n);
    let cand = Bits::full(n);
    ctx.search(&cand, &mut chosen, 0);
    MisResult {
        in_set: (0..n).map(|v| ctx.best_set.get(v)).collect(),
        weight: ctx.best_weight,
        exact: ctx.exact,
    }
}

struct SearchCtx<'a> {
    weights: &'a [u64],
    closed: &'a [Bits],
    best_weight: u64,
    best_set: Bits,
    nodes_left: u64,
    exact: bool,
    yield_clock: YieldClock,
}

impl SearchCtx<'_> {
    fn search(&mut self, cand: &Bits, chosen: &mut Bits, current: u64) {
        if self.nodes_left == 0 {
            self.exact = false;
            return;
        }
        self.nodes_left -= 1;
        self.yield_clock.tick();
        // Bound: everything still in `cand` could join.
        let potential: u64 = cand.iter_ones().map(|v| self.weights[v]).sum();
        if current + potential <= self.best_weight {
            return;
        }
        if current > self.best_weight {
            self.best_weight = current;
            self.best_set = chosen.clone();
        }
        // Branch vertex: heaviest candidate.
        let Some(v) = cand.iter_ones().max_by_key(|&v| self.weights[v]) else {
            return;
        };
        // Include v.
        if self.weights[v] > 0 {
            let next = cand.and_not(&self.closed[v]);
            chosen.set(v);
            self.search(&next, chosen, current + self.weights[v]);
            chosen.clear(v);
        }
        // Exclude v.
        let mut without = cand.clone();
        without.clear(v);
        self.search(&without, chosen, current);
    }
}

/// Exact MWIS on graphs of maximum degree ≤ 2 (disjoint unions of paths
/// and cycles) by dynamic programming, linear time.
fn mwis_degree_two(g: &Graph, weights: &[u64]) -> MisResult {
    let n = g.n();
    let mut in_set = vec![false; n];
    let mut total = 0u64;
    let mut visited = vec![false; n];
    for s in 0..n as Vertex {
        if visited[s as usize] {
            continue;
        }
        // Trace the component as an ordered walk. Paths start at a
        // degree-≤1 endpoint; cycles start anywhere.
        let start = component_endpoint(g, s, &visited).unwrap_or(s);
        let mut order: Vec<Vertex> = vec![start];
        visited[start as usize] = true;
        let mut prev = start;
        let mut cur = start;
        loop {
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| w != prev && !visited[w as usize]);
            match next {
                Some(w) => {
                    visited[w as usize] = true;
                    order.push(w);
                    prev = cur;
                    cur = w;
                }
                None => break,
            }
        }
        let is_cycle = order.len() >= 3 && g.has_edge(*order.last().unwrap(), start);
        let (w, chosen) = if is_cycle {
            // Case A: exclude the first vertex; DP on the rest as a path.
            let (wa, mut ca) = path_dp(&order[1..], weights);
            ca.insert(0, false);
            // Case B: include the first vertex; its two cycle neighbours
            // (order[1] and order.last()) are forced out.
            let inner = &order[2..order.len() - 1];
            let (wb_inner, cb_inner) = path_dp(inner, weights);
            let wb = wb_inner + weights[start as usize];
            if wb > wa {
                let mut cb = vec![false; order.len()];
                cb[0] = true;
                for (i, &c) in cb_inner.iter().enumerate() {
                    cb[i + 2] = c;
                }
                (wb, cb)
            } else {
                (wa, ca)
            }
        } else {
            path_dp(&order, weights)
        };
        total += w;
        for (i, &c) in chosen.iter().enumerate() {
            if c {
                in_set[order[i] as usize] = true;
            }
        }
    }
    MisResult {
        in_set,
        weight: total,
        exact: true,
    }
}

/// A degree-≤1 vertex of `s`'s unvisited component, if any (i.e. the
/// component is a path, not a cycle).
fn component_endpoint(g: &Graph, s: Vertex, visited: &[bool]) -> Option<Vertex> {
    let mut stack = vec![s];
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(s);
    while let Some(u) = stack.pop() {
        let live_deg = g
            .neighbors(u)
            .iter()
            .filter(|&&w| !visited[w as usize])
            .count();
        if live_deg <= 1 {
            return Some(u);
        }
        for &w in g.neighbors(u) {
            if !visited[w as usize] && seen.insert(w) {
                stack.push(w);
            }
        }
    }
    None
}

/// Classic MWIS DP along an ordered path; returns (weight, chosen flags).
fn path_dp(order: &[Vertex], weights: &[u64]) -> (u64, Vec<bool>) {
    if order.is_empty() {
        return (0, Vec::new());
    }
    let k = order.len();
    // take[i]: best including i; skip[i]: best excluding i.
    let mut take = vec![0u64; k];
    let mut skip = vec![0u64; k];
    take[0] = weights[order[0] as usize];
    for i in 1..k {
        take[i] = skip[i - 1] + weights[order[i] as usize];
        skip[i] = take[i - 1].max(skip[i - 1]);
    }
    let mut chosen = vec![false; k];
    let mut i = k;
    let mut taking = take[k - 1] > skip[k - 1];
    let best = take[k - 1].max(skip[k - 1]);
    while i > 0 {
        i -= 1;
        if taking {
            chosen[i] = true;
            // came from skip[i-1]
            taking = false;
        } else if i > 0 {
            taking = take[i - 1] > skip[i - 1];
        }
    }
    (best, chosen)
}

/// Exhaustive MWIS for cross-checking (exponential; keep `n ≤ 20`).
pub fn brute_force_mis(g: &Graph, weights: &[u64]) -> u64 {
    let n = g.n();
    assert!(n <= 20, "brute force limited to 20 vertices");
    let mut best = 0u64;
    for mask in 0u32..(1 << n) {
        let ok = g
            .edges()
            .all(|(u, v)| mask >> u & 1 == 0 || mask >> v & 1 == 0);
        if ok {
            let w: u64 = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| weights[i])
                .sum();
            best = best.max(w);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn bits_basics() {
        let mut b = Bits::empty(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(64));
        assert!(!b.get(65));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        b.clear(64);
        assert_eq!(b.iter_ones().count(), 2);
        assert!(!Bits::full(3).is_empty());
    }

    #[test]
    fn known_families() {
        let unit = |n: usize| vec![1u64; n];
        assert_eq!(
            max_weight_independent_set(&gen::cycle(5), &unit(5), &SolverBudget::unlimited()).weight,
            2
        );
        assert_eq!(
            max_weight_independent_set(&gen::cycle(8), &unit(8), &SolverBudget::unlimited()).weight,
            4
        );
        assert_eq!(
            max_weight_independent_set(&gen::complete(7), &unit(7), &SolverBudget::unlimited())
                .weight,
            1
        );
        assert_eq!(
            max_weight_independent_set(&gen::star(9), &unit(9), &SolverBudget::unlimited()).weight,
            8
        );
        assert_eq!(
            max_weight_independent_set(&gen::path(7), &unit(7), &SolverBudget::unlimited()).weight,
            4
        );
        assert_eq!(
            max_weight_independent_set(
                &gen::complete_bipartite(4, 6),
                &unit(10),
                &SolverBudget::unlimited()
            )
            .weight,
            6
        );
    }

    #[test]
    fn weighted_beats_cardinality() {
        // Path 0-1-2 with heavy middle: best is {1} (weight 10), not {0,2}.
        let g = gen::path(3);
        let r = max_weight_independent_set(&g, &[1, 10, 1], &SolverBudget::unlimited());
        assert_eq!(r.weight, 10);
        assert_eq!(r.in_set, vec![false, true, false]);
    }

    #[test]
    fn zero_weight_vertices_are_skippable() {
        let g = gen::path(3);
        let r = max_weight_independent_set(&g, &[0, 5, 0], &SolverBudget::unlimited());
        assert_eq!(r.weight, 5);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = gen::seeded_rng(23);
        for trial in 0..50 {
            let n = 5 + trial % 10;
            let g = gen::gnp(n, 0.4, &mut rng);
            let weights: Vec<u64> = (0..n).map(|i| 1 + (i as u64 * 7) % 5).collect();
            let r = max_weight_independent_set(&g, &weights, &SolverBudget::unlimited());
            assert!(r.exact);
            assert_eq!(r.weight, brute_force_mis(&g, &weights), "trial {trial}");
            // Returned set is genuinely independent and has claimed weight.
            let claimed: u64 = (0..n).filter(|&v| r.in_set[v]).map(|v| weights[v]).sum();
            assert_eq!(claimed, r.weight);
            for (u, v) in g.edges() {
                assert!(!(r.in_set[u as usize] && r.in_set[v as usize]));
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported_and_valid() {
        let mut rng = gen::seeded_rng(31);
        let g = gen::gnp(60, 0.2, &mut rng);
        let w = vec![1u64; 60];
        let r = max_weight_independent_set(
            &g,
            &w,
            &SolverBudget {
                node_limit: 50,
                ..Default::default()
            },
        );
        assert!(!r.exact);
        for (u, v) in g.edges() {
            assert!(!(r.in_set[u as usize] && r.in_set[v as usize]));
        }
        assert!(r.weight >= 1);
    }

    #[test]
    fn degree_two_dp_matches_known_values() {
        // Long cycles and paths solved exactly in linear time.
        let r = max_weight_independent_set(
            &gen::cycle(10_001),
            &vec![1; 10_001],
            &SolverBudget::unlimited(),
        );
        assert!(r.exact);
        assert_eq!(r.weight, 5_000);
        let r = max_weight_independent_set(
            &gen::path(10_000),
            &vec![1; 10_000],
            &SolverBudget::unlimited(),
        );
        assert_eq!(r.weight, 5_000);
        // Weighted path: alternating 1, 10.
        let w: Vec<u64> = (0..8).map(|i| if i % 2 == 0 { 1 } else { 10 }).collect();
        let r = max_weight_independent_set(&gen::path(8), &w, &SolverBudget::unlimited());
        assert_eq!(r.weight, 40);
    }

    #[test]
    fn degree_two_dp_matches_brute_force() {
        // Random disjoint unions of paths and cycles.
        let mut rng = gen::seeded_rng(77);
        use rand::RngExt;
        for trial in 0..40 {
            let mut edges: Vec<(u32, u32)> = Vec::new();
            let mut next = 0u32;
            while next < 12 {
                let len = rng.random_range(1..5u32);
                let cycle = len >= 3 && rng.random::<f64>() < 0.5;
                for i in 0..len - 1 {
                    edges.push((next + i, next + i + 1));
                }
                if cycle {
                    edges.push((next + len - 1, next));
                }
                next += len;
            }
            let n = next as usize;
            let g = Graph::from_edges(n, &edges);
            assert!(g.max_degree() <= 2);
            let weights: Vec<u64> = (0..n).map(|_| rng.random_range(0..6u64)).collect();
            let r = max_weight_independent_set(&g, &weights, &SolverBudget::unlimited());
            assert_eq!(r.weight, brute_force_mis(&g, &weights), "trial {trial}");
            // And the set itself is valid with the claimed weight.
            for (u, v) in g.edges() {
                assert!(!(r.in_set[u as usize] && r.in_set[v as usize]));
            }
            let claimed: u64 = (0..n).filter(|&v| r.in_set[v]).map(|v| weights[v]).sum();
            assert_eq!(claimed, r.weight);
        }
    }

    #[test]
    fn scales_to_moderate_sparse_graphs() {
        let g = gen::grid(6, 10); // 60 vertices; grids are easy: alternating set
        let r = max_weight_independent_set(&g, &vec![1u64; 60], &SolverBudget::unlimited());
        assert!(r.exact);
        assert_eq!(r.weight, 30);
    }
}
