//! Greedy heuristics: warm starts for the exact solvers and documented
//! fallback oracles for stress-scale experiments (see DESIGN.md §2, item
//! 2 — the paper assumes free exact local computation; at experiment scale
//! our clusters are solved exactly, and the greedy path only exists for
//! oversized ad-hoc runs, always reported as non-exact).

use crate::instance::{Sense, FEASIBILITY_EPS};
use crate::restrict::SubInstance;

/// Greedy packing: consider variables by descending weight (ties: smaller
/// constraint degree first), insert when all constraints still fit.
/// The result is always feasible.
///
/// # Panics
///
/// Panics if the sub-instance is not packing.
pub fn greedy_packing(sub: &SubInstance) -> Vec<bool> {
    assert_eq!(sub.sense, Sense::Packing);
    let n = sub.n();
    let mut degree = vec![0usize; n];
    for c in &sub.constraints {
        for &(v, _) in c.coeffs() {
            degree[v as usize] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(sub.weights[v]), degree[v]));
    let mut lhs = vec![0.0f64; sub.m()];
    // Per-variable constraint membership for O(deg) updates.
    let mut membership: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (j, c) in sub.constraints.iter().enumerate() {
        for &(v, a) in c.coeffs() {
            membership[v as usize].push((j, a));
        }
    }
    let mut x = vec![false; n];
    for v in order {
        if sub.weights[v] == 0 {
            continue;
        }
        let fits = membership[v]
            .iter()
            .all(|&(j, a)| lhs[j] + a <= sub.constraints[j].bound() + FEASIBILITY_EPS);
        if fits {
            x[v] = true;
            for &(j, a) in &membership[v] {
                lhs[j] += a;
            }
        }
    }
    x
}

/// Greedy covering: repeatedly pick the variable with the best
/// (covered residual demand) / weight ratio until every constraint is met.
/// The result is always feasible when the sub-instance is (restrictions of
/// validated instances always are).
///
/// # Panics
///
/// Panics if the sub-instance is not covering, or if it is infeasible even
/// under the all-ones assignment.
pub fn greedy_covering(sub: &SubInstance) -> Vec<bool> {
    assert_eq!(sub.sense, Sense::Covering);
    let n = sub.n();
    let mut residual: Vec<f64> = sub.constraints.iter().map(|c| c.bound()).collect();
    let mut membership: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (j, c) in sub.constraints.iter().enumerate() {
        for &(v, a) in c.coeffs() {
            membership[v as usize].push((j, a));
        }
    }
    let mut x = vec![false; n];
    let mut unmet: usize = residual.iter().filter(|&&r| r > FEASIBILITY_EPS).count();
    while unmet > 0 {
        // Best marginal coverage per unit weight.
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if x[v] {
                continue;
            }
            let gain: f64 = membership[v]
                .iter()
                .map(|&(j, a)| a.min(residual[j].max(0.0)))
                .sum();
            if gain <= FEASIBILITY_EPS {
                continue;
            }
            let score = gain / (sub.weights[v].max(1)) as f64;
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((v, score));
            }
        }
        let (v, _) = best.expect("covering sub-instance must be satisfiable by all-ones");
        x[v] = true;
        for &(j, a) in &membership[v] {
            let before = residual[j];
            residual[j] -= a;
            if before > FEASIBILITY_EPS && residual[j] <= FEASIBILITY_EPS {
                unmet -= 1;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use crate::restrict::{covering_restriction, packing_restriction};
    use dapc_graph::gen;

    #[test]
    fn greedy_packing_is_feasible_and_maximal() {
        let mut rng = gen::seeded_rng(3);
        let g = gen::gnp(40, 0.15, &mut rng);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &[true; 40]);
        let x = greedy_packing(&sub);
        assert!(sub.is_feasible(&x));
        // Maximality for MIS: every unset vertex has a set neighbour.
        for v in g.vertices() {
            if !x[v as usize] {
                assert!(
                    g.neighbors(v).iter().any(|&u| x[u as usize]) || g.degree(v) == 0,
                    "vertex {v} could have been added"
                );
            }
        }
    }

    #[test]
    fn greedy_packing_prefers_heavy_vertices() {
        let g = gen::star(5);
        let ilp = problems::max_independent_set(&g, vec![100, 1, 1, 1, 1]);
        let sub = packing_restriction(&ilp, &[true; 5]);
        let x = greedy_packing(&sub);
        assert!(x[0], "hub outweighs the leaves");
        assert_eq!(sub.value(&x), 100);
    }

    #[test]
    fn greedy_covering_is_feasible() {
        let mut rng = gen::seeded_rng(4);
        let g = gen::gnp(40, 0.1, &mut rng);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let sub = covering_restriction(&ilp, &[true; 40]);
        let x = greedy_covering(&sub);
        assert!(sub.is_feasible(&x));
    }

    #[test]
    fn greedy_covering_picks_hub_of_star() {
        let g = gen::star(8);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let sub = covering_restriction(&ilp, &[true; 8]);
        let x = greedy_covering(&sub);
        assert_eq!(x.iter().filter(|&&b| b).count(), 1);
        assert!(x[0]);
    }

    #[test]
    fn greedy_covering_respects_weights() {
        // Two vertices can each cover everything; the cheap one should win.
        let sets = vec![vec![0, 1, 2], vec![0, 1, 2]];
        let ilp = problems::set_cover(3, &sets, vec![10, 1]);
        let sub = covering_restriction(&ilp, &[true; 2]);
        let x = greedy_covering(&sub);
        assert_eq!(x, vec![false, true]);
    }

    #[test]
    fn empty_subinstance() {
        let g = gen::cycle(4);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &[false; 4]);
        assert!(greedy_packing(&sub).is_empty());
    }
}
