//! General branch & bound for arbitrary packing / covering sub-instances.
//!
//! Handles the full Definition 1.1/1.2 generality (real coefficients, any
//! support size). The structured fast paths (conflict-graph MIS, blossom
//! matching, vertex cover) live in [`crate::solvers`]; this solver is the
//! backstop that makes *every* local sub-instance solvable exactly, with a
//! node budget so runaway instances degrade to reported-inexact incumbents
//! instead of hanging.

use crate::instance::{Sense, FEASIBILITY_EPS};
use crate::restrict::SubInstance;
use crate::solvers::{greedy, SolverBudget, YieldClock};

/// Outcome of a branch & bound run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BnbResult {
    /// Best assignment found (always feasible).
    pub assignment: Vec<bool>,
    /// Its objective value.
    pub value: u64,
    /// Whether the search tree was exhausted (optimality proven).
    pub exact: bool,
}

/// Exact (budgeted) maximisation of a packing sub-instance.
///
/// # Panics
///
/// Panics if the sub-instance is not packing.
pub fn solve_packing(sub: &SubInstance, budget: &SolverBudget) -> BnbResult {
    assert_eq!(sub.sense, Sense::Packing);
    let n = sub.n();
    // Variable order: descending weight (drives the incumbent up fast).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(sub.weights[v]));
    let suffix_weight: Vec<u64> = {
        let mut s = vec![0u64; n + 1];
        for i in (0..n).rev() {
            s[i] = s[i + 1] + sub.weights[order[i]];
        }
        s
    };
    let mut membership: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (j, c) in sub.constraints.iter().enumerate() {
        for &(v, a) in c.coeffs() {
            membership[v as usize].push((j, a));
        }
    }
    let incumbent = greedy::greedy_packing(sub);
    let mut state = PackState {
        sub,
        order: &order,
        suffix_weight: &suffix_weight,
        membership: &membership,
        best_value: sub.value(&incumbent),
        best: incumbent,
        nodes_left: budget.node_limit,
        exact: true,
        yield_clock: YieldClock::new(budget.yield_every),
        lhs: vec![0.0; sub.m()],
        x: vec![false; n],
    };
    state.dfs(0, 0);
    BnbResult {
        assignment: state.best,
        value: state.best_value,
        exact: state.exact,
    }
}

struct PackState<'a> {
    sub: &'a SubInstance,
    order: &'a [usize],
    suffix_weight: &'a [u64],
    membership: &'a [Vec<(usize, f64)>],
    best: Vec<bool>,
    best_value: u64,
    nodes_left: u64,
    exact: bool,
    yield_clock: YieldClock,
    lhs: Vec<f64>,
    x: Vec<bool>,
}

impl PackState<'_> {
    fn dfs(&mut self, idx: usize, current: u64) {
        if self.nodes_left == 0 {
            self.exact = false;
            return;
        }
        self.nodes_left -= 1;
        self.yield_clock.tick();
        if current + self.suffix_weight[idx] <= self.best_value && idx < self.order.len() {
            return;
        }
        if current > self.best_value {
            self.best_value = current;
            self.best = self.x.clone();
        }
        if idx == self.order.len() {
            return;
        }
        let v = self.order[idx];
        // Branch 1: include v if it fits.
        let fits = self.membership[v]
            .iter()
            .all(|&(j, a)| self.lhs[j] + a <= self.sub.constraints[j].bound() + FEASIBILITY_EPS);
        if fits && self.sub.weights[v] > 0 {
            for &(j, a) in &self.membership[v] {
                self.lhs[j] += a;
            }
            self.x[v] = true;
            self.dfs(idx + 1, current + self.sub.weights[v]);
            self.x[v] = false;
            for &(j, a) in &self.membership[v] {
                self.lhs[j] -= a;
            }
        }
        // Branch 2: exclude v.
        self.dfs(idx + 1, current);
    }
}

/// Exact (budgeted) minimisation of a covering sub-instance.
///
/// # Panics
///
/// Panics if the sub-instance is not covering.
pub fn solve_covering(sub: &SubInstance, budget: &SolverBudget) -> BnbResult {
    assert_eq!(sub.sense, Sense::Covering);
    let n = sub.n();
    // Variable order: descending coverage/weight ratio (mirrors greedy, so
    // good solutions appear early in the left spine).
    let coverage: Vec<f64> = (0..n)
        .map(|v| {
            sub.constraints
                .iter()
                .flat_map(|c| c.coeffs())
                .filter(|&&(u, _)| u as usize == v)
                .map(|&(_, a)| a)
                .sum()
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = coverage[a] / (sub.weights[a].max(1)) as f64;
        let rb = coverage[b] / (sub.weights[b].max(1)) as f64;
        rb.partial_cmp(&ra).expect("finite ratios")
    });
    let mut membership: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (j, c) in sub.constraints.iter().enumerate() {
        for &(v, a) in c.coeffs() {
            membership[v as usize].push((j, a));
        }
    }
    let incumbent = greedy::greedy_covering(sub);
    // `possible[j]`: how much LHS constraint j can still reach given
    // already-excluded variables. Dropping below the bound prunes.
    let possible: Vec<f64> = sub.constraints.iter().map(|c| c.coeff_sum()).collect();
    let mut state = CoverState {
        sub,
        order: &order,
        membership: &membership,
        best_value: sub.value(&incumbent),
        best: incumbent,
        nodes_left: budget.node_limit,
        exact: true,
        yield_clock: YieldClock::new(budget.yield_every),
        residual: sub.constraints.iter().map(|c| c.bound()).collect(),
        possible,
        x: vec![false; n],
    };
    state.dfs(0, 0);
    BnbResult {
        assignment: state.best,
        value: state.best_value,
        exact: state.exact,
    }
}

struct CoverState<'a> {
    sub: &'a SubInstance,
    order: &'a [usize],
    membership: &'a [Vec<(usize, f64)>],
    best: Vec<bool>,
    best_value: u64,
    nodes_left: u64,
    exact: bool,
    yield_clock: YieldClock,
    /// Remaining demand per constraint (≤ 0 means satisfied).
    residual: Vec<f64>,
    /// Maximum LHS still reachable per constraint.
    possible: Vec<f64>,
    x: Vec<bool>,
}

impl CoverState<'_> {
    fn dfs(&mut self, idx: usize, current: u64) {
        if self.nodes_left == 0 {
            self.exact = false;
            return;
        }
        self.nodes_left -= 1;
        self.yield_clock.tick();
        if current >= self.best_value {
            return; // can only get more expensive
        }
        if self.residual.iter().all(|&r| r <= FEASIBILITY_EPS) {
            self.best_value = current;
            self.best = self.x.clone();
            return;
        }
        if idx == self.order.len() {
            return; // demands unmet, no variables left
        }
        let v = self.order[idx];
        // Feasibility pruning for the exclude branch: a constraint that
        // needs v (possible - a_vj < bound) forces inclusion.
        let forced = self.membership[v].iter().any(|&(j, a)| {
            self.residual[j] > FEASIBILITY_EPS
                && self.possible[j] - a < self.sub.constraints[j].bound() - FEASIBILITY_EPS
        });
        // Branch 1: include v.
        for &(j, a) in &self.membership[v] {
            self.residual[j] -= a;
        }
        self.x[v] = true;
        self.dfs(idx + 1, current + self.sub.weights[v]);
        self.x[v] = false;
        for &(j, a) in &self.membership[v] {
            self.residual[j] += a;
        }
        // Branch 2: exclude v (unless forced).
        if !forced {
            for &(j, a) in &self.membership[v] {
                self.possible[j] -= a;
            }
            self.dfs(idx + 1, current);
            for &(j, a) in &self.membership[v] {
                self.possible[j] += a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use crate::restrict::{covering_restriction, packing_restriction};
    use dapc_graph::gen;

    fn full_mask(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn packing_matches_mis_on_cycles() {
        for n in [5usize, 6, 9] {
            let g = gen::cycle(n);
            let ilp = problems::max_independent_set_unweighted(&g);
            let sub = packing_restriction(&ilp, &full_mask(n));
            let r = solve_packing(&sub, &SolverBudget::unlimited());
            assert!(r.exact);
            assert_eq!(r.value as usize, n / 2, "C{n}");
            assert!(sub.is_feasible(&r.assignment));
        }
    }

    #[test]
    fn packing_handles_general_constraints() {
        // Knapsack-ish: one constraint 0.5x0 + 0.6x1 + 0.7x2 <= 1.2,
        // weights 3, 4, 5: best is {1, 2}? 0.6+0.7 = 1.3 > 1.2. {0,2}: 1.2 ok
        // value 8.
        let ilp = crate::instance::IlpInstance::packing(
            3,
            vec![3, 4, 5],
            vec![crate::instance::Constraint::new(
                vec![(0, 0.5), (1, 0.6), (2, 0.7)],
                1.2,
            )],
        );
        let sub = packing_restriction(&ilp, &full_mask(3));
        let r = solve_packing(&sub, &SolverBudget::unlimited());
        assert_eq!(r.value, 8);
        assert_eq!(r.assignment, vec![true, false, true]);
    }

    #[test]
    fn covering_vertex_cover_on_known_graphs() {
        // C5 needs 3 vertices; K4 needs 3; star needs 1.
        for (g, opt) in [
            (gen::cycle(5), 3u64),
            (gen::complete(4), 3),
            (gen::star(7), 1),
            (gen::path(6), 3),
        ] {
            let n = g.n();
            let ilp = problems::min_vertex_cover_unweighted(&g);
            let sub = covering_restriction(&ilp, &full_mask(n));
            let r = solve_covering(&sub, &SolverBudget::unlimited());
            assert!(r.exact);
            assert_eq!(r.value, opt, "{g}");
            assert!(sub.is_feasible(&r.assignment));
        }
    }

    #[test]
    fn covering_dominating_set_on_known_graphs() {
        for (g, opt) in [
            (gen::path(7), 3u64),
            (gen::cycle(9), 3),
            (gen::star(12), 1),
            (gen::grid(3, 3), 3),
        ] {
            let n = g.n();
            let ilp = problems::min_dominating_set_unweighted(&g);
            let sub = covering_restriction(&ilp, &full_mask(n));
            let r = solve_covering(&sub, &SolverBudget::unlimited());
            assert!(r.exact);
            assert_eq!(r.value, opt, "{g}");
        }
    }

    #[test]
    fn covering_weighted_prefers_cheap_cover() {
        // Edge (0,1): vertex 0 costs 10, vertex 1 costs 1.
        let g = gen::path(2);
        let ilp = problems::min_vertex_cover(&g, vec![10, 1]);
        let sub = covering_restriction(&ilp, &full_mask(2));
        let r = solve_covering(&sub, &SolverBudget::unlimited());
        assert_eq!(r.value, 1);
        assert_eq!(r.assignment, vec![false, true]);
    }

    #[test]
    fn covering_fractional_demands() {
        // x0·0.4 + x1·0.4 + x2·0.4 >= 1.0: need all three.
        let ilp = crate::instance::IlpInstance::covering(
            3,
            vec![1, 1, 1],
            vec![crate::instance::Constraint::new(
                vec![(0, 0.4), (1, 0.4), (2, 0.4)],
                1.0,
            )],
        );
        let sub = covering_restriction(&ilp, &full_mask(3));
        let r = solve_covering(&sub, &SolverBudget::unlimited());
        assert_eq!(r.value, 3);
    }

    #[test]
    fn budget_zero_returns_greedy_incumbent() {
        let mut rng = gen::seeded_rng(8);
        let g = gen::gnp(30, 0.2, &mut rng);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let sub = covering_restriction(&ilp, &full_mask(30));
        let r = solve_covering(
            &sub,
            &SolverBudget {
                node_limit: 0,
                ..Default::default()
            },
        );
        assert!(!r.exact);
        assert!(sub.is_feasible(&r.assignment));
    }

    #[test]
    fn random_cross_check_against_exhaustive() {
        let mut rng = gen::seeded_rng(12);
        for trial in 0..30 {
            let n = 6 + trial % 5;
            let p = problems::random_packing(n, 6, 3.min(n), &mut rng);
            let sub = packing_restriction(&p, &full_mask(n));
            let r = solve_packing(&sub, &SolverBudget::unlimited());
            assert_eq!(r.value, exhaustive_best(&sub), "packing trial {trial}");

            let c = problems::random_covering(n, 6, 3.min(n), &mut rng);
            let subc = covering_restriction(&c, &full_mask(n));
            let rc = solve_covering(&subc, &SolverBudget::unlimited());
            assert_eq!(rc.value, exhaustive_best(&subc), "covering trial {trial}");
        }
    }

    /// Exhaustive optimum over all 2^n assignments.
    fn exhaustive_best(sub: &SubInstance) -> u64 {
        let n = sub.n();
        assert!(n <= 20);
        let mut best = match sub.sense {
            Sense::Packing => 0u64,
            Sense::Covering => u64::MAX,
        };
        for mask in 0u32..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if sub.is_feasible(&x) {
                let v = sub.value(&x);
                best = match sub.sense {
                    Sense::Packing => best.max(v),
                    Sense::Covering => best.min(v),
                };
            }
        }
        best
    }
}
