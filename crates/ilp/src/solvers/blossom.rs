//! Edmonds' blossom algorithm for maximum cardinality matching.
//!
//! Matching is the one packing problem in the paper's repertoire whose
//! local sub-instances are solvable in polynomial time, so the "free local
//! computation" assumption of the LOCAL model costs us nothing here: every
//! cluster solves its local matching *exactly* with this `O(V³)`
//! implementation.

use dapc_graph::{Graph, Vertex};
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;

/// A matching: `mate[v]` is the partner of `v`, if any.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// Partner of each vertex (`None` for exposed vertices).
    pub mate: Vec<Option<Vertex>>,
}

impl Matching {
    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// The matched edges in canonical `(u, v)`, `u < v` order.
    pub fn edges(&self) -> Vec<(Vertex, Vertex)> {
        let mut out = Vec::new();
        for (v, &m) in self.mate.iter().enumerate() {
            if let Some(u) = m {
                if (v as Vertex) < u {
                    out.push((v as Vertex, u));
                }
            }
        }
        out
    }

    /// Checks the matching is valid in `g` (symmetric, over real edges).
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.mate.iter().enumerate().all(|(v, &m)| match m {
            None => true,
            Some(u) => g.has_edge(v as Vertex, u) && self.mate[u as usize] == Some(v as Vertex),
        })
    }
}

/// Computes a maximum cardinality matching of `g` via repeated augmenting
/// path searches with blossom contraction.
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::solvers::blossom::max_matching;
///
/// let m = max_matching(&gen::cycle(8));
/// assert_eq!(m.size(), 4); // perfect matching on an even cycle
/// let m = max_matching(&gen::cycle(9));
/// assert_eq!(m.size(), 4); // odd cycle leaves one vertex exposed
/// ```
pub fn max_matching(g: &Graph) -> Matching {
    let n = g.n();
    let mut mate = vec![NONE; n];
    // Greedy warm start halves the number of augmenting searches.
    for v in 0..n as Vertex {
        if mate[v as usize] == NONE {
            for &u in g.neighbors(v) {
                if mate[u as usize] == NONE {
                    mate[v as usize] = u;
                    mate[u as usize] = v;
                    break;
                }
            }
        }
    }
    for root in 0..n as Vertex {
        if mate[root as usize] != NONE {
            continue;
        }
        if let Some((exposed, parent)) = find_augmenting_path(g, &mate, root) {
            // Augment: flip matched/unmatched along the alternating path.
            let mut u = exposed;
            while u != NONE {
                let pv = parent[u as usize];
                let ppv = mate[pv as usize];
                mate[u as usize] = pv;
                mate[pv as usize] = u;
                u = ppv;
            }
        }
    }
    Matching {
        mate: mate.into_iter().map(|m| (m != NONE).then_some(m)).collect(),
    }
}

/// BFS for an augmenting path from `root`, contracting blossoms on the fly.
/// Returns the exposed endpoint and the parent array to augment along.
fn find_augmenting_path(g: &Graph, mate: &[u32], root: Vertex) -> Option<(Vertex, Vec<u32>)> {
    let n = g.n();
    let mut used = vec![false; n];
    let mut parent = vec![NONE; n];
    let mut base: Vec<u32> = (0..n as u32).collect();
    used[root as usize] = true;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &to in g.neighbors(v) {
            if base[v as usize] == base[to as usize] || mate[v as usize] == to {
                continue;
            }
            if to == root
                || (mate[to as usize] != NONE && parent[mate[to as usize] as usize] != NONE)
            {
                // Odd cycle: contract the blossom rooted at the LCA.
                let curbase = lca(mate, &parent, &base, v, to);
                let mut blossom = vec![false; n];
                mark_path(mate, &mut parent, &base, &mut blossom, v, curbase, to);
                mark_path(mate, &mut parent, &base, &mut blossom, to, curbase, v);
                for i in 0..n {
                    if blossom[base[i] as usize] {
                        base[i] = curbase;
                        if !used[i] {
                            used[i] = true;
                            queue.push_back(i as Vertex);
                        }
                    }
                }
            } else if parent[to as usize] == NONE {
                parent[to as usize] = v;
                if mate[to as usize] == NONE {
                    return Some((to, parent));
                }
                used[mate[to as usize] as usize] = true;
                queue.push_back(mate[to as usize]);
            }
        }
    }
    None
}

fn mark_path(
    mate: &[u32],
    parent: &mut [u32],
    base: &[u32],
    blossom: &mut [bool],
    mut v: Vertex,
    b: Vertex,
    mut child: Vertex,
) {
    while base[v as usize] != b {
        blossom[base[v as usize] as usize] = true;
        blossom[base[mate[v as usize] as usize] as usize] = true;
        parent[v as usize] = child;
        child = mate[v as usize];
        v = parent[mate[v as usize] as usize];
    }
}

fn lca(mate: &[u32], parent: &[u32], base: &[u32], a: Vertex, b: Vertex) -> Vertex {
    let n = mate.len();
    let mut seen = vec![false; n];
    let mut v = a;
    loop {
        v = base[v as usize];
        seen[v as usize] = true;
        if mate[v as usize] == NONE {
            break;
        }
        v = parent[mate[v as usize] as usize];
    }
    let mut v = b;
    loop {
        v = base[v as usize];
        if seen[v as usize] {
            return v;
        }
        v = parent[mate[v as usize] as usize];
    }
}

/// Exhaustive maximum matching by edge-subset search — for cross-checking
/// the blossom implementation on small graphs.
pub fn brute_force_matching_size(g: &Graph) -> usize {
    let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    fn rec(edges: &[(Vertex, Vertex)], used: &mut [bool], idx: usize, size: usize) -> usize {
        if idx == edges.len() {
            return size;
        }
        let mut best = rec(edges, used, idx + 1, size);
        let (u, v) = edges[idx];
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            best = best.max(rec(edges, used, idx + 1, size + 1));
            used[u as usize] = false;
            used[v as usize] = false;
        }
        best
    }
    let mut used = vec![false; g.n()];
    rec(&edges, &mut used, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn classic_families() {
        assert_eq!(max_matching(&gen::path(2)).size(), 1);
        assert_eq!(max_matching(&gen::path(7)).size(), 3);
        assert_eq!(max_matching(&gen::cycle(10)).size(), 5);
        assert_eq!(max_matching(&gen::cycle(11)).size(), 5);
        assert_eq!(max_matching(&gen::complete(8)).size(), 4);
        assert_eq!(max_matching(&gen::complete(9)).size(), 4);
        assert_eq!(max_matching(&gen::star(10)).size(), 1);
        assert_eq!(max_matching(&gen::complete_bipartite(3, 5)).size(), 3);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // Petersen: outer C5, inner 5-star polygon, spokes.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5)); // outer cycle
            edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
            edges.push((i, 5 + i)); // spokes
        }
        let g = dapc_graph::Graph::from_edges(10, &edges);
        let m = max_matching(&g);
        assert!(m.is_valid(&g));
        assert_eq!(m.size(), 5);
    }

    #[test]
    fn blossom_contraction_triggered() {
        // Two triangles joined by a path: needs blossom handling.
        let g = dapc_graph::Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0), // triangle A
                (2, 3),
                (3, 4), // bridge
                (4, 5),
                (5, 6),
                (6, 4), // triangle B
                (6, 7),
            ],
        );
        let m = max_matching(&g);
        assert!(m.is_valid(&g));
        assert_eq!(m.size(), brute_force_matching_size(&g));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = gen::seeded_rng(17);
        for trial in 0..60 {
            let n = 4 + (trial % 6);
            let g = gen::gnp(n, 0.45, &mut rng);
            let m = max_matching(&g);
            assert!(m.is_valid(&g), "invalid matching on trial {trial}");
            assert_eq!(
                m.size(),
                brute_force_matching_size(&g),
                "size mismatch on trial {trial}: {g}"
            );
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = dapc_graph::Graph::empty(5);
        assert_eq!(max_matching(&g).size(), 0);
    }

    #[test]
    fn matching_edges_are_canonical() {
        let m = max_matching(&gen::path(4));
        for (u, v) in m.edges() {
            assert!(u < v);
        }
    }
}
