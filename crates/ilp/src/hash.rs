//! The one FNV-1a fold shared by everything that needs a stable,
//! platform-independent digest (instance fingerprints, batch job RNG
//! seeds, subset-solve cache keys). One definition keeps the constants
//! and fold order from drifting between call sites — persisted cache keys
//! and recorded seeds depend on them.
//!
//! Two widths are provided: the 64-bit fold for fingerprints and seeds,
//! and the 128-bit fold for *identity-bearing* keys (the subset-solve
//! caches in `dapc-core` index memoised exact solves by a 128-bit digest
//! of the vertex subset instead of the subset itself, so a lookup costs
//! one fold and no allocation; at 128 bits, collisions are out of reach
//! for any realisable workload).

/// The FNV-1a 64-bit offset basis: the starting state of a fold.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// The FNV-1a 128-bit offset basis: the starting state of a wide fold.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Folds `bytes` into state `h` (start from [`FNV_OFFSET`]).
///
/// ```
/// use dapc_ilp::hash::{fnv1a, FNV_OFFSET};
///
/// let h = fnv1a(fnv1a(FNV_OFFSET, b"a"), b"b");
/// assert_eq!(h, fnv1a(FNV_OFFSET, b"ab"));
/// assert_ne!(h, fnv1a(FNV_OFFSET, b"ba"));
/// ```
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one `u64` into state `h` (little-endian byte order).
pub fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

/// Folds `bytes` into 128-bit state `h` (start from [`FNV128_OFFSET`]).
///
/// ```
/// use dapc_ilp::hash::{fnv1a_128, FNV128_OFFSET};
///
/// let h = fnv1a_128(fnv1a_128(FNV128_OFFSET, b"a"), b"b");
/// assert_eq!(h, fnv1a_128(FNV128_OFFSET, b"ab"));
/// assert_ne!(h, fnv1a_128(FNV128_OFFSET, b"ba"));
/// ```
pub fn fnv1a_128(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Folds one `u32` into 128-bit state `h` (little-endian byte order) —
/// the per-vertex step of the subset-key folds.
pub fn fnv1a_128_u32(h: u128, v: u32) -> u128 {
    fnv1a_128(h, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn wide_fold_matches_reference_vectors() {
        // Published FNV-1a 128-bit test vectors.
        assert_eq!(fnv1a_128(FNV128_OFFSET, b""), FNV128_OFFSET);
        assert_eq!(
            fnv1a_128(FNV128_OFFSET, b"a"),
            0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964
        );
        assert_eq!(
            fnv1a_128(FNV128_OFFSET, b"foobar"),
            0x343e_1662_793c_64bf_6f0d_3597_ba44_6f18
        );
    }

    #[test]
    fn u32_wide_fold_is_byte_fold() {
        let v = 0x0102_0304u32;
        assert_eq!(
            fnv1a_128_u32(FNV128_OFFSET, v),
            fnv1a_128(FNV128_OFFSET, &v.to_le_bytes())
        );
        // Order-sensitive: the fold distinguishes permutations.
        let a = fnv1a_128_u32(fnv1a_128_u32(FNV128_OFFSET, 1), 2);
        let b = fnv1a_128_u32(fnv1a_128_u32(FNV128_OFFSET, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn u64_fold_is_byte_fold() {
        let v = 0x0102_0304_0506_0708u64;
        assert_eq!(
            fnv1a_u64(FNV_OFFSET, v),
            fnv1a(FNV_OFFSET, &v.to_le_bytes())
        );
    }
}
