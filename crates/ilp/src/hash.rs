//! The one FNV-1a fold shared by everything that needs a stable,
//! platform-independent 64-bit digest (instance fingerprints, batch job
//! RNG seeds). One definition keeps the constants and fold order from
//! drifting between call sites — persisted cache keys and recorded seeds
//! depend on them.

/// The FNV-1a 64-bit offset basis: the starting state of a fold.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds `bytes` into state `h` (start from [`FNV_OFFSET`]).
///
/// ```
/// use dapc_ilp::hash::{fnv1a, FNV_OFFSET};
///
/// let h = fnv1a(fnv1a(FNV_OFFSET, b"a"), b"b");
/// assert_eq!(h, fnv1a(FNV_OFFSET, b"ab"));
/// assert_ne!(h, fnv1a(FNV_OFFSET, b"ba"));
/// ```
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one `u64` into state `h` (little-endian byte order).
pub fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_fold_is_byte_fold() {
        let v = 0x0102_0304_0506_0708u64;
        assert_eq!(
            fnv1a_u64(FNV_OFFSET, v),
            fnv1a(FNV_OFFSET, &v.to_le_bytes())
        );
    }
}
