//! Local sub-instances `P^local_S` and `Q^local_S` (Observations 2.1–2.2).
//!
//! *Packing* (§2.2): the local problem on `S` keeps **all** constraints,
//! with the variables outside `S` set to zero — because coefficients are
//! non-negative, this is exactly the restriction of each constraint to its
//! `S`-support with an unchanged bound, and any local solution extends to a
//! globally feasible one by zero-filling.
//!
//! *Covering* (§2.3): the local problem on `S` keeps only the constraints
//! whose support lies **entirely inside** `S` — inter-cluster constraints
//! are someone else's responsibility (the sparse cover guarantees each is
//! fully inside at least one cluster).

use crate::instance::{Constraint, IlpInstance, Sense};
use dapc_graph::Vertex;

/// A reindexed sub-instance with its mapping back to global variables.
#[derive(Clone, Debug)]
pub struct SubInstance {
    /// Packing or covering (inherited from the parent instance).
    pub sense: Sense,
    /// Global variable ids, sorted; local variable `i` is `vars[i]`.
    pub vars: Vec<Vertex>,
    /// Local weights (same order as `vars`).
    pub weights: Vec<u64>,
    /// Constraints over *local* indices.
    pub constraints: Vec<Constraint>,
}

impl SubInstance {
    /// Number of local variables.
    pub fn n(&self) -> usize {
        self.vars.len()
    }

    /// Number of local constraints.
    pub fn m(&self) -> usize {
        self.constraints.len()
    }

    /// Total local weight.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Objective value of a local assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length mismatches.
    pub fn value(&self, x: &[bool]) -> u64 {
        assert_eq!(x.len(), self.n());
        x.iter()
            .zip(&self.weights)
            .filter(|(&xi, _)| xi)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Whether a local assignment satisfies all local constraints.
    pub fn is_feasible(&self, x: &[bool]) -> bool {
        assert_eq!(x.len(), self.n());
        self.constraints.iter().all(|c| match self.sense {
            Sense::Packing => c.lhs(x) <= c.bound() + crate::instance::FEASIBILITY_EPS,
            Sense::Covering => c.lhs(x) + crate::instance::FEASIBILITY_EPS >= c.bound(),
        })
    }

    /// Writes a local assignment into a global one (only touches the
    /// sub-instance's variables).
    pub fn lift_into(&self, local: &[bool], global: &mut [bool]) {
        assert_eq!(local.len(), self.n());
        for (i, &v) in self.vars.iter().enumerate() {
            global[v as usize] = local[i];
        }
    }
}

/// Builds `P^local_S` for a packing instance: every constraint touching `S`
/// is kept, restricted to its `S`-support, bound unchanged (Observation
/// 2.1). Constraints whose restricted support is empty are dropped (they
/// are vacuous for variables in `S`).
///
/// # Panics
///
/// Panics if the instance is not packing or the mask length mismatches.
pub fn packing_restriction(ilp: &IlpInstance, subset: &[bool]) -> SubInstance {
    assert_eq!(ilp.sense(), Sense::Packing, "expected a packing instance");
    assert_eq!(subset.len(), ilp.n());
    let (vars, local_id) = collect_vars(subset);
    let weights = vars.iter().map(|&v| ilp.weight(v)).collect();
    let mut constraints = Vec::new();
    for c in ilp.constraints() {
        let coeffs: Vec<(Vertex, f64)> = c
            .coeffs()
            .iter()
            .filter(|&&(v, _)| subset[v as usize])
            .map(|&(v, a)| (local_id[v as usize], a))
            .collect();
        if !coeffs.is_empty() {
            constraints.push(Constraint::new(coeffs, c.bound()));
        }
    }
    SubInstance {
        sense: Sense::Packing,
        vars,
        weights,
        constraints,
    }
}

/// Builds `Q^local_S` for a covering instance: only constraints fully
/// inside `S` are kept (Observation 2.2).
///
/// # Panics
///
/// Panics if the instance is not covering or the mask length mismatches.
pub fn covering_restriction(ilp: &IlpInstance, subset: &[bool]) -> SubInstance {
    covering_restriction_with_fixed(ilp, subset, None)
}

/// Builds `Q^local_S` while honouring variables already **fixed to one** by
/// earlier carving steps (§5.1.2 "fixing assignment"): fixed variables are
/// removed from the sub-instance and their contribution is subtracted from
/// each bound, so the local solver pays nothing for them.
///
/// # Panics
///
/// Panics if the instance is not covering or a mask length mismatches.
pub fn covering_restriction_with_fixed(
    ilp: &IlpInstance,
    subset: &[bool],
    fixed_ones: Option<&[bool]>,
) -> SubInstance {
    assert_eq!(ilp.sense(), Sense::Covering, "expected a covering instance");
    assert_eq!(subset.len(), ilp.n());
    if let Some(f) = fixed_ones {
        assert_eq!(f.len(), ilp.n());
    }
    let is_fixed = |v: Vertex| fixed_ones.is_some_and(|f| f[v as usize]);
    let free = |v: Vertex| subset[v as usize] && !is_fixed(v);
    let (vars, local_id) = {
        let mask: Vec<bool> = (0..ilp.n()).map(|v| free(v as Vertex)).collect();
        collect_vars(&mask)
    };
    let weights = vars.iter().map(|&v| ilp.weight(v)).collect();
    let mut constraints = Vec::new();
    for c in ilp.constraints() {
        if !c.coeffs().iter().all(|&(v, _)| subset[v as usize]) {
            continue; // not fully inside S
        }
        let fixed_contribution: f64 = c
            .coeffs()
            .iter()
            .filter(|&&(v, _)| is_fixed(v))
            .map(|&(_, a)| a)
            .sum();
        let bound = (c.bound() - fixed_contribution).max(0.0);
        if bound <= crate::instance::FEASIBILITY_EPS {
            continue; // already satisfied by fixed variables
        }
        let coeffs: Vec<(Vertex, f64)> = c
            .coeffs()
            .iter()
            .filter(|&&(v, _)| !is_fixed(v))
            .map(|&(v, a)| (local_id[v as usize], a))
            .collect();
        constraints.push(Constraint::new(coeffs, bound));
    }
    SubInstance {
        sense: Sense::Covering,
        vars,
        weights,
        constraints,
    }
}

fn collect_vars(subset: &[bool]) -> (Vec<Vertex>, Vec<Vertex>) {
    let mut vars = Vec::new();
    let mut local_id = vec![u32::MAX; subset.len()];
    for (v, &inside) in subset.iter().enumerate() {
        if inside {
            local_id[v] = vars.len() as Vertex;
            vars.push(v as Vertex);
        }
    }
    (vars, local_id)
}

/// Builds a membership mask from a vertex list.
pub fn mask_of(n: usize, vertices: &[Vertex]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in vertices {
        mask[v as usize] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use dapc_graph::gen;

    #[test]
    fn packing_restriction_keeps_cross_constraints() {
        // P4: edges (0,1), (1,2), (2,3); restrict to S = {1, 2}.
        let g = gen::path(4);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &mask_of(4, &[1, 2]));
        assert_eq!(sub.vars, vec![1, 2]);
        // Edge (0,1) restricted to {1}: "x1 <= 1" — kept but vacuous; edge
        // (1,2) restricted fully; edge (2,3) restricted to {2}.
        assert_eq!(sub.m(), 3);
        assert!(sub.is_feasible(&[true, false]));
        assert!(!sub.is_feasible(&[true, true]));
    }

    #[test]
    fn packing_local_solution_lifts_to_global_feasible() {
        let g = gen::cycle(6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &mask_of(6, &[0, 1, 2]));
        let local = vec![true, false, true];
        assert!(sub.is_feasible(&local));
        let mut global = vec![false; 6];
        sub.lift_into(&local, &mut global);
        assert!(
            ilp.is_feasible(&global),
            "Observation 2.1 zero-fill property"
        );
    }

    #[test]
    fn covering_restriction_drops_cross_constraints() {
        let g = gen::path(4);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let sub = covering_restriction(&ilp, &mask_of(4, &[1, 2]));
        // Only edge (1,2) lies fully inside.
        assert_eq!(sub.m(), 1);
        assert!(sub.is_feasible(&[true, false]));
        assert!(!sub.is_feasible(&[false, false]));
    }

    #[test]
    fn covering_fixed_vars_reduce_bounds() {
        let g = gen::path(3); // edges (0,1), (1,2)
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let subset = mask_of(3, &[0, 1, 2]);
        let fixed = mask_of(3, &[1]);
        let sub = covering_restriction_with_fixed(&ilp, &subset, Some(&fixed));
        // Vertex 1 is fixed to one: both edges are already covered, no
        // constraints remain, and variable 1 is absent.
        assert_eq!(sub.m(), 0);
        assert_eq!(sub.vars, vec![0, 2]);
        assert!(sub.is_feasible(&[false, false]));
    }

    #[test]
    fn covering_fixed_vars_partial_bound() {
        // One constraint x0 + x1 + x2 >= 2 with x2 fixed.
        let ilp = crate::instance::IlpInstance::covering(
            3,
            vec![1, 1, 1],
            vec![crate::instance::Constraint::new(
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                2.0,
            )],
        );
        let sub =
            covering_restriction_with_fixed(&ilp, &[true, true, true], Some(&[false, false, true]));
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.constraints[0].bound(), 1.0);
        assert!(sub.is_feasible(&[true, false]));
        assert!(!sub.is_feasible(&[false, false]));
    }

    #[test]
    fn empty_subset_yields_empty_subinstance() {
        let g = gen::cycle(4);
        let ilp = problems::max_independent_set_unweighted(&g);
        let sub = packing_restriction(&ilp, &[false; 4]);
        assert_eq!(sub.n(), 0);
        assert_eq!(sub.m(), 0);
        assert!(sub.is_feasible(&[]));
    }
}
