//! Global solution verification and approximation-ratio reporting.

use crate::instance::{IlpInstance, Sense};
use crate::restrict::{covering_restriction, packing_restriction};
use crate::solvers::{self, SolverBudget};

/// A verified global solution with its quality relative to a reference
/// optimum.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Objective value of the solution.
    pub value: u64,
    /// Reference optimum (exact if `opt_exact`).
    pub opt: u64,
    /// Whether the reference optimum was proven optimal.
    pub opt_exact: bool,
    /// `value / opt` for packing, `value / opt` for covering (so packing
    /// ratios are ≤ 1 and covering ratios ≥ 1 when `opt > 0`).
    pub ratio: f64,
}

impl Verdict {
    /// Whether the solution is within the `(1 − ε)` packing guarantee.
    pub fn within_packing(&self, eps: f64) -> bool {
        self.feasible && self.value as f64 >= (1.0 - eps) * self.opt as f64 - 1e-9
    }

    /// Whether the solution is within the `(1 + ε)` covering guarantee.
    pub fn within_covering(&self, eps: f64) -> bool {
        self.feasible && self.value as f64 <= (1.0 + eps) * self.opt as f64 + 1e-9
    }
}

/// A cheap feasibility-only verdict: no reference optimum is computed, so
/// this is safe to embed in every solver run (unlike [`verdict`], whose
/// exact reference solve can dwarf the solver being verified).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeasibilityReport {
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Objective value of the solution.
    pub value: u64,
    /// Ids of violated constraints (empty iff feasible).
    pub violated: Vec<usize>,
}

/// Checks a solution against the instance without solving for the optimum.
///
/// # Examples
///
/// ```
/// use dapc_graph::gen;
/// use dapc_ilp::{problems, verify};
///
/// let ilp = problems::min_vertex_cover_unweighted(&gen::path(3));
/// let r = verify::check(&ilp, &[false, true, false]);
/// assert!(r.feasible);
/// assert_eq!(r.value, 1);
/// assert!(verify::check(&ilp, &[false, false, false]).violated.len() == 2);
/// ```
pub fn check(ilp: &IlpInstance, x: &[bool]) -> FeasibilityReport {
    let violated = ilp.violated_constraints(x);
    FeasibilityReport {
        feasible: violated.is_empty(),
        value: ilp.value(x),
        violated,
    }
}

/// Computes the exact (budgeted) optimum of a whole instance by treating it
/// as one big local sub-instance.
pub fn optimum(ilp: &IlpInstance, budget: &SolverBudget) -> (u64, bool) {
    let full = vec![true; ilp.n()];
    let sub = match ilp.sense() {
        Sense::Packing => packing_restriction(ilp, &full),
        Sense::Covering => covering_restriction(ilp, &full),
    };
    let sol = solvers::solve(&sub, budget);
    (sol.value, sol.exact)
}

/// Verifies a solution against the instance and a freshly computed
/// reference optimum.
pub fn verdict(ilp: &IlpInstance, x: &[bool], budget: &SolverBudget) -> Verdict {
    let (opt, opt_exact) = optimum(ilp, budget);
    verdict_against(ilp, x, opt, opt_exact)
}

/// Verifies a solution against a known reference optimum.
pub fn verdict_against(ilp: &IlpInstance, x: &[bool], opt: u64, opt_exact: bool) -> Verdict {
    let feasible = ilp.is_feasible(x);
    let value = ilp.value(x);
    let ratio = if opt == 0 {
        if value == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        value as f64 / opt as f64
    };
    Verdict {
        feasible,
        value,
        opt,
        opt_exact,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems;
    use dapc_graph::gen;

    #[test]
    fn optimum_of_known_instances() {
        let g = gen::cycle(10);
        let mis = problems::max_independent_set_unweighted(&g);
        assert_eq!(optimum(&mis, &SolverBudget::default()), (5, true));
        let vc = problems::min_vertex_cover_unweighted(&g);
        assert_eq!(optimum(&vc, &SolverBudget::default()), (5, true));
        let ds = problems::min_dominating_set_unweighted(&g);
        assert_eq!(optimum(&ds, &SolverBudget::default()), (4, true));
    }

    #[test]
    fn verdict_flags_ratios() {
        let g = gen::cycle(8);
        let mis = problems::max_independent_set_unweighted(&g);
        // A 3-vertex independent set in C8 (opt 4): ratio 0.75.
        let x = [true, false, true, false, true, false, false, false];
        let v = verdict(&mis, &x, &SolverBudget::default());
        assert!(v.feasible);
        assert_eq!(v.opt, 4);
        assert!((v.ratio - 0.75).abs() < 1e-12);
        assert!(v.within_packing(0.3));
        assert!(!v.within_packing(0.1));
    }

    #[test]
    fn verdict_detects_infeasible() {
        let g = gen::path(3);
        let vc = problems::min_vertex_cover_unweighted(&g);
        let v = verdict(&vc, &[false, false, false], &SolverBudget::default());
        assert!(!v.feasible);
        assert!(!v.within_covering(10.0));
    }

    #[test]
    fn covering_ratio_direction() {
        let g = gen::star(6);
        let ds = problems::min_dominating_set_unweighted(&g);
        // Taking hub + one leaf: value 2, opt 1 -> ratio 2.
        let mut x = vec![false; 6];
        x[0] = true;
        x[1] = true;
        let v = verdict(&ds, &x, &SolverBudget::default());
        assert_eq!(v.opt, 1);
        assert!((v.ratio - 2.0).abs() < 1e-12);
        assert!(v.within_covering(1.0));
        assert!(!v.within_covering(0.5));
    }

    #[test]
    fn zero_opt_edge_case() {
        let ilp = crate::instance::IlpInstance::covering(2, vec![1, 1], vec![]);
        let v = verdict(&ilp, &[false, false], &SolverBudget::default());
        assert_eq!(v.opt, 0);
        assert_eq!(v.ratio, 1.0);
        let v2 = verdict(&ilp, &[true, false], &SolverBudget::default());
        assert_eq!(v2.ratio, f64::INFINITY);
    }
}
