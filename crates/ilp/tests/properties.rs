//! Property-based tests for the ILP substrate.

use dapc_graph::{gen, Graph, Vertex};
use dapc_ilp::restrict::{covering_restriction, mask_of, packing_restriction};
use dapc_ilp::solvers::{self, SolverBudget};
use dapc_ilp::{problems, Sense};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as Vertex, 0..n as Vertex), 0..(2 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observation 2.1, first inequality: W(P*, S) <= W(P^local_S, S).
    #[test]
    fn observation_2_1_lower(g in arb_graph(12), seed in 0u64..20) {
        let ilp = problems::max_independent_set_unweighted(&g);
        let n = ilp.n();
        let full = vec![true; n];
        let opt = solvers::solve(&packing_restriction(&ilp, &full), &SolverBudget::unlimited());
        prop_assert!(opt.exact);
        // Random subset S.
        let mut rng = gen::seeded_rng(seed);
        use rand::RngExt;
        let subset: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.5).collect();
        let local = solvers::solve(&packing_restriction(&ilp, &subset), &SolverBudget::unlimited());
        prop_assert!(local.exact);
        // W(P*, S): restrict the global optimum's assignment to S.
        let mut global = vec![false; n];
        packing_restriction(&ilp, &full).lift_into(&opt.assignment, &mut global);
        let w_opt_on_s = ilp.value_on(&global, &subset);
        prop_assert!(w_opt_on_s <= local.value,
            "W(P*, S) = {} must be <= W(P^local_S, S) = {}", w_opt_on_s, local.value);
    }

    /// Observation 2.2: W(Q^local_S, S) <= W(Q*, S) <= W(Q*, V).
    #[test]
    fn observation_2_2(g in arb_graph(10), seed in 0u64..20) {
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let n = ilp.n();
        let full = vec![true; n];
        let opt = solvers::solve(&covering_restriction(&ilp, &full), &SolverBudget::unlimited());
        prop_assert!(opt.exact);
        let mut rng = gen::seeded_rng(seed);
        use rand::RngExt;
        let subset: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.6).collect();
        let local = solvers::solve(&covering_restriction(&ilp, &subset), &SolverBudget::unlimited());
        prop_assert!(local.exact);
        let mut global = vec![false; n];
        covering_restriction(&ilp, &full).lift_into(&opt.assignment, &mut global);
        let w_opt_on_s = ilp.value_on(&global, &subset);
        prop_assert!(local.value <= w_opt_on_s,
            "W(Q^local_S, S) = {} must be <= W(Q*, S) = {}", local.value, w_opt_on_s);
        prop_assert!(w_opt_on_s <= opt.value);
    }

    /// Zero-filled local packing solutions are globally feasible.
    #[test]
    fn packing_zero_fill_feasible(g in arb_graph(14), keep_mod in 2usize..4) {
        let ilp = problems::max_independent_set_unweighted(&g);
        let n = ilp.n();
        let keep: Vec<Vertex> = (0..n as Vertex).filter(|v| (*v as usize).is_multiple_of(keep_mod)).collect();
        let sub = packing_restriction(&ilp, &mask_of(n, &keep));
        let sol = solvers::solve(&sub, &SolverBudget::unlimited());
        let mut global = vec![false; n];
        sub.lift_into(&sol.assignment, &mut global);
        prop_assert!(ilp.is_feasible(&global));
    }

    /// The solver never returns an infeasible assignment, on any sense.
    #[test]
    fn solver_always_feasible(n in 4usize..12, m in 1usize..10, seed in 0u64..30) {
        let mut rng = gen::seeded_rng(seed);
        for sense in [Sense::Packing, Sense::Covering] {
            let ilp = match sense {
                Sense::Packing => problems::random_packing(n, m, 3.min(n), &mut rng),
                Sense::Covering => problems::random_covering(n, m, 3.min(n), &mut rng),
            };
            let sub = match sense {
                Sense::Packing => packing_restriction(&ilp, &vec![true; n]),
                Sense::Covering => covering_restriction(&ilp, &vec![true; n]),
            };
            let sol = solvers::solve(&sub, &SolverBudget::unlimited());
            prop_assert!(sub.is_feasible(&sol.assignment));
            prop_assert_eq!(sol.value, sub.value(&sol.assignment));
        }
    }

    /// Matching ILP optimum equals the blossom matching size.
    #[test]
    fn matching_ilp_equals_blossom(g in arb_graph(10)) {
        let m = problems::max_matching(&g);
        if m.ilp.n() == 0 { return Ok(()); }
        let sub = packing_restriction(&m.ilp, &vec![true; m.ilp.n()]);
        let sol = solvers::solve(&sub, &SolverBudget::unlimited());
        let blossom = dapc_ilp::solvers::blossom::max_matching(&g);
        prop_assert!(sol.exact);
        prop_assert_eq!(sol.value as usize, blossom.size());
    }

    /// Vertex cover + independent set = n on every graph (König-free
    /// complement identity, holds pointwise for optima).
    #[test]
    fn vc_plus_mis_is_n(g in arb_graph(12)) {
        let n = g.n();
        let mis = problems::max_independent_set_unweighted(&g);
        let vc = problems::min_vertex_cover_unweighted(&g);
        let a = solvers::solve(&packing_restriction(&mis, &vec![true; n]), &SolverBudget::unlimited());
        let b = solvers::solve(&covering_restriction(&vc, &vec![true; n]), &SolverBudget::unlimited());
        prop_assert!(a.exact && b.exact);
        prop_assert_eq!(a.value + b.value, n as u64);
    }
}
