//! Idle-worker parking: an eventcount, so workers sleep on a condvar
//! instead of spinning on (or waiting inside) a shared queue lock, and
//! submitters pay nothing to wake nobody.
//!
//! The protocol is the classic three-step eventcount:
//!
//! 1. the worker calls [`Parking::prepare`] (registers as a waiter and
//!    snapshots the epoch), then
//! 2. re-checks every queue *under the queue locks* — not the advisory
//!    length mirrors — and either [`Parking::cancel`]s on finding work or
//! 3. calls [`Parking::park`] with the snapshot, which sleeps only while
//!    the epoch is unchanged.
//!
//! A submitter pushes first, then calls [`Parking::wake_one`]. The
//! lost-wakeup argument: if the waiter's re-check missed the push, the
//! waiter's queue-lock release (inside `prepare`'s registration, which
//! precedes the re-check) is ordered before the submitter's push-lock
//! acquisition, so the submitter's waiter-count read observes the
//! registration, takes the slow path, bumps the epoch under the park
//! lock and notifies — and the waiter, which has not yet slept, finds
//! the epoch moved and returns immediately. If the re-check *did* see
//! the push, the waiter cancels and never sleeps. Either way nobody
//! sleeps on available work.
//!
//! The fast path is the whole point: `wake_one` with no registered
//! waiter is a single sequentially-consistent load — no lock, no
//! syscall — so a worker pushing hundreds of nested subtasks into its
//! own deque (the high-fan-out prep regime) never touches the park lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

pub(crate) struct Parking {
    epoch: Mutex<u64>,
    wake: Condvar,
    /// Workers that called `prepare` and have not yet `cancel`led or
    /// finished `park`. SeqCst: the zero-check in `wake_one` must be
    /// totally ordered against registrations (see the module docs).
    waiters: AtomicUsize,
}

impl Parking {
    pub(crate) fn new() -> Self {
        Parking {
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Registers the caller as a waiter and snapshots the epoch. Must be
    /// paired with exactly one `cancel` or `park`.
    pub(crate) fn prepare(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        *self.epoch.lock().expect("park lock")
    }

    /// Deregisters without sleeping (the re-check found work).
    pub(crate) fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Sleeps until the epoch moves past the `prepare` snapshot.
    pub(crate) fn park(&self, seen: u64) {
        let mut epoch = self.epoch.lock().expect("park lock");
        while *epoch == seen {
            epoch = self.wake.wait(epoch).expect("park lock");
        }
        drop(epoch);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake-one-on-push: free when nobody is registered, otherwise bumps
    /// the epoch under the lock and notifies one sleeper.
    pub(crate) fn wake_one(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut epoch = self.epoch.lock().expect("park lock");
        *epoch += 1;
        drop(epoch);
        self.wake.notify_one();
    }

    /// Wakes every sleeper (shutdown).
    pub(crate) fn wake_all(&self) {
        let mut epoch = self.epoch.lock().expect("park lock");
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wake_before_park_is_not_lost() {
        // The epoch moved between prepare and park, so park must return
        // immediately instead of sleeping on a stale snapshot.
        let p = Parking::new();
        let seen = p.prepare();
        p.wake_one();
        p.park(seen); // would deadlock if the wake were lost
    }

    #[test]
    fn wake_one_without_waiters_is_free_and_epoch_neutral() {
        let p = Parking::new();
        p.wake_one();
        let seen = p.prepare();
        p.cancel();
        assert_eq!(seen, 0, "no-waiter wake must not burn an epoch");
    }

    #[test]
    fn parked_thread_is_woken() {
        let p = Arc::new(Parking::new());
        let woke = Arc::new(AtomicBool::new(false));
        let (p2, woke2) = (Arc::clone(&p), Arc::clone(&woke));
        let sleeper = std::thread::spawn(move || {
            let seen = p2.prepare();
            p2.park(seen);
            woke2.store(true, Ordering::SeqCst);
        });
        // Keep nudging until the sleeper reports back: each wake_one
        // either finds the registration (and bumps the epoch) or the
        // sleeper has not registered yet and we retry.
        while !woke.load(Ordering::SeqCst) {
            p.wake_one();
            std::thread::yield_now();
        }
        sleeper.join().expect("sleeper joins");
    }

    #[test]
    fn wake_all_releases_multiple_sleepers() {
        let p = Arc::new(Parking::new());
        let done = Arc::new(AtomicUsize::new(0));
        let sleepers: Vec<_> = (0..3)
            .map(|_| {
                let (p, done) = (Arc::clone(&p), Arc::clone(&done));
                std::thread::spawn(move || {
                    let seen = p.prepare();
                    p.park(seen);
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        while done.load(Ordering::SeqCst) < 3 {
            p.wake_all();
            std::thread::yield_now();
        }
        for s in sleepers {
            s.join().expect("sleeper joins");
        }
    }
}
