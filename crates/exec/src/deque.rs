//! The work queue primitive of the stealing executor: a double-ended
//! queue in the Chase–Lev *shape* — the owning worker pushes and pops at
//! the bottom (LIFO, depth-first), thieves take from the top (FIFO, the
//! oldest and therefore coarsest task) — shared by the per-worker deques
//! and the global injector.
//!
//! The crate forbids `unsafe`, so this is not the lock-free Chase–Lev
//! *implementation*: the buffer sits behind a `Mutex`. What the shape
//! buys even so is the removal of the old executor's global bottleneck —
//! each worker's pushes and pops contend only with the occasional thief
//! on that worker's own short critical section, never with every other
//! submitter and worker in the process. An atomic length mirror lets
//! thieves and idle-path probes skip empty deques without touching the
//! lock at all; the mirror is advisory (relaxed), so the only callers
//! allowed to *conclude* emptiness from it are ones where staleness is
//! harmless (a skipped steal retries, a skipped yield just keeps
//! solving). The parking path re-checks under the real locks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A lockable deque with an advisory length mirror.
pub(crate) struct WorkDeque<T> {
    inner: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> WorkDeque<T> {
    pub(crate) fn new() -> Self {
        WorkDeque {
            inner: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Advisory length (relaxed read of the mirror, no lock).
    pub(crate) fn probe_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().expect("work deque lock")
    }

    fn sync_len(&self, q: &VecDeque<T>) {
        self.len.store(q.len(), Ordering::Relaxed);
    }

    /// Owner push (bottom / LIFO end). Returns the new length.
    pub(crate) fn push_bottom(&self, item: T) -> usize {
        let mut q = self.lock();
        q.push_back(item);
        self.sync_len(&q);
        q.len()
    }

    /// Push at the *top*: used by the injector for nested spawns from
    /// threads that are not pool workers, so finer-grained work a coarser
    /// task is waiting on is taken before queued coarse work (the
    /// depth-first rule of the old shared queue). Returns the new length.
    pub(crate) fn push_top(&self, item: T) -> usize {
        let mut q = self.lock();
        q.push_front(item);
        self.sync_len(&q);
        q.len()
    }

    /// Owner pop (bottom / LIFO end).
    pub(crate) fn pop_bottom(&self) -> Option<T> {
        let mut q = self.lock();
        let item = q.pop_back();
        self.sync_len(&q);
        item
    }

    /// Thief pop (top / FIFO end). Also how workers drain the injector.
    pub(crate) fn steal_top(&self) -> Option<T> {
        let mut q = self.lock();
        let item = q.pop_front();
        self.sync_len(&q);
        item
    }

    /// Removes the bottom-most item matching `pred` (most recently
    /// pushed first — the owner's depth-first help order).
    pub(crate) fn take_matching_bottom(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut q = self.lock();
        let item = q.iter().rposition(pred).and_then(|i| q.remove(i));
        self.sync_len(&q);
        item
    }

    /// Removes the top-most item matching `pred` (oldest first — the
    /// order a thief or a foreign scope owner scans in).
    pub(crate) fn take_matching_top(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut q = self.lock();
        let item = q.iter().position(pred).and_then(|i| q.remove(i));
        self.sync_len(&q);
        item
    }

    /// Whether any item matches, under the real lock (not the mirror).
    /// Only the parking re-check needs this level of certainty.
    pub(crate) fn locked_is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_lifo_top_is_fifo() {
        let d = WorkDeque::new();
        assert_eq!(d.push_bottom(1), 1);
        assert_eq!(d.push_bottom(2), 2);
        assert_eq!(d.push_bottom(3), 3);
        // Owner sees its most recent push first…
        assert_eq!(d.pop_bottom(), Some(3));
        // …a thief sees the oldest.
        assert_eq!(d.steal_top(), Some(1));
        assert_eq!(d.pop_bottom(), Some(2));
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.steal_top(), None);
    }

    #[test]
    fn push_top_jumps_the_queue() {
        let d = WorkDeque::new();
        d.push_bottom(1);
        d.push_top(9);
        assert_eq!(d.steal_top(), Some(9));
        assert_eq!(d.steal_top(), Some(1));
    }

    #[test]
    fn matching_takes_respect_direction() {
        let d = WorkDeque::new();
        for i in 1..=4 {
            d.push_bottom(i);
        }
        assert_eq!(d.take_matching_bottom(|&x| x % 2 == 0), Some(4));
        assert_eq!(d.take_matching_top(|&x| x % 2 == 0), Some(2));
        assert_eq!(d.take_matching_top(|&x| x > 10), None);
        assert_eq!(d.probe_len(), 2);
        assert!(!d.locked_is_empty());
    }

    #[test]
    fn length_mirror_tracks_every_mutation() {
        let d = WorkDeque::new();
        assert_eq!(d.probe_len(), 0);
        d.push_bottom(1);
        d.push_top(0);
        assert_eq!(d.probe_len(), 2);
        d.steal_top();
        assert_eq!(d.probe_len(), 1);
        d.pop_bottom();
        assert_eq!(d.probe_len(), 0);
        assert!(d.locked_is_empty());
    }
}
