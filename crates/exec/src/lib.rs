//! # dapc-exec
//!
//! The process-wide task executor every parallel path of the workspace
//! runs on: one lazily-initialised worker pool sized to the host (the
//! [`global`] executor), a scoped task-group API ([`scope`] /
//! [`Executor::scope`]) with panic propagation, and **nested-task
//! awareness** — a task that opens its own scope (e.g. a batch job whose
//! preparation step shards its exact subset solves) submits the subtasks
//! to the *same* pool it runs on instead of spawning a child pool, so
//! `jobs × prep_workers` degrades gracefully instead of oversubscribing
//! the machine.
//!
//! Three rules make the nesting deadlock-free at any pool size (including
//! one worker):
//!
//! 1. **Owners help.** After the scope body returns, the scope-owning
//!    thread drains *its own* still-queued tasks inline while waiting, so
//!    a scope completes even when every pool worker is busy or blocked in
//!    a deeper scope — this is the run-inline fallback.
//! 2. **Depth first.** A task spawned from inside a pool task goes to the
//!    *front* of the shared queue: finer-grained work that a coarser task
//!    is waiting on runs before queued coarse work.
//! 3. **No cross-scope waits.** A scope waits only for tasks it spawned;
//!    group bookkeeping is per-scope, so independent scopes sharing the
//!    pool cannot entangle.
//!
//! Determinism is untouched by construction: the executor decides only
//! *where and when* a task runs, never what it computes — every caller in
//! this workspace keeps its outputs byte-identical at any worker count.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let sum = Arc::new(AtomicUsize::new(0));
//! dapc_exec::scope(|s| {
//!     for i in 1..=10 {
//!         let sum = Arc::clone(&sum);
//!         s.spawn(move || {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! // `scope` returns only after every spawned task finished.
//! assert_eq!(sum.load(Ordering::Relaxed), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Cached handles onto the process-wide metrics registry. Resolved once
/// per process, then lock-free; every recording site gates on
/// [`dapc_obs::enabled`] first, so the disabled path costs one relaxed
/// atomic load and never reads the clock.
mod metrics {
    use dapc_obs::{Counter, Histogram};
    use std::sync::OnceLock;

    /// Shared-queue length right after an enqueue.
    pub fn queue_depth() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.queue.depth"))
    }

    /// Microseconds a task sat queued before a thread picked it up.
    pub fn task_wait() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.task.wait_micros"))
    }

    /// Microseconds a task's job ran (on a worker or inline).
    pub fn task_run() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.task.run_micros"))
    }

    /// Tasks a scope owner ran inline while waiting on its group.
    pub fn help_runs() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.task.help_runs"))
    }

    /// Task panics caught and re-raised at a scope exit.
    pub fn panics() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.task.panics"))
    }
}

/// One queued unit of work, tagged with the scope that owns it.
struct Task {
    group: Arc<Group>,
    job: Box<dyn FnOnce() + Send + 'static>,
    /// Enqueue timestamp, taken only while observability is enabled so
    /// the disabled path never touches the clock.
    enqueued_at: Option<Instant>,
}

struct ExecState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<ExecState>,
    /// Signalled when a task is queued or the pool shuts down.
    work: Condvar,
    /// Worker threads owned by the pool.
    workers: usize,
}

/// Per-scope bookkeeping: how many of the scope's tasks are still queued
/// or running, and the first panic payload to re-raise at the scope exit.
struct Group {
    state: Mutex<GroupState>,
    /// Signalled when `pending` drops to zero.
    done: Condvar,
}

#[derive(Default)]
struct GroupState {
    pending: usize,
    payload: Option<Box<dyn Any + Send>>,
}

impl Group {
    fn new() -> Self {
        Group {
            state: Mutex::new(GroupState::default()),
            done: Condvar::new(),
        }
    }
}

thread_local! {
    /// Pools whose tasks the current thread is executing, innermost last
    /// (pool workers and inline helpers both push here around a task).
    static TASK_POOL: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
    /// Explicit [`with_executor`] overrides, innermost last.
    static OVERRIDE: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

/// RAII pop for the thread-local pool stacks.
struct StackGuard(&'static std::thread::LocalKey<RefCell<Vec<Arc<Shared>>>>);

impl StackGuard {
    fn push(
        key: &'static std::thread::LocalKey<RefCell<Vec<Arc<Shared>>>>,
        s: &Arc<Shared>,
    ) -> Self {
        key.with(|stack| stack.borrow_mut().push(Arc::clone(s)));
        StackGuard(key)
    }
}

impl Drop for StackGuard {
    fn drop(&mut self) {
        self.0.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// A fixed-size worker pool with scoped task groups.
///
/// Most code should not construct one: [`scope`] and [`current_workers`]
/// resolve to the pool of the enclosing task (nested use), an explicit
/// [`with_executor`] override, or the process-wide [`global`] pool, in
/// that order. Building a private executor is for tests pinning a worker
/// count (e.g. proving byte-identity under oversubscription) and for
/// embedders that must isolate their pool.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(ExecState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dapc-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Runs `f` with a [`Scope`] bound to this pool, then blocks until
    /// every task spawned on the scope has finished — helping inline with
    /// the scope's own queued tasks while waiting.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of the body or of any spawned task, but
    /// only after every task of the scope has completed, so no work is
    /// silently lost.
    pub fn scope<T>(&self, f: impl FnOnce(&Scope<'_>) -> T) -> T {
        scope_on(&self.shared, f)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("executor lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers())
            .finish()
    }
}

/// A handle for spawning tasks into one task group (created by [`scope`]
/// or [`Executor::scope`]). The owning `scope` call returns only after
/// every task spawned here has finished.
pub struct Scope<'a> {
    shared: &'a Arc<Shared>,
    group: Arc<Group>,
}

impl Scope<'_> {
    /// Queues a task on the scope's pool.
    ///
    /// Tasks spawned from *inside* a pool task (a nested fan-out) go to
    /// the front of the shared queue — they are finer-grained work an
    /// enclosing task is waiting on; tasks spawned from outside go to the
    /// back in FIFO order.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        {
            let mut g = self.group.state.lock().expect("scope group lock");
            g.pending += 1;
        }
        let nested = TASK_POOL.with(|stack| {
            stack
                .borrow()
                .last()
                .is_some_and(|s| Arc::ptr_eq(s, self.shared))
        });
        let observed = dapc_obs::enabled();
        let task = Task {
            group: Arc::clone(&self.group),
            job: Box::new(f),
            enqueued_at: observed.then(Instant::now),
        };
        let depth = {
            let mut st = self.shared.state.lock().expect("executor lock");
            assert!(!st.shutdown, "spawn on a shut-down executor");
            if nested {
                st.queue.push_front(task);
            } else {
                st.queue.push_back(task);
            }
            st.queue.len()
        };
        self.shared.work.notify_one();
        if observed {
            metrics::queue_depth().observe(depth as u64);
        }
    }

    /// Worker threads of the pool this scope submits to.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }
}

/// Runs one task and settles its group bookkeeping. The pool is pushed
/// onto the thread's task stack for the duration, so nested [`scope`]
/// calls from inside the task land on the same pool — whether the task
/// runs on a pool worker or inline in a helping scope owner.
fn run_task(shared: &Arc<Shared>, task: Task) {
    // `enqueued_at` doubles as the gate: it is `Some` exactly when
    // observability was enabled at enqueue, so a disabled run records
    // nothing even if the gate flips mid-flight.
    let started = task.enqueued_at.map(|queued| {
        let now = Instant::now();
        metrics::task_wait().observe_micros(now - queued);
        now
    });
    let outcome = {
        let _ambient = StackGuard::push(&TASK_POOL, shared);
        catch_unwind(AssertUnwindSafe(task.job))
    };
    if let Some(started) = started {
        metrics::task_run().observe_micros(started.elapsed());
        if outcome.is_err() {
            metrics::panics().inc();
        }
    }
    let mut g = task.group.state.lock().expect("scope group lock");
    g.pending -= 1;
    if let Err(payload) = outcome {
        g.payload.get_or_insert(payload);
    }
    let idle = g.pending == 0;
    drop(g);
    if idle {
        task.group.done.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut st = shared.state.lock().expect("executor lock");
            loop {
                if let Some(task) = st.queue.pop_front() {
                    break task;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("executor lock");
            }
        };
        run_task(shared, task);
    }
}

/// The owner side of a scope: run the scope's own still-queued tasks
/// inline, then wait for the ones running elsewhere. Tasks cannot be
/// added to the group after the scope body returned (spawning needs the
/// borrowed [`Scope`]), so "no queued task of ours and `pending > 0`"
/// means every remaining task is mid-flight on another thread.
fn help_until_done(shared: &Arc<Shared>, group: &Arc<Group>) {
    loop {
        let task = {
            let mut st = shared.state.lock().expect("executor lock");
            st.queue
                .iter()
                .position(|t| Arc::ptr_eq(&t.group, group))
                .and_then(|i| st.queue.remove(i))
        };
        match task {
            Some(task) => {
                if dapc_obs::enabled() {
                    metrics::help_runs().inc();
                }
                run_task(shared, task);
            }
            None => {
                let g = group.state.lock().expect("scope group lock");
                if g.pending == 0 {
                    return;
                }
                let _g = group.done.wait(g).expect("scope group lock");
            }
        }
    }
}

fn scope_on<T>(shared: &Arc<Shared>, f: impl FnOnce(&Scope<'_>) -> T) -> T {
    let group = Arc::new(Group::new());
    let s = Scope {
        shared,
        group: Arc::clone(&group),
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&s)));
    help_until_done(shared, &group);
    let task_payload = group.state.lock().expect("scope group lock").payload.take();
    match body {
        // The body's own panic wins; either way every task has finished.
        Err(payload) => resume_unwind(payload),
        Ok(value) => match task_payload {
            Some(payload) => resume_unwind(payload),
            None => value,
        },
    }
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

/// The process-wide executor, created on first use.
///
/// Sized to the host (`std::thread::available_parallelism`), overridable
/// with the `DAPC_EXEC_WORKERS` environment variable *before* first use.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| Executor::new(default_workers()))
}

fn default_workers() -> usize {
    override_workers(std::env::var("DAPC_EXEC_WORKERS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
}

/// Parses the `DAPC_EXEC_WORKERS` override, clamping any parseable value
/// to at least one worker: `0` (or anything that parses to 0, like `00`)
/// pins the smallest pool instead of configuring a zero-worker pool that
/// would strand tasks queued by non-scope submitters. Unparseable values
/// are ignored (`None`), falling back to the host size.
fn override_workers(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().map(|n| n.max(1))
}

fn current_shared() -> Arc<Shared> {
    // The enclosing task's pool wins over a `with_executor` override:
    // a nested fan-out must land on the pool its parent runs on, no
    // matter whether the parent task executes on a pool worker (where no
    // override is set) or inline in a helping scope owner (whose thread
    // may hold an override for *entering* work, not for work passing
    // through) — otherwise the same task would resolve differently
    // depending on which thread happened to run it.
    if let Some(s) = TASK_POOL.with(|stack| stack.borrow().last().cloned()) {
        return s;
    }
    if let Some(s) = OVERRIDE.with(|stack| stack.borrow().last().cloned()) {
        return s;
    }
    Arc::clone(&global().shared)
}

/// Runs `f` with a [`Scope`] on the ambient pool: the pool of the
/// enclosing task when called from inside one (so nested fan-outs share
/// their parent's pool instead of spawning a child pool), an enclosing
/// [`with_executor`] override, or the [`global`] pool.
///
/// Blocks until every spawned task finished; panics are propagated like
/// [`Executor::scope`].
pub fn scope<T>(f: impl FnOnce(&Scope<'_>) -> T) -> T {
    let shared = current_shared();
    scope_on(&shared, f)
}

/// Worker-thread count of the pool [`scope`] would currently submit to.
pub fn current_workers() -> usize {
    current_shared().workers
}

/// Runs `f` with `exec` installed as the calling thread's ambient pool:
/// [`scope`] calls inside `f` (not inside tasks spawned by them — those
/// follow their own pool) submit to `exec` instead of the global pool.
/// Mainly for tests pinning a worker count.
pub fn with_executor<T>(exec: &Executor, f: impl FnOnce() -> T) -> T {
    let _guard = StackGuard::push(&OVERRIDE, &exec.shared);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_returns_the_body_value() {
        let exec = Executor::new(2);
        let out = exec.scope(|s| {
            s.spawn(|| {});
            7usize
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn nested_scopes_share_the_pool() {
        // Tasks open their own scopes; everything resolves onto the one
        // 2-worker pool (depth-first via the queue front + owner help).
        let exec = Executor::new(2);
        let sum = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..4 {
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    assert_eq!(current_workers(), 2, "nested scope left the pool");
                    scope(|inner| {
                        for _ in 0..8 {
                            let sum = Arc::clone(&sum);
                            inner.spawn(move || {
                                sum.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn deep_nesting_on_one_worker_terminates() {
        // The no-deadlock guarantee at the smallest pool: a 1-worker pool
        // with three levels of nested scopes still completes, because
        // every scope owner helps with its own tasks inline.
        let exec = Executor::new(1);
        let sum = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..3 {
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    scope(|mid| {
                        for _ in 0..3 {
                            let sum = Arc::clone(&sum);
                            mid.spawn(move || {
                                scope(|inner| {
                                    for _ in 0..3 {
                                        let sum = Arc::clone(&sum);
                                        inner.spawn(move || {
                                            sum.fetch_add(1, Ordering::Relaxed);
                                        });
                                    }
                                });
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 27);
    }

    #[test]
    fn owner_helps_while_workers_are_blocked() {
        // Block the only worker, then prove an unrelated scope still
        // completes: the run-inline fallback in action.
        let exec = Executor::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|threads| {
            let blocker_gate = Arc::clone(&gate);
            let blocker_entered = Arc::clone(&entered);
            let exec_ref = &exec;
            threads.spawn(move || {
                exec_ref.scope(|s| {
                    s.spawn(move || {
                        {
                            let (lock, cv) = &*blocker_entered;
                            *lock.lock().unwrap() = true;
                            cv.notify_all();
                        }
                        let (lock, cv) = &*blocker_gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    });
                });
            });
            {
                // Wait until the worker is provably inside the blocker.
                let (lock, cv) = &*entered;
                let mut seen = lock.lock().unwrap();
                while !*seen {
                    seen = cv.wait(seen).unwrap();
                }
            }
            let counter = Arc::new(AtomicUsize::new(0));
            exec.scope(|s| {
                for _ in 0..5 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 5);
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
    }

    #[test]
    fn inline_helped_tasks_keep_their_pool_despite_an_override() {
        // Block pool `b`'s only worker so the scope owner must run the
        // task inline — on a thread holding a `with_executor(&a, ...)`
        // override. The task's nested resolution must still see `b`
        // (its own pool), not the override: the enclosing task's pool
        // wins wherever the task happens to execute.
        let a = Executor::new(3);
        let b = Executor::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|threads| {
            let blocker_gate = Arc::clone(&gate);
            let blocker_entered = Arc::clone(&entered);
            let b_ref = &b;
            threads.spawn(move || {
                b_ref.scope(|s| {
                    s.spawn(move || {
                        {
                            let (lock, cv) = &*blocker_entered;
                            *lock.lock().unwrap() = true;
                            cv.notify_all();
                        }
                        let (lock, cv) = &*blocker_gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    });
                });
            });
            {
                let (lock, cv) = &*entered;
                let mut seen = lock.lock().unwrap();
                while !*seen {
                    seen = cv.wait(seen).unwrap();
                }
            }
            let observed = Arc::new(AtomicUsize::new(0));
            let report = Arc::clone(&observed);
            with_executor(&a, || {
                b.scope(|s| {
                    s.spawn(move || {
                        report.store(current_workers(), Ordering::Relaxed);
                    });
                });
            });
            assert_eq!(
                observed.load(Ordering::Relaxed),
                1,
                "the inline-helped task resolved to the override pool"
            );
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn task_panics_propagate_to_the_scope_owner() {
        let exec = Executor::new(2);
        exec.scope(|s| {
            s.spawn(|| panic!("task boom"));
        });
    }

    #[test]
    fn panic_still_waits_for_sibling_tasks() {
        let exec = Executor::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("first"));
                for _ in 0..10 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the panic must surface");
        assert_eq!(
            observed.load(Ordering::Relaxed),
            10,
            "siblings finish before the panic is re-raised"
        );
    }

    #[test]
    fn with_executor_overrides_the_global_pool() {
        let exec = Executor::new(3);
        let (inside, outside) = (with_executor(&exec, current_workers), global().workers());
        assert_eq!(inside, 3);
        // The override is scoped: back outside we see the global pool.
        assert_eq!(current_workers(), outside);
    }

    /// The `DAPC_EXEC_WORKERS` sizing rules, exhaustively: a parsed `0`
    /// must clamp to a 1-worker pool (the old code let it fall through to
    /// the host default, and a hypothetical zero-worker pool would strand
    /// tasks queued by submitters that never help-run — non-scope owners
    /// have no inline fallback), garbage falls back to the host size, and
    /// surrounding whitespace is tolerated.
    #[test]
    fn env_override_clamps_zero_to_one_worker() {
        assert_eq!(override_workers(Some("0")), Some(1));
        assert_eq!(override_workers(Some("00")), Some(1));
        assert_eq!(override_workers(Some(" 0 ")), Some(1));
        assert_eq!(override_workers(Some("1")), Some(1));
        assert_eq!(override_workers(Some("6")), Some(6));
        assert_eq!(override_workers(Some(" 4\n")), Some(4));
        assert_eq!(override_workers(Some("")), None, "empty: host default");
        assert_eq!(override_workers(Some("-2")), None, "signed: host default");
        assert_eq!(override_workers(Some("two")), None, "garbage: host default");
        assert_eq!(override_workers(None), None, "unset: host default");
    }

    #[test]
    fn metrics_observe_queue_wait_and_run_when_enabled() {
        dapc_obs::set_enabled(true);
        let exec = Executor::new(2);
        exec.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {});
            }
        });
        let snap = dapc_obs::MetricsSnapshot::capture();
        for name in [
            "exec.queue.depth",
            "exec.task.wait_micros",
            "exec.task.run_micros",
        ] {
            match snap.get(name) {
                Some(dapc_obs::SnapshotEntry::Histogram { count, .. }) => {
                    assert!(*count >= 8, "{name}: {count} < 8 observations")
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let exec = Executor::new(0);
        assert_eq!(exec.workers(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let observe = Arc::clone(&ran);
        exec.scope(|s| {
            s.spawn(move || {
                observe.store(9, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 9);
    }
}
