//! # dapc-exec
//!
//! The process-wide task executor every parallel path of the workspace
//! runs on: one lazily-initialised worker pool sized to the host (the
//! [`global`] executor), a scoped task-group API ([`scope`] /
//! [`Executor::scope`]) with panic propagation, and **nested-task
//! awareness** — a task that opens its own scope (e.g. a batch job whose
//! preparation step shards its exact subset solves) submits the subtasks
//! to the *same* pool it runs on instead of spawning a child pool, so
//! `jobs × prep_workers` degrades gracefully instead of oversubscribing
//! the machine.
//!
//! Since the work-stealing rewrite the pool is deque-per-worker in the
//! Chase–Lev shape rather than one shared locked queue: each worker owns
//! a deque it pushes and pops at the bottom (LIFO, depth-first), idle
//! workers steal from the top of other workers' deques (FIFO, coarsest
//! first), external submissions enter through a global injector queue
//! with wake-one-on-push, and idle workers park on an eventcount instead
//! of sleeping inside a shared queue lock. `crates/exec/README.md` walks
//! through the design and the termination argument.
//!
//! Three rules make the nesting deadlock-free at any pool size (including
//! one worker):
//!
//! 1. **Owners help.** After the scope body returns, the scope-owning
//!    thread drains the scope's still-queued tasks inline while waiting —
//!    its own deque first, then the injector, then by stealing them out
//!    of other workers' deques — so a scope completes even when every
//!    pool worker is busy or blocked in a deeper scope.
//! 2. **Depth first.** A task spawned from inside a pool task goes to the
//!    bottom of the spawning worker's own deque (or the top of the
//!    injector when the enclosing task runs inline on a non-worker
//!    thread): finer-grained work that a coarser task is waiting on runs
//!    before queued coarse work.
//! 3. **No cross-scope waits.** A scope waits only for tasks it spawned;
//!    group bookkeeping is per-scope, so independent scopes sharing the
//!    pool cannot entangle.
//!
//! Long-running tasks can additionally offer the pool a *cooperative
//! yield point* ([`yield_once`]): a worker mid-way through a giant exact
//! subset solve runs one of its own queued subtasks inline and then
//! resumes, so a single long solve no longer pins its worker for the
//! whole solve.
//!
//! Determinism is untouched by construction: the executor decides only
//! *where and when* a task runs, never what it computes — every caller in
//! this workspace keeps its outputs byte-identical at any worker count,
//! stealing or not.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let sum = Arc::new(AtomicUsize::new(0));
//! dapc_exec::scope(|s| {
//!     for i in 1..=10 {
//!         let sum = Arc::clone(&sum);
//!         s.spawn(move || {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! // `scope` returns only after every spawned task finished.
//! assert_eq!(sum.load(Ordering::Relaxed), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deque;
mod park;

use deque::WorkDeque;
use park::Parking;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Cached handles onto the process-wide metrics registry. Resolved once
/// per process, then lock-free; every recording site gates on
/// [`dapc_obs::enabled`] first, so the disabled path costs one relaxed
/// atomic load and never reads the clock.
mod metrics {
    use dapc_obs::{Counter, Histogram};
    use std::sync::OnceLock;

    /// Injector length right after an external or inline-nested enqueue
    /// (worker-local deque pushes are not observed: they are the
    /// uncontended fast path). Replaces the old `exec.queue.depth`.
    pub fn injector_depth() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.injector.depth"))
    }

    /// Microseconds a task sat queued before a thread picked it up.
    pub fn task_wait() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.task.wait_micros"))
    }

    /// Microseconds a task's job ran (on a worker or inline).
    pub fn task_run() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| dapc_obs::histogram("exec.task.run_micros"))
    }

    /// Tasks a scope owner ran inline while waiting on its group.
    pub fn help_runs() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.task.help_runs"))
    }

    /// Task panics caught and re-raised at a scope exit.
    pub fn panics() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.task.panics"))
    }

    /// Tasks taken from another worker's deque.
    pub fn steals() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.steals"))
    }

    /// Steal sweeps that probed an apparently occupied deque but came
    /// back empty-handed (lost the race to the owner or another thief).
    pub fn steal_failures() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.steal_failures"))
    }

    /// Times an idle worker went to sleep on the eventcount.
    pub fn parks() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.parks"))
    }

    /// Tasks run inline at a cooperative [`crate::yield_once`] point.
    pub fn yields() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("exec.yields"))
    }
}

/// One queued unit of work, tagged with the scope that owns it.
struct Task {
    group: Arc<Group>,
    job: Box<dyn FnOnce() + Send + 'static>,
    /// Enqueue timestamp, taken only while observability is enabled so
    /// the disabled path never touches the clock.
    enqueued_at: Option<Instant>,
}

struct Shared {
    /// External submissions and inline-nested spawns enter here; workers
    /// drain it FIFO from the top (nested spawns jump to the top).
    injector: WorkDeque<Task>,
    /// One deque per worker: the owner pushes/pops at the bottom,
    /// thieves (and foreign scope owners hunting their group's tasks)
    /// take from the top.
    deques: Vec<WorkDeque<Task>>,
    /// Eventcount idle workers park on; every push wakes one sleeper.
    parking: Parking,
    shutdown: AtomicBool,
    /// Worker threads owned by the pool.
    workers: usize,
}

/// Per-scope bookkeeping: how many of the scope's tasks are still queued
/// or running, and the first panic payload to re-raise at the scope exit.
struct Group {
    state: Mutex<GroupState>,
    /// Signalled when `pending` drops to zero. The ordering contract the
    /// owner's wait path relies on: [`run_task`] decrements `pending`
    /// under `state` *before* notifying, so a waiter that observed
    /// `pending > 0` while holding the lock is guaranteed a later
    /// notification — the owner never needs to re-take any queue lock
    /// just to re-check.
    done: Condvar,
}

#[derive(Default)]
struct GroupState {
    pending: usize,
    payload: Option<Box<dyn Any + Send>>,
}

impl Group {
    fn new() -> Self {
        Group {
            state: Mutex::new(GroupState::default()),
            done: Condvar::new(),
        }
    }
}

thread_local! {
    /// Pools whose tasks the current thread is executing, innermost last
    /// (pool workers and inline helpers both push here around a task).
    static TASK_POOL: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
    /// Explicit [`with_executor`] overrides, innermost last.
    static OVERRIDE: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
    /// Set once per worker thread: the pool it belongs to and its deque
    /// index. Spawn routing and [`yield_once`] key off this.
    static WORKER: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
    /// Nesting depth of [`yield_once`] frames on this thread, capped so
    /// yielded tasks that themselves yield cannot grow the stack without
    /// bound.
    static YIELD_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Deepest [`yield_once`]-inside-[`yield_once`] nesting allowed.
const MAX_YIELD_DEPTH: usize = 8;

/// RAII pop for the thread-local pool stacks.
struct StackGuard(&'static std::thread::LocalKey<RefCell<Vec<Arc<Shared>>>>);

impl StackGuard {
    fn push(
        key: &'static std::thread::LocalKey<RefCell<Vec<Arc<Shared>>>>,
        s: &Arc<Shared>,
    ) -> Self {
        key.with(|stack| stack.borrow_mut().push(Arc::clone(s)));
        StackGuard(key)
    }
}

impl Drop for StackGuard {
    fn drop(&mut self) {
        self.0.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The calling thread's deque index, if it is a worker of `shared`.
fn worker_index(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .and_then(|(pool, idx)| Arc::ptr_eq(pool, shared).then_some(*idx))
    })
}

/// A fixed-size worker pool with scoped task groups.
///
/// Most code should not construct one: [`scope`] and [`current_workers`]
/// resolve to the pool of the enclosing task (nested use), an explicit
/// [`with_executor`] override, or the process-wide [`global`] pool, in
/// that order. Building a private executor is for tests pinning a worker
/// count (e.g. proving byte-identity under oversubscription) and for
/// embedders that must isolate their pool.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: WorkDeque::new(),
            deques: (0..workers).map(|_| WorkDeque::new()).collect(),
            parking: Parking::new(),
            shutdown: AtomicBool::new(false),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dapc-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Runs `f` with a [`Scope`] bound to this pool, then blocks until
    /// every task spawned on the scope has finished — helping inline with
    /// the scope's own queued tasks while waiting.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of the body or of any spawned task, but
    /// only after every task of the scope has completed, so no work is
    /// silently lost.
    pub fn scope<T>(&self, f: impl FnOnce(&Scope<'_>) -> T) -> T {
        scope_on(&self.shared, f)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // ordering: SeqCst — shutdown flag; keep a total order with the park/wake protocol
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.parking.wake_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers())
            .finish()
    }
}

/// A handle for spawning tasks into one task group (created by [`scope`]
/// or [`Executor::scope`]). The owning `scope` call returns only after
/// every task spawned here has finished.
pub struct Scope<'a> {
    shared: &'a Arc<Shared>,
    group: Arc<Group>,
}

impl Scope<'_> {
    /// Queues a task on the scope's pool.
    ///
    /// Routing: a spawn from a pool worker goes to the bottom of that
    /// worker's own deque (uncontended, depth-first); a spawn from a
    /// non-worker thread that is *inside* a task of this pool (an inline
    /// help frame) jumps to the top of the injector (still depth-first);
    /// any other spawn appends to the injector in FIFO order. Every push
    /// wakes at most one parked worker.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        {
            let mut g = self.group.state.lock().expect("scope group lock");
            g.pending += 1;
        }
        assert!(
            // ordering: SeqCst — shutdown flag; keep a total order with the park/wake protocol
            !self.shared.shutdown.load(Ordering::SeqCst),
            "spawn on a shut-down executor"
        );
        let observed = dapc_obs::enabled();
        let task = Task {
            group: Arc::clone(&self.group),
            job: Box::new(f),
            // dapc-allow(wall-clock): queue-wait telemetry only, gated on dapc_obs::enabled
            enqueued_at: observed.then(Instant::now),
        };
        match worker_index(self.shared) {
            Some(idx) => {
                self.shared.deques[idx].push_bottom(task);
            }
            None => {
                let nested = TASK_POOL.with(|stack| {
                    stack
                        .borrow()
                        .last()
                        .is_some_and(|s| Arc::ptr_eq(s, self.shared))
                });
                let depth = if nested {
                    self.shared.injector.push_top(task)
                } else {
                    self.shared.injector.push_bottom(task)
                };
                if observed {
                    metrics::injector_depth().observe(depth as u64);
                }
            }
        }
        self.shared.parking.wake_one();
    }

    /// Worker threads of the pool this scope submits to.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }
}

/// Runs one task and settles its group bookkeeping. The pool is pushed
/// onto the thread's task stack for the duration, so nested [`scope`]
/// calls from inside the task land on the same pool — whether the task
/// runs on a pool worker, inline in a helping scope owner, or inline at
/// a [`yield_once`] point.
fn run_task(shared: &Arc<Shared>, task: Task) {
    // `enqueued_at` doubles as the gate: it is `Some` exactly when
    // observability was enabled at enqueue, so a disabled run records
    // nothing even if the gate flips mid-flight.
    let started = task.enqueued_at.map(|queued| {
        // dapc-allow(wall-clock): queue-wait telemetry only, gated on dapc_obs::enabled
        let now = Instant::now();
        metrics::task_wait().observe_micros(now - queued);
        now
    });
    let outcome = {
        let _ambient = StackGuard::push(&TASK_POOL, shared);
        catch_unwind(AssertUnwindSafe(task.job))
    };
    if let Some(started) = started {
        metrics::task_run().observe_micros(started.elapsed());
        if outcome.is_err() {
            metrics::panics().inc();
        }
    }
    // Decrement under the group lock *before* notifying: a scope owner
    // that saw `pending > 0` under this lock is guaranteed the notify.
    let mut g = task.group.state.lock().expect("scope group lock");
    g.pending -= 1;
    if let Err(payload) = outcome {
        g.payload.get_or_insert(payload);
    }
    let idle = g.pending == 0;
    drop(g);
    if idle {
        task.group.done.notify_all();
    }
}

/// One steal sweep: probe every other deque (advisory length first, so
/// empty deques cost no lock) and take the top — the oldest, coarsest
/// task — of the first occupied one.
fn steal(shared: &Arc<Shared>, idx: usize) -> Option<Task> {
    let n = shared.deques.len();
    if n <= 1 {
        return None;
    }
    let mut attempted = false;
    for off in 1..n {
        let victim = (idx + off) % n;
        if shared.deques[victim].probe_len() == 0 {
            continue;
        }
        attempted = true;
        if let Some(task) = shared.deques[victim].steal_top() {
            if dapc_obs::enabled() {
                metrics::steals().inc();
            }
            return Some(task);
        }
    }
    if attempted && dapc_obs::enabled() {
        metrics::steal_failures().inc();
    }
    None
}

/// Next task for worker `idx`: own deque bottom (LIFO), then the
/// injector top (FIFO), then a steal sweep.
fn next_task(shared: &Arc<Shared>, idx: usize) -> Option<Task> {
    shared.deques[idx]
        .pop_bottom()
        .or_else(|| shared.injector.steal_top())
        .or_else(|| steal(shared, idx))
}

/// Any work anywhere, checked under the real queue locks — the parking
/// re-check must not trust the advisory length mirrors (see
/// `park.rs` for the lost-wakeup argument).
fn has_work_locked(shared: &Shared) -> bool {
    !shared.injector.locked_is_empty() || shared.deques.iter().any(|d| !d.locked_is_empty())
}

fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(shared), idx)));
    loop {
        if let Some(task) = next_task(shared, idx) {
            run_task(shared, task);
            continue;
        }
        let epoch = shared.parking.prepare();
        if has_work_locked(shared) {
            shared.parking.cancel();
            continue;
        }
        // ordering: SeqCst — shutdown flag; keep a total order with the park/wake protocol
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.parking.cancel();
            return;
        }
        if dapc_obs::enabled() {
            metrics::parks().inc();
        }
        shared.parking.park(epoch);
    }
}

/// Finds one still-queued task of `group`, owner's preference order:
/// the owner's own deque bottom first (when the owner is a pool worker —
/// its nested spawns went there), then the injector, then stolen out of
/// the other workers' deques.
fn find_group_task(shared: &Arc<Shared>, group: &Arc<Group>) -> Option<Task> {
    let ours = |t: &Task| Arc::ptr_eq(&t.group, group);
    if let Some(idx) = worker_index(shared) {
        if let Some(task) = shared.deques[idx].take_matching_bottom(ours) {
            return Some(task);
        }
    }
    if let Some(task) = shared.injector.take_matching_top(ours) {
        return Some(task);
    }
    shared.deques.iter().find_map(|d| d.take_matching_top(ours))
}

/// The owner side of a scope: run the scope's own still-queued tasks
/// inline, then wait for the ones running elsewhere.
///
/// Termination argument: the group's task set is fixed once the scope
/// body returns (spawning needs the borrowed [`Scope`], and any thread
/// the body lent it to has joined by then), so each loop iteration either
/// runs one group task inline or — after a scan that held every queue
/// lock in turn and found none — knows that every remaining task was
/// already claimed by a worker and is mid-flight. From that point the
/// owner parks on the *group's own* condvar until `pending` reaches
/// zero; it never re-takes a queue lock just to re-check, because no new
/// group task can appear in any queue. The wakeup ordering that makes
/// the bare wait sound is documented on [`Group::done`].
fn help_until_done(shared: &Arc<Shared>, group: &Arc<Group>) {
    loop {
        match find_group_task(shared, group) {
            Some(task) => {
                if dapc_obs::enabled() {
                    metrics::help_runs().inc();
                }
                run_task(shared, task);
            }
            None => {
                let mut g = group.state.lock().expect("scope group lock");
                while g.pending > 0 {
                    g = group.done.wait(g).expect("scope group lock");
                }
                return;
            }
        }
    }
}

fn scope_on<T>(shared: &Arc<Shared>, f: impl FnOnce(&Scope<'_>) -> T) -> T {
    let group = Arc::new(Group::new());
    let s = Scope {
        shared,
        group: Arc::clone(&group),
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&s)));
    help_until_done(shared, &group);
    let task_payload = group.state.lock().expect("scope group lock").payload.take();
    match body {
        // The body's own panic wins; either way every task has finished.
        Err(payload) => resume_unwind(payload),
        Ok(value) => match task_payload {
            Some(payload) => resume_unwind(payload),
            None => value,
        },
    }
}

/// Cooperative yield point for long-running tasks (the branch-and-bound
/// subset solver calls this every `SolverBudget::yield_every` nodes).
///
/// If the calling thread is a pool worker with tasks queued in **its own
/// deque** — subtasks it spawned itself and would otherwise only reach
/// after the current task finishes — runs exactly one of them inline
/// (most recent first, the depth-first order) and returns `true`.
/// Returns `false`, at the cost of one thread-local probe, on non-worker
/// threads, when the worker's own deque is empty, or when yields are
/// already nested [`MAX_YIELD_DEPTH`] deep. The injector and other
/// workers' deques are deliberately *not* drawn from: a yield must stay
/// a small detour through the worker's own backlog, never adopt a whole
/// new coarse job mid-solve.
///
/// A panic in the yielded task is captured into that task's own scope
/// (exactly as if a worker had run it) and is never unwound into the
/// yielding caller. Determinism is unaffected: yielding only reorders
/// *when* queued tasks run, which every caller in this workspace is
/// already invariant to.
pub fn yield_once() -> bool {
    let Some((shared, idx)) = WORKER.with(|w| w.borrow().clone()) else {
        return false;
    };
    if YIELD_DEPTH.with(|d| d.get()) >= MAX_YIELD_DEPTH {
        return false;
    }
    if shared.deques[idx].probe_len() == 0 {
        return false;
    }
    let Some(task) = shared.deques[idx].pop_bottom() else {
        return false;
    };
    if dapc_obs::enabled() {
        metrics::yields().inc();
    }
    YIELD_DEPTH.with(|d| d.set(d.get() + 1));
    run_task(&shared, task);
    YIELD_DEPTH.with(|d| d.set(d.get() - 1));
    true
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

/// The process-wide executor, created on first use.
///
/// Sized to the host (`std::thread::available_parallelism`), overridable
/// with the `DAPC_EXEC_WORKERS` environment variable *before* first use.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| Executor::new(default_workers()))
}

fn default_workers() -> usize {
    override_workers(std::env::var("DAPC_EXEC_WORKERS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
}

/// Parses the `DAPC_EXEC_WORKERS` override, clamping any parseable value
/// to at least one worker: `0` (or anything that parses to 0, like `00`)
/// pins the smallest pool instead of configuring a zero-worker pool that
/// would strand tasks queued by non-scope submitters. Unparseable values
/// are ignored (`None`), falling back to the host size.
fn override_workers(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().map(|n| n.max(1))
}

fn current_shared() -> Arc<Shared> {
    // The enclosing task's pool wins over a `with_executor` override:
    // a nested fan-out must land on the pool its parent runs on, no
    // matter whether the parent task executes on a pool worker (where no
    // override is set) or inline in a helping scope owner (whose thread
    // may hold an override for *entering* work, not for work passing
    // through) — otherwise the same task would resolve differently
    // depending on which thread happened to run it.
    if let Some(s) = TASK_POOL.with(|stack| stack.borrow().last().cloned()) {
        return s;
    }
    if let Some(s) = OVERRIDE.with(|stack| stack.borrow().last().cloned()) {
        return s;
    }
    Arc::clone(&global().shared)
}

/// Runs `f` with a [`Scope`] on the ambient pool: the pool of the
/// enclosing task when called from inside one (so nested fan-outs share
/// their parent's pool instead of spawning a child pool), an enclosing
/// [`with_executor`] override, or the [`global`] pool.
///
/// Blocks until every spawned task finished; panics are propagated like
/// [`Executor::scope`].
pub fn scope<T>(f: impl FnOnce(&Scope<'_>) -> T) -> T {
    let shared = current_shared();
    scope_on(&shared, f)
}

/// Worker-thread count of the pool [`scope`] would currently submit to.
pub fn current_workers() -> usize {
    current_shared().workers
}

/// Runs `f` with `exec` installed as the calling thread's ambient pool:
/// [`scope`] calls inside `f` (not inside tasks spawned by them — those
/// follow their own pool) submit to `exec` instead of the global pool.
/// Mainly for tests pinning a worker count.
pub fn with_executor<T>(exec: &Executor, f: impl FnOnce() -> T) -> T {
    let _guard = StackGuard::push(&OVERRIDE, &exec.shared);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_returns_the_body_value() {
        let exec = Executor::new(2);
        let out = exec.scope(|s| {
            s.spawn(|| {});
            7usize
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn nested_scopes_share_the_pool() {
        // Tasks open their own scopes; everything resolves onto the one
        // 2-worker pool (worker-local deques + owner help).
        let exec = Executor::new(2);
        let sum = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..4 {
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    assert_eq!(current_workers(), 2, "nested scope left the pool");
                    scope(|inner| {
                        for _ in 0..8 {
                            let sum = Arc::clone(&sum);
                            inner.spawn(move || {
                                sum.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 32);
    }

    /// The ISSUE's nested 4×4 shape — `jobs × prep_workers` — must
    /// terminate and run every task on stealing pools of 1, 2 and 4
    /// workers alike.
    #[test]
    fn nested_4x4_scopes_terminate_on_1_2_and_4_workers() {
        for workers in [1usize, 2, 4] {
            let exec = Executor::new(workers);
            let sum = Arc::new(AtomicUsize::new(0));
            exec.scope(|s| {
                for _ in 0..4 {
                    let sum = Arc::clone(&sum);
                    s.spawn(move || {
                        scope(|inner| {
                            for _ in 0..4 {
                                let sum = Arc::clone(&sum);
                                inner.spawn(move || {
                                    sum.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                16,
                "lost tasks at {workers} workers"
            );
        }
    }

    #[test]
    fn deep_nesting_on_one_worker_terminates() {
        // The no-deadlock guarantee at the smallest pool: a 1-worker pool
        // with three levels of nested scopes still completes, because
        // every scope owner helps with its own tasks inline.
        let exec = Executor::new(1);
        let sum = Arc::new(AtomicUsize::new(0));
        exec.scope(|s| {
            for _ in 0..3 {
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    scope(|mid| {
                        for _ in 0..3 {
                            let sum = Arc::clone(&sum);
                            mid.spawn(move || {
                                scope(|inner| {
                                    for _ in 0..3 {
                                        let sum = Arc::clone(&sum);
                                        inner.spawn(move || {
                                            sum.fetch_add(1, Ordering::Relaxed);
                                        });
                                    }
                                });
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 27);
    }

    #[test]
    fn owner_helps_while_workers_are_blocked() {
        // Block the only worker, then prove an unrelated scope still
        // completes: the run-inline fallback in action.
        let exec = Executor::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|threads| {
            let blocker_gate = Arc::clone(&gate);
            let blocker_entered = Arc::clone(&entered);
            let exec_ref = &exec;
            threads.spawn(move || {
                exec_ref.scope(|s| {
                    s.spawn(move || {
                        {
                            let (lock, cv) = &*blocker_entered;
                            *lock.lock().unwrap() = true;
                            cv.notify_all();
                        }
                        let (lock, cv) = &*blocker_gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    });
                });
            });
            {
                // Wait until the worker is provably inside the blocker.
                let (lock, cv) = &*entered;
                let mut seen = lock.lock().unwrap();
                while !*seen {
                    seen = cv.wait(seen).unwrap();
                }
            }
            let counter = Arc::new(AtomicUsize::new(0));
            exec.scope(|s| {
                for _ in 0..5 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 5);
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
    }

    #[test]
    fn inline_helped_tasks_keep_their_pool_despite_an_override() {
        // Block pool `b`'s only worker so the scope owner must run the
        // task inline — on a thread holding a `with_executor(&a, ...)`
        // override. The task's nested resolution must still see `b`
        // (its own pool), not the override: the enclosing task's pool
        // wins wherever the task happens to execute.
        let a = Executor::new(3);
        let b = Executor::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|threads| {
            let blocker_gate = Arc::clone(&gate);
            let blocker_entered = Arc::clone(&entered);
            let b_ref = &b;
            threads.spawn(move || {
                b_ref.scope(|s| {
                    s.spawn(move || {
                        {
                            let (lock, cv) = &*blocker_entered;
                            *lock.lock().unwrap() = true;
                            cv.notify_all();
                        }
                        let (lock, cv) = &*blocker_gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    });
                });
            });
            {
                let (lock, cv) = &*entered;
                let mut seen = lock.lock().unwrap();
                while !*seen {
                    seen = cv.wait(seen).unwrap();
                }
            }
            let observed = Arc::new(AtomicUsize::new(0));
            let report = Arc::clone(&observed);
            with_executor(&a, || {
                b.scope(|s| {
                    s.spawn(move || {
                        report.store(current_workers(), Ordering::Relaxed);
                    });
                });
            });
            assert_eq!(
                observed.load(Ordering::Relaxed),
                1,
                "the inline-helped task resolved to the override pool"
            );
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn task_panics_propagate_to_the_scope_owner() {
        let exec = Executor::new(2);
        exec.scope(|s| {
            s.spawn(|| panic!("task boom"));
        });
    }

    #[test]
    fn panic_still_waits_for_sibling_tasks() {
        let exec = Executor::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("first"));
                for _ in 0..10 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the panic must surface");
        assert_eq!(
            observed.load(Ordering::Relaxed),
            10,
            "siblings finish before the panic is re-raised"
        );
    }

    /// Force worker B to steal from worker A's deque: a task running on
    /// A spawns a subtask into A's own deque and then spins in the scope
    /// body until someone *else* has claimed it. Returns once the stolen
    /// task ran. `payload` runs inside the stolen task.
    fn run_stolen(exec: &Executor, payload: impl FnOnce() + Send + 'static) {
        let claimed = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&claimed);
        let started_tx = Arc::clone(&started);
        exec.scope(|s| {
            s.spawn(move || {
                started_tx.store(true, Ordering::SeqCst);
                scope(|inner| {
                    let claimed = Arc::clone(&seen);
                    inner.spawn(move || {
                        claimed.store(true, Ordering::SeqCst);
                        payload();
                    });
                    // The subtask sits in THIS worker's deque; only a
                    // thief can claim it while we spin here, because the
                    // owner does not help until the body returns.
                    while !seen.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                });
            });
            // Hold the body open until a worker runs the outer task: the
            // owner only starts help-running after the body returns, so
            // this pins the task (and therefore the subtask's deque) to a
            // real pool worker instead of racing the owner's inline help.
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn panic_from_a_stolen_task_propagates_to_the_owning_scope() {
        let exec = Executor::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_stolen(&exec, || panic!("stolen boom"));
        }));
        let payload = result.expect_err("the stolen task's panic must surface");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "stolen boom", "wrong payload propagated");
    }

    #[test]
    fn steals_are_counted_when_enabled() {
        dapc_obs::set_enabled(true);
        let before = match dapc_obs::MetricsSnapshot::capture().get("exec.steals") {
            Some(dapc_obs::SnapshotEntry::Counter { value, .. }) => *value,
            _ => 0,
        };
        let exec = Executor::new(2);
        run_stolen(&exec, || {});
        let after = match dapc_obs::MetricsSnapshot::capture().get("exec.steals") {
            Some(dapc_obs::SnapshotEntry::Counter { value, .. }) => *value,
            _ => 0,
        };
        assert!(
            after > before,
            "forced steal not counted ({before} -> {after})"
        );
    }

    #[test]
    fn yield_once_runs_a_locally_queued_subtask() {
        let exec = Executor::new(1);
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::default();
        let outer = Arc::clone(&log);
        exec.scope(|s| {
            s.spawn(move || {
                let body_log = Arc::clone(&outer);
                scope(|inner| {
                    let sibling = Arc::clone(&body_log);
                    inner.spawn(move || sibling.lock().unwrap().push("sibling"));
                    // The sibling sits in this worker's own deque; a long
                    // solve yielding here must run it inline, now.
                    assert!(yield_once(), "a queued local subtask must be yielded to");
                    body_log.lock().unwrap().push("after-yield");
                    assert!(!yield_once(), "nothing left to yield to");
                });
            });
        });
        assert_eq!(*log.lock().unwrap(), vec!["sibling", "after-yield"]);
    }

    #[test]
    fn yield_once_is_a_noop_off_the_pool() {
        // The calling thread is no pool worker: the hint must come back
        // false without touching any queue.
        assert!(!yield_once());
    }

    #[test]
    fn with_executor_overrides_the_global_pool() {
        let exec = Executor::new(3);
        let (inside, outside) = (with_executor(&exec, current_workers), global().workers());
        assert_eq!(inside, 3);
        // The override is scoped: back outside we see the global pool.
        assert_eq!(current_workers(), outside);
    }

    /// The `DAPC_EXEC_WORKERS` sizing rules, exhaustively: a parsed `0`
    /// must clamp to a 1-worker pool (the old code let it fall through to
    /// the host default, and a hypothetical zero-worker pool would strand
    /// tasks queued by submitters that never help-run — non-scope owners
    /// have no inline fallback), garbage falls back to the host size, and
    /// surrounding whitespace is tolerated.
    #[test]
    fn env_override_clamps_zero_to_one_worker() {
        assert_eq!(override_workers(Some("0")), Some(1));
        assert_eq!(override_workers(Some("00")), Some(1));
        assert_eq!(override_workers(Some(" 0 ")), Some(1));
        assert_eq!(override_workers(Some("1")), Some(1));
        assert_eq!(override_workers(Some("6")), Some(6));
        assert_eq!(override_workers(Some(" 4\n")), Some(4));
        assert_eq!(override_workers(Some("")), None, "empty: host default");
        assert_eq!(override_workers(Some("-2")), None, "signed: host default");
        assert_eq!(override_workers(Some("two")), None, "garbage: host default");
        assert_eq!(override_workers(None), None, "unset: host default");
    }

    #[test]
    fn metrics_observe_injector_wait_and_run_when_enabled() {
        dapc_obs::set_enabled(true);
        let exec = Executor::new(2);
        exec.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {});
            }
        });
        let snap = dapc_obs::MetricsSnapshot::capture();
        for name in [
            "exec.injector.depth",
            "exec.task.wait_micros",
            "exec.task.run_micros",
        ] {
            match snap.get(name) {
                Some(dapc_obs::SnapshotEntry::Histogram { count, .. }) => {
                    assert!(*count >= 8, "{name}: {count} < 8 observations")
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let exec = Executor::new(0);
        assert_eq!(exec.workers(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let observe = Arc::clone(&ran);
        exec.scope(|s| {
            s.spawn(move || {
                observe.store(9, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 9);
    }
}
