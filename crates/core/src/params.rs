//! Shared parametrisation of the packing (§4) and covering (§5) solvers.

use dapc_ilp::SolverBudget;

/// The documented scaling knobs for the paper's leading constants
/// (DESIGN.md §2, item 3): every adapter, example and engine backend
/// derives its [`PcParams`] through these.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleKnobs {
    /// Replaces the `200` in `R = ⌈…·t·ln ñ/ε⌉`.
    pub r_scale: f64,
    /// Replaces the `16` in the preparation count `⌈…·ln ñ⌉`.
    pub prep_scale: f64,
    /// Replaces the `+8` in the covering iteration count.
    pub covering_t_slack: f64,
}

impl Default for ScaleKnobs {
    /// Laptop-scale defaults used throughout the examples and tests.
    fn default() -> Self {
        ScaleKnobs {
            r_scale: 0.02,
            prep_scale: 0.3,
            covering_t_slack: 1.0,
        }
    }
}

impl ScaleKnobs {
    /// The paper's constants (only sensible for very small inputs — the
    /// radii exceed any simulable diameter by orders of magnitude, which
    /// is *correct* but makes every cluster the whole graph).
    pub fn paper() -> Self {
        ScaleKnobs {
            r_scale: 200.0,
            prep_scale: 16.0,
            covering_t_slack: 8.0,
        }
    }

    /// Packing parameters for an explicit size hint `ñ` under these knobs
    /// — the one derivation `SolveConfig` and the `n`-variable helpers
    /// both delegate to.
    pub fn packing_params_for(&self, eps: f64, n_tilde: f64) -> PcParams {
        PcParams::packing_scaled(eps, n_tilde, self.r_scale, self.prep_scale)
    }

    /// Covering parameters for an explicit size hint `ñ` under these
    /// knobs.
    pub fn covering_params_for(&self, eps: f64, n_tilde: f64) -> PcParams {
        PcParams::covering_scaled(
            eps,
            n_tilde,
            self.r_scale,
            self.prep_scale,
            self.covering_t_slack,
        )
    }

    /// Packing parameters for an `n`-variable instance under these knobs.
    pub fn packing_params(&self, eps: f64, n: usize) -> PcParams {
        self.packing_params_for(eps, (n.max(3)) as f64)
    }

    /// Covering parameters for an `n`-variable instance under these knobs.
    pub fn covering_params(&self, eps: f64, n: usize) -> PcParams {
        self.covering_params_for(eps, (n.max(3)) as f64)
    }
}

/// Parameters of the Theorem 1.2 / 1.3 algorithms.
///
/// The `*_paper` constructors reproduce the constants printed in the paper;
/// the `*_scaled` constructors shrink the two leading constants (the `200`
/// in `R` and the `16` in the preparation count) while keeping the
/// *structure* — iteration counts, interval layout, sampling-probability
/// ratios — untouched (DESIGN.md §2, item 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcParams {
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Size hint `ñ ≥ max(|V|, W(OPT, V))`.
    pub n_tilde: f64,
    /// Phase 1 iteration count `t`.
    pub t: usize,
    /// Base interval length `R = ⌈r_scale·t·ln ñ/ε⌉`.
    pub r: usize,
    /// Number of preparation decompositions (`⌈prep_scale·ln ñ⌉`).
    pub prep_count: usize,
    /// Rate of the preparation decompositions (packing: `1/2`; covering:
    /// `ln(21/20)`).
    pub prep_lambda: f64,
    /// Radius of `S_C = N^{8tR}(C)` for the sampling estimates.
    pub sc_radius: usize,
    /// Rate of the final decomposition (packing Phase 3: `ε/10`; covering
    /// Phase 2 sparse cover: `ln((5+ε)/5)`).
    pub final_lambda: f64,
    /// Budget for every exact local solve.
    pub budget: SolverBudget,
    /// Concurrency cap for the preparation step's exact subset solves on
    /// the process-wide executor (default `1` = fully sequential). An
    /// *execution* knob, not an algorithm parameter: the preparation
    /// output is byte-identical at every worker count (see
    /// [`crate::prep::prepare`]).
    pub prep_workers: usize,
}

impl PcParams {
    fn common(
        eps: f64,
        n_tilde: f64,
        t: usize,
        r_scale: f64,
        prep_scale: f64,
    ) -> (usize, usize, usize) {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(n_tilde > 1.0, "n_tilde must exceed 1");
        let r = ((r_scale * t as f64 * n_tilde.ln()) / eps).ceil().max(2.0) as usize;
        let prep_count = (prep_scale * n_tilde.ln()).ceil().max(1.0) as usize;
        (r, prep_count, 8 * t * r)
    }

    /// Packing parameters with the paper's constants
    /// (`t = ⌈log₂(20/ε)⌉`, `R = ⌈200·t·ln ñ/ε⌉`, 16 ln ñ preparations at
    /// `λ = 1/2`, Phase 3 at `ε/10`).
    pub fn packing_paper(eps: f64, n_tilde: f64) -> Self {
        Self::packing_scaled(eps, n_tilde, 200.0, 16.0)
    }

    /// Packing parameters with scaled leading constants.
    pub fn packing_scaled(eps: f64, n_tilde: f64, r_scale: f64, prep_scale: f64) -> Self {
        let t = (20.0 / eps).log2().ceil() as usize;
        let (r, prep_count, sc_radius) = Self::common(eps, n_tilde, t, r_scale, prep_scale);
        PcParams {
            eps,
            n_tilde,
            t,
            r,
            prep_count,
            prep_lambda: 0.5,
            sc_radius,
            final_lambda: eps / 10.0,
            budget: SolverBudget::default(),
            prep_workers: 1,
        }
    }

    /// Covering parameters with the paper's constants
    /// (`t = ⌈log₂ ln n + log₂(1/ε) + 8⌉`, preparations at `λ = ln(21/20)`,
    /// final sparse cover at `λ = ln((5+ε)/5)`).
    pub fn covering_paper(eps: f64, n_tilde: f64) -> Self {
        Self::covering_scaled(eps, n_tilde, 200.0, 16.0, 8.0)
    }

    /// Covering parameters with scaled leading constants; `t_slack`
    /// replaces the `+8` in the iteration count (§1.4.3 — covering skips
    /// Phase 2 by lengthening Phase 1 to `O(log(1/ε) + log log n)`).
    pub fn covering_scaled(
        eps: f64,
        n_tilde: f64,
        r_scale: f64,
        prep_scale: f64,
        t_slack: f64,
    ) -> Self {
        assert!(n_tilde > std::f64::consts::E, "need ln ln ñ > 0");
        let t = (n_tilde.ln().log2() + (1.0 / eps).log2() + t_slack)
            .ceil()
            .max(1.0) as usize;
        let (r, prep_count, sc_radius) = Self::common(eps, n_tilde, t, r_scale, prep_scale);
        PcParams {
            eps,
            n_tilde,
            t,
            r,
            prep_count,
            prep_lambda: (21.0 / 20.0f64).ln(),
            sc_radius,
            final_lambda: ((5.0 + eps) / 5.0).ln(),
            budget: SolverBudget::default(),
            prep_workers: 1,
        }
    }

    /// Packing interval `I_i = [(t−i+2)·3R′+1, (t−i+3)·3R′]` with
    /// `R′ = R + 1` (§4.1); index `t + 1` is Phase 2's `[3R′+1, 6R′]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= i <= t + 1`.
    pub fn packing_interval(&self, i: usize) -> (usize, usize) {
        assert!(i >= 1 && i <= self.t + 1, "iteration index out of range");
        let rp = 3 * (self.r + 1);
        let k = self.t + 2 - i;
        (k * rp + 1, (k + 1) * rp)
    }

    /// Covering interval `I_i = [(t−i+1)·2R+1, (t−i+2)·2R]` (§5.1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= i <= t`.
    pub fn covering_interval(&self, i: usize) -> (usize, usize) {
        assert!(i >= 1 && i <= self.t, "iteration index out of range");
        let k = self.t + 1 - i;
        (k * 2 * self.r + 1, (k + 1) * 2 * self.r)
    }

    /// Centre-sampling probability of a cluster with local weight `w_c`
    /// and neighbourhood estimate `w_sc` in iteration `i`; Phase 2
    /// (packing only) is `i = t + 1` and gains the `ln(20/ε)` factor.
    pub fn sampling_probability(&self, i: usize, w_c: u64, w_sc: u64) -> f64 {
        if w_sc == 0 || w_c == 0 {
            return 0.0;
        }
        let base = 2f64.powi(i as i32) * w_c as f64 / w_sc as f64;
        if i == self.t + 1 {
            base * (20.0 / self.eps).ln()
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_paper_constants() {
        let p = PcParams::packing_paper(0.2, 1000.0);
        assert_eq!(p.t, 7);
        assert_eq!(p.r, ((200.0 * 7.0 * 1000f64.ln()) / 0.2).ceil() as usize);
        assert_eq!(p.prep_count, (16.0 * 1000f64.ln()).ceil() as usize);
        assert_eq!(p.prep_lambda, 0.5);
        assert_eq!(p.sc_radius, 8 * p.t * p.r);
    }

    #[test]
    fn covering_paper_constants() {
        let p = PcParams::covering_paper(0.2, 1000.0);
        let expected_t = (1000f64.ln().log2() + 5f64.log2() + 8.0).ceil() as usize;
        assert_eq!(p.t, expected_t);
        assert!((p.prep_lambda - (21.0f64 / 20.0).ln()).abs() < 1e-12);
        assert!((p.final_lambda - (5.2f64 / 5.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn packing_intervals_are_disjoint_mod3_aligned() {
        let p = PcParams::packing_scaled(0.25, 500.0, 1.0, 1.0);
        let rp = 3 * (p.r + 1);
        for i in 1..=p.t {
            let (a, b) = p.packing_interval(i);
            assert_eq!(b - a + 1, rp);
            assert_eq!(a % 3, 1, "a_i ≡ 1 (mod 3) so the windows tile");
            let (a_next, b_next) = p.packing_interval(i + 1);
            assert_eq!(a, b_next + 1);
            let _ = a_next;
        }
        assert_eq!(p.packing_interval(p.t + 1), (rp + 1, 2 * rp));
    }

    #[test]
    fn covering_intervals_tile() {
        let p = PcParams::covering_scaled(0.25, 500.0, 1.0, 1.0, 2.0);
        for i in 1..p.t {
            let (a, b) = p.covering_interval(i);
            assert_eq!(b - a + 1, 2 * p.r);
            let (_, b_next) = p.covering_interval(i + 1);
            assert_eq!(a, b_next + 1);
        }
        assert_eq!(p.covering_interval(p.t), (2 * p.r + 1, 4 * p.r));
    }

    #[test]
    fn sampling_probability_shapes() {
        let p = PcParams::packing_scaled(0.2, 100.0, 1.0, 1.0);
        assert_eq!(p.sampling_probability(3, 0, 10), 0.0);
        assert_eq!(p.sampling_probability(3, 10, 0), 0.0);
        let base = p.sampling_probability(1, 5, 1000);
        assert!((p.sampling_probability(2, 5, 1000) / base - 2.0).abs() < 1e-9);
        assert!(p.sampling_probability(p.t + 1, 5, 1000) > p.sampling_probability(p.t, 5, 1000));
    }

    #[test]
    fn covering_t_exceeds_packing_t() {
        // §1.4.3: covering lengthens Phase 1 by the log log n term.
        let pack = PcParams::packing_paper(0.2, 100_000.0);
        let cover = PcParams::covering_paper(0.2, 100_000.0);
        assert!(cover.t > pack.t);
    }
}
