//! The (1 + ε)-approximate covering solver (Theorem 1.3, §5).
//!
//! Covering cannot tolerate unclustered variables (zeroing them breaks
//! constraints), so the algorithm differs from packing in two ways
//! (§1.4.3): the preparation and final steps use the hyperedge **sparse
//! cover** of Lemma C.2 instead of a deleting decomposition, and Phase 2 is
//! skipped in favour of a longer Phase 1
//! (`t = ⌈log₂ ln n + log₂(1/ε) + 8⌉`).
//!
//! Grow-and-Carve-Covering (Algorithm 7) never deletes variables: it
//! **fixes** the local optimum on the two cheapest adjacent layers and
//! deletes the (now satisfied) hyperedges crossing them, isolating the
//! inner region. The final solution is the OR of: all fixed variables, the
//! exact local solutions of the isolated regions, and the exact local
//! solutions of the Lemma C.2 cover of the residual (Lemma C.3).

use crate::params::PcParams;
use crate::prep::{prepare, Preparation, SharedSubsetCache, SubsetSolver};
use dapc_conc::dist::bernoulli;
use dapc_graph::{BallScratch, Hypergraph, Vertex};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Per-phase accounting of a covering run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoveringStats {
    /// Sampled centres per Phase 1 iteration.
    pub centers_per_iteration: Vec<usize>,
    /// Weight fixed to one during the carving iterations.
    pub fixed_weight: u64,
    /// Hyperedges deleted (satisfied) by carving.
    pub deleted_edges: usize,
    /// Vertices removed into isolated regions during Phase 1.
    pub removed_vertices: usize,
    /// Number of isolated regions solved locally.
    pub removed_regions: usize,
    /// Number of final sparse-cover clusters solved.
    pub cover_clusters: usize,
    /// Whether every local solve proved optimality.
    pub all_solves_exact: bool,
}

/// Result of the Theorem 1.3 algorithm.
#[derive(Clone, Debug)]
pub struct CoveringOutcome {
    /// Feasible global 0/1 assignment.
    pub assignment: Vec<bool>,
    /// Its objective value `wᵀx`.
    pub value: u64,
    /// LOCAL round cost.
    pub ledger: RoundLedger,
    /// Phase accounting.
    pub stats: CoveringStats,
}

impl dapc_local::RoundCost for CoveringOutcome {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

/// Runs the (1 + ε)-approximate covering algorithm on `ilp`.
///
/// # Panics
///
/// Panics if `ilp` is not a covering instance.
///
/// # Examples
///
/// ```
/// use dapc_core::covering::approximate_covering;
/// use dapc_core::params::PcParams;
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
///
/// let g = gen::cycle(20);
/// let ilp = problems::min_vertex_cover_unweighted(&g);
/// let params = PcParams::covering_scaled(0.3, 20.0, 0.02, 0.3, 1.0);
/// let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(2));
/// assert!(ilp.is_feasible(&out.assignment));
/// assert!(out.value <= 13); // (1 + 0.3) · 10 = 13
/// ```
pub fn approximate_covering(
    ilp: &IlpInstance,
    params: &PcParams,
    rng: &mut StdRng,
) -> CoveringOutcome {
    approximate_covering_cached(ilp, params, rng, None)
}

/// [`approximate_covering`] with an optional cross-run subset-solve cache
/// for the `(instance, budget)` family. The outcome is identical with or
/// without the cache (subset solves are deterministic); only the exact
/// local computation is shared.
pub fn approximate_covering_cached(
    ilp: &IlpInstance,
    params: &PcParams,
    rng: &mut StdRng,
    cache: Option<&SharedSubsetCache>,
) -> CoveringOutcome {
    assert_eq!(ilp.sense(), Sense::Covering, "expected a covering instance");
    let h = ilp.hypergraph();
    let n = h.n();
    let m = h.m();
    let mut ledger = RoundLedger::new();
    let mut stats = CoveringStats::default();
    let mut solver = match cache {
        Some(c) => SubsetSolver::with_shared(ilp, params.budget, c.clone()),
        None => SubsetSolver::new(ilp, params.budget),
    };

    // Preparation: sparse covers + sampling weights.
    let primal = h.primal_graph();
    let prep_rounds = (4.0 * params.n_tilde.ln() / params.prep_lambda).ceil() as usize;
    ledger.begin_phase("prep: parallel sparse covers");
    ledger.charge_gather(prep_rounds);
    ledger.end_phase();
    ledger.begin_phase("prep: estimate W(S_C) at radius 8tR");
    ledger.charge_gather(params.sc_radius);
    ledger.end_phase();
    let prep: Preparation = prepare(ilp, h, &primal, params, rng, &mut solver);

    let mut alive_v = vec![true; n];
    let mut alive_e = vec![true; m];
    let mut fixed_one = vec![false; n];
    let mut scratch = BallScratch::new();
    let mut ball_mask = vec![false; n];

    // Phase 1: t carving iterations.
    for i in 1..=params.t {
        let (a_i, b_i) = params.covering_interval(i);
        ledger.begin_phase(format!("phase1/iter{i} carve"));
        ledger.charge_gather(b_i);
        let mut centers: Vec<&crate::prep::PrepCluster> = Vec::new();
        for c in &prep.clusters {
            if !c.members.iter().any(|&v| alive_v[v as usize]) {
                continue;
            }
            let p = params.sampling_probability(i, c.w_local, c.w_neighborhood);
            if bernoulli(rng, p) {
                centers.push(c);
            }
        }
        stats.centers_per_iteration.push(centers.len());
        // Covering carves are applied sequentially within an iteration to
        // keep the fixed-variable bookkeeping exact; in the LOCAL model
        // they run in parallel and the ledger charges them as one gather.
        for c in centers {
            let sources: Vec<Vertex> = c
                .members
                .iter()
                .copied()
                .filter(|&v| alive_v[v as usize])
                .collect();
            if sources.is_empty() {
                continue;
            }
            let ball =
                h.ball_with_scratch(&sources, b_i, Some(&alive_v), Some(&alive_e), &mut scratch);
            for v in ball.iter() {
                ball_mask[v as usize] = true;
            }
            let (_, local_sol, _) = solver.solve_mask(&ball_mask, Some(&fixed_one));
            for v in ball.iter() {
                ball_mask[v as usize] = false;
            }
            // Pick the odd j* in [a_i, b_i] minimising the solution weight
            // on layers j*, j*+1.
            let layer_weight = |j: usize| -> u64 {
                (j..=j + 1)
                    .flat_map(|l| ball.level(l).iter())
                    .filter(|&&v| local_sol[v as usize])
                    .map(|&v| ilp.weight(v))
                    .sum()
            };
            let mut j_star = a_i;
            let mut best = u64::MAX;
            let mut j = a_i;
            while j < b_i {
                let w = layer_weight(j);
                if w < best {
                    best = w;
                    j_star = j;
                    if w == 0 {
                        break;
                    }
                }
                j += 2;
            }
            // Fix the local assignment on the two layers.
            for l in [j_star, j_star + 1] {
                for &v in ball.level(l) {
                    if local_sol[v as usize] && !fixed_one[v as usize] {
                        fixed_one[v as usize] = true;
                        stats.fixed_weight += ilp.weight(v);
                    }
                }
            }
            // Delete the now-satisfied hyperedges crossing the two layers.
            let mut layer_of = vec![u8::MAX; n];
            for &v in ball.level(j_star) {
                layer_of[v as usize] = 0;
            }
            for &v in ball.level(j_star + 1) {
                layer_of[v as usize] = 1;
            }
            for &v in ball.level(j_star) {
                for &e in h.incident_edges(v) {
                    if !alive_e[e as usize] {
                        continue;
                    }
                    let members = h.edge(e);
                    let touches_next = members.iter().any(|&u| layer_of[u as usize] == 1);
                    if touches_next {
                        debug_assert!(
                            members
                                .iter()
                                .all(|&u| !alive_v[u as usize] || layer_of[u as usize] != u8::MAX),
                            "crossing hyperedge must lie inside the two layers"
                        );
                        alive_e[e as usize] = false;
                        stats.deleted_edges += 1;
                    }
                }
            }
            // Remove the inner region.
            for v in ball.within(j_star) {
                if alive_v[v as usize] {
                    alive_v[v as usize] = false;
                    stats.removed_vertices += 1;
                }
            }
        }
        ledger.end_phase();
    }

    // Solve the isolated (removed) regions: connected components of the
    // removed vertex set under the still-alive hyperedges.
    let removed: Vec<bool> = alive_v.iter().map(|&a| !a).collect();
    let mut assignment = fixed_one.clone();
    let (comp, k) = component_split(h, &removed, &alive_e);
    stats.removed_regions = k;
    ledger.begin_phase("removed-region local solves");
    ledger.charge_gather(2 * (params.t + 1) * 2 * params.r);
    ledger.end_phase();
    let mut mask = vec![false; n];
    for c in 0..k {
        for v in 0..n {
            mask[v] = removed[v] && comp[v] == c as u32;
        }
        let (_, local, _) = solver.solve_mask(&mask, Some(&fixed_one));
        for v in 0..n {
            if mask[v] && local[v] {
                assignment[v] = true;
            }
        }
    }

    // Phase 2: sparse cover of the residual + OR-combined local solves
    // (Lemmas C.2 and C.3).
    let cover = dapc_decomp::sparse_cover::sparse_cover(
        h,
        params.final_lambda,
        params.n_tilde,
        rng,
        Some(&alive_v),
        Some(&alive_e),
    );
    stats.cover_clusters = cover.clusters.len();
    ledger.absorb(cover.ledger.clone());
    ledger.begin_phase("final cover local solves");
    ledger.charge_gather(2 * (params.t + 1) * 2 * params.r);
    ledger.end_phase();
    for cluster in &cover.clusters {
        mask.iter_mut().for_each(|b| *b = false);
        for &v in cluster {
            mask[v as usize] = true;
        }
        // Only constraints fully inside the cluster AND still alive matter;
        // masked restriction keeps exactly those.
        // Deleted hyperedges are satisfied by `fixed_one` (checked at
        // deletion time), so the fixed-aware restriction drops them
        // automatically and the cluster solves only live constraints.
        let (_, local, _) = solver.solve_mask(&mask, Some(&fixed_one));
        for v in 0..n {
            if mask[v] && local[v] {
                assignment[v] = true;
            }
        }
    }

    stats.all_solves_exact = solver.all_exact;
    let value = ilp.value(&assignment);
    debug_assert!(
        ilp.is_feasible(&assignment),
        "covering output must be feasible"
    );
    CoveringOutcome {
        assignment,
        value,
        ledger,
        stats,
    }
}

/// Connected components of the `mask` vertices under alive hyperedges.
fn component_split(h: &Hypergraph, mask: &[bool], alive_e: &[bool]) -> (Vec<u32>, usize) {
    let n = h.n();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut scratch = BallScratch::new();
    for s in 0..n {
        if !mask[s] || comp[s] != u32::MAX {
            continue;
        }
        let ball = h.ball_with_scratch(
            &[s as Vertex],
            usize::MAX,
            Some(mask),
            Some(alive_e),
            &mut scratch,
        );
        for v in ball.iter() {
            comp[v as usize] = next;
        }
        next += 1;
    }
    (comp, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::{problems, verify};

    fn scaled(eps: f64, n: usize) -> PcParams {
        PcParams::covering_scaled(eps, n as f64, 0.02, 0.3, 1.0)
    }

    #[test]
    fn vertex_cover_on_cycle_within_guarantee() {
        let g = gen::cycle(30);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let params = scaled(0.3, 30);
        for seed in 0..5 {
            let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
            let v = verify::verdict(&ilp, &out.assignment, &params.budget);
            assert!(v.feasible);
            assert!(
                v.within_covering(0.3),
                "seed {seed}: ratio {} above 1 + ε",
                v.ratio
            );
        }
    }

    #[test]
    fn dominating_set_on_grid_within_guarantee() {
        let g = gen::grid(5, 5);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let params = scaled(0.4, 25);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(3));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible);
        assert!(v.within_covering(0.4), "ratio {}", v.ratio);
    }

    #[test]
    fn weighted_vertex_cover() {
        let g = gen::path(10);
        let w: Vec<u64> = (0..10).map(|i| 1 + (i % 3) as u64).collect();
        let ilp = problems::min_vertex_cover(&g, w);
        let params = scaled(0.3, 10);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(4));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible && v.within_covering(0.3), "ratio {}", v.ratio);
    }

    #[test]
    fn k_dominating_set() {
        let g = gen::cycle(24);
        let ilp = problems::k_dominating_set(&g, 2, vec![1; 24]);
        let params = scaled(0.4, 24);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(5));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible && v.within_covering(0.4), "ratio {}", v.ratio);
    }

    #[test]
    fn set_cover_instance() {
        let mut rng = gen::seeded_rng(6);
        use rand::RngExt;
        let universe = 30;
        let sets: Vec<Vec<usize>> = (0..25)
            .map(|i| {
                let mut s: Vec<usize> = (0..universe)
                    .filter(|_| rng.random::<f64>() < 0.15)
                    .collect();
                s.push(i % universe); // ensure coverage
                s
            })
            .collect();
        let ilp = problems::set_cover(universe, &sets, vec![1; 25]);
        let params = scaled(0.4, 30);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(7));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible && v.within_covering(0.4), "ratio {}", v.ratio);
    }

    #[test]
    fn general_covering_instance() {
        let ilp = problems::random_covering(20, 15, 3, &mut gen::seeded_rng(8));
        let params = scaled(0.4, 20);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(9));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible);
        assert!(v.within_covering(0.4), "ratio {}", v.ratio);
    }

    #[test]
    fn guarantee_holds_across_seeds() {
        let g = gen::gnp(30, 0.08, &mut gen::seeded_rng(10));
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let eps = 0.3;
        let params = scaled(eps, 30);
        let (opt, _) = verify::optimum(&ilp, &params.budget);
        for seed in 0..10 {
            let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
            assert!(
                out.value as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                "seed {seed}: {} > (1 + ε)·{opt}",
                out.value
            );
        }
    }
}
