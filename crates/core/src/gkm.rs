//! The Ghaffari–Kuhn–Maus baseline (§1.2 of the paper, [GKM17]).
//!
//! The pre-existing state of the art that Theorems 1.2/1.3 improve upon:
//! compute an `(O(log n), O(log n))` network decomposition of the power
//! graph `H^{2k}` with `k = Θ(log ñ/ε)`, then process colour classes
//! **sequentially**; inside its colour step, every cluster gathers
//! `N^k(S)`, simulates the sequential ball-growing-and-carving on what
//! remains, and commits an exact local solution. With `C = O(log n)`
//! colours and cluster diameter `D = O(log n)` (in `H^{2k}`, i.e.
//! `O(k log n)` in `H`), the round complexity is `O(k·C·D) = O(log³ n/ε)`
//! versus the paper's `Õ(log n/ε)` — the gap experiment E6 measures.

use crate::prep::{SharedSubsetCache, SubsetSolver};
use dapc_decomp::network_decomposition::network_decomposition;
use dapc_graph::{GraphBuilder, Hypergraph, Vertex};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Parameters of the GKM17 baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GkmParams {
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Size hint `ñ`.
    pub n_tilde: f64,
    /// The carving radius `k = ⌈k_scale·ln ñ/ε⌉`.
    pub k: usize,
    /// Budget for exact local solves.
    pub budget: dapc_ilp::SolverBudget,
}

impl GkmParams {
    /// `k = ⌈k_scale·ln ñ/ε⌉`; the paper's `k` is `Θ(log n/ε)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `n_tilde > 1`.
    pub fn new(eps: f64, n_tilde: f64, k_scale: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(n_tilde > 1.0, "n_tilde must exceed 1");
        GkmParams {
            eps,
            n_tilde,
            k: ((k_scale * n_tilde.ln()) / eps).ceil().max(3.0) as usize,
            budget: dapc_ilp::SolverBudget::default(),
        }
    }
}

/// Result of the GKM17 baseline.
#[derive(Clone, Debug)]
pub struct GkmOutcome {
    /// Feasible global 0/1 assignment.
    pub assignment: Vec<bool>,
    /// Its objective value.
    pub value: u64,
    /// LOCAL round cost (the `O(k·C·D)` accounting).
    pub ledger: RoundLedger,
    /// Colours used by the network decomposition.
    pub colors: u32,
    /// Whether every local solve proved optimality.
    pub all_solves_exact: bool,
}

impl dapc_local::RoundCost for GkmOutcome {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

/// Runs the GKM17 baseline on a packing or covering instance.
///
/// ```
/// use dapc_core::gkm::{gkm_solve, GkmParams};
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
///
/// let g = gen::cycle(18);
/// let ilp = problems::max_independent_set_unweighted(&g);
/// let params = GkmParams::new(0.3, 18.0, 0.2);
/// let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(4));
/// assert!(ilp.is_feasible(&out.assignment));
/// assert!(out.value >= 6); // (1 − ε)·α(C18) = 0.7 · 9
/// ```
pub fn gkm_solve(ilp: &IlpInstance, params: &GkmParams, rng: &mut StdRng) -> GkmOutcome {
    gkm_solve_cached(ilp, params, rng, None)
}

/// [`gkm_solve`] with an optional cross-run subset-solve cache for the
/// `(instance, budget)` family. The outcome is identical with or without
/// the cache (subset solves are deterministic); only the exact local
/// computation is shared.
pub fn gkm_solve_cached(
    ilp: &IlpInstance,
    params: &GkmParams,
    rng: &mut StdRng,
    cache: Option<&SharedSubsetCache>,
) -> GkmOutcome {
    let h = ilp.hypergraph();
    let n = h.n();
    let mut ledger = RoundLedger::new();
    let mut solver = match cache {
        Some(c) => SubsetSolver::with_shared(ilp, params.budget, c.clone()),
        None => SubsetSolver::new(ilp, params.budget),
    };

    // Network decomposition of H^{2k} (computed centrally; every round on
    // the power graph costs 2k rounds of H).
    let power = hypergraph_power(h, 2 * params.k);
    let nd = network_decomposition(&power, params.n_tilde, rng);
    ledger.begin_phase("network decomposition of H^{2k} (×2k rounds)");
    ledger.charge_gather(nd.ledger.total_rounds() * 2 * params.k);
    ledger.end_phase();

    // Sequential processing of colour classes.
    let mut alive_v = vec![true; n]; // unprocessed
    let mut alive_e = vec![true; h.m()];
    let mut fixed_one = vec![false; n];
    let mut assignment = vec![false; n];
    let max_cluster_diameter = nd.max_weak_diameter(&power) as usize;
    for color in 0..nd.colors {
        ledger.begin_phase(format!("color {color}: gather + carve (k·D)"));
        // Per the paper: gathering N^k(S) of a diameter-D cluster of H^{2k}
        // costs O(k·D) rounds in H.
        ledger.charge_gather(params.k * (max_cluster_diameter + 1).max(1));
        ledger.end_phase();
        for (c, members) in nd.clusters.iter() {
            if *c != color {
                continue;
            }
            let sources: Vec<Vertex> = members
                .iter()
                .copied()
                .filter(|&v| alive_v[v as usize])
                .collect();
            if sources.is_empty() {
                continue;
            }
            carve_cluster(
                ilp,
                h,
                &sources,
                params,
                &mut alive_v,
                &mut alive_e,
                &mut fixed_one,
                &mut assignment,
                &mut solver,
            );
        }
    }
    // Safety sweep: any leftovers (possible only when the ND cap fired)
    // are solved as isolated local instances.
    while let Some(s) = (0..n).find(|&v| alive_v[v]) {
        let ball = h.ball(&[s as Vertex], usize::MAX, Some(&alive_v), Some(&alive_e));
        let sources: Vec<Vertex> = ball.iter().collect();
        carve_cluster(
            ilp,
            h,
            &sources,
            params,
            &mut alive_v,
            &mut alive_e,
            &mut fixed_one,
            &mut assignment,
            &mut solver,
        );
    }
    let value = ilp.value(&assignment);
    debug_assert!(ilp.is_feasible(&assignment), "GKM output must be feasible");
    GkmOutcome {
        assignment,
        value,
        ledger,
        colors: nd.colors,
        all_solves_exact: solver.all_exact,
    }
}

/// One cluster's carving step: grow a ball of radius `k` in the residual,
/// pick the lightest boundary window (3 layers for packing, 2 for
/// covering), commit the exact local solution inside, zero/satisfy the
/// window, detach.
#[allow(clippy::too_many_arguments)]
fn carve_cluster(
    ilp: &IlpInstance,
    h: &Hypergraph,
    sources: &[Vertex],
    params: &GkmParams,
    alive_v: &mut [bool],
    alive_e: &mut [bool],
    fixed_one: &mut [bool],
    assignment: &mut [bool],
    solver: &mut SubsetSolver<'_>,
) {
    let n = h.n();
    let alive_snapshot: Vec<bool> = alive_v.to_vec();
    let ball = h.ball(sources, params.k, Some(&alive_snapshot), Some(alive_e));
    let mut ball_mask = vec![false; n];
    for v in ball.iter() {
        ball_mask[v as usize] = true;
    }
    match ilp.sense() {
        Sense::Packing => {
            let (_, local, _) = solver.solve_mask(&ball_mask, None);
            // Windows [j, j+2] with j ≡ j0 (mod 3) inside [2, k−1].
            let lo = 2usize.min(params.k.saturating_sub(1));
            let mut j_star = lo;
            let mut best = u64::MAX;
            let mut j = lo;
            while j + 2 <= params.k {
                let w: u64 = (j..j + 3)
                    .flat_map(|l| ball.level(l).iter())
                    .filter(|&&v| local[v as usize])
                    .map(|&v| ilp.weight(v))
                    .sum();
                if w < best {
                    best = w;
                    j_star = j;
                    if w == 0 {
                        break;
                    }
                }
                j += 3;
            }
            // Commit the solution inside N^{j*}(S); zero the middle layer.
            for v in ball.within(j_star) {
                if local[v as usize] {
                    assignment[v as usize] = true;
                }
                alive_v[v as usize] = false;
            }
            for &v in ball.level(j_star + 1) {
                alive_v[v as usize] = false; // zeroed boundary
            }
        }
        Sense::Covering => {
            let (_, local, _) = solver.solve_mask(&ball_mask, Some(fixed_one));
            // The window {j*, j*+1} must fit inside the ball (j*+1 ≤ k),
            // otherwise the default j* would sit on the ball boundary and
            // `within(j*)` would kill vertices whose outward constraints
            // were never satisfied. Hyperedge members span at most two
            // adjacent layers, so any window with j* ≥ 1 carves soundly;
            // prefer j* ≥ 3 (a non-trivial inner core) when k allows it.
            let lo = if params.k >= 4 { 3 } else { 1 };
            let mut j_star = lo;
            let mut best = u64::MAX;
            let mut j = lo;
            while j < params.k {
                let w: u64 = (j..=j + 1)
                    .flat_map(|l| ball.level(l).iter())
                    .filter(|&&v| local[v as usize])
                    .map(|&v| ilp.weight(v))
                    .sum();
                if w < best {
                    best = w;
                    j_star = j;
                    if w == 0 {
                        break;
                    }
                }
                j += 2;
            }
            // Fix the window, delete crossing hyperedges, solve inside.
            let mut layer_of = vec![u8::MAX; n];
            for &v in ball.level(j_star) {
                layer_of[v as usize] = 0;
            }
            for &v in ball.level(j_star + 1) {
                layer_of[v as usize] = 1;
            }
            for l in [j_star, j_star + 1] {
                for &v in ball.level(l) {
                    if local[v as usize] {
                        fixed_one[v as usize] = true;
                        assignment[v as usize] = true;
                    }
                }
            }
            for &v in ball.level(j_star) {
                for &e in h.incident_edges(v) {
                    if alive_e[e as usize] && h.edge(e).iter().any(|&u| layer_of[u as usize] == 1) {
                        alive_e[e as usize] = false;
                    }
                }
            }
            // Inner region: solve with fixed variables honoured.
            let mut inner = vec![false; n];
            for v in ball.within(j_star) {
                inner[v as usize] = true;
                alive_v[v as usize] = false;
            }
            let (_, inner_sol, _) = solver.solve_mask(&inner, Some(fixed_one));
            for v in 0..n {
                if inner[v] && inner_sol[v] {
                    assignment[v] = true;
                }
            }
        }
    }
}

/// The `k`-th power of the primal graph of `h`.
fn hypergraph_power(h: &Hypergraph, k: usize) -> dapc_graph::Graph {
    let n = h.n();
    let mut b = GraphBuilder::new(n);
    for v in 0..n as Vertex {
        let ball = h.ball(&[v], k, None, None);
        for u in ball.iter() {
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {

    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::{problems, verify};
    use dapc_local::RoundCost;

    #[test]
    fn gkm_mis_within_guarantee() {
        let g = gen::cycle(24);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = GkmParams::new(0.3, 24.0, 0.2);
        for seed in 0..3 {
            let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(seed));
            let v = verify::verdict(&ilp, &out.assignment, &params.budget);
            assert!(v.feasible);
            assert!(v.within_packing(0.3), "seed {seed}: ratio {}", v.ratio);
        }
    }

    #[test]
    fn gkm_vertex_cover_within_guarantee() {
        let g = gen::grid(4, 5);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let params = GkmParams::new(0.3, 20.0, 0.2);
        let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(5));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible);
        assert!(v.within_covering(0.3), "ratio {}", v.ratio);
    }

    #[test]
    fn gkm_dominating_set() {
        let g = gen::cycle(21);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let params = GkmParams::new(0.4, 21.0, 0.2);
        let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(6));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible);
        assert!(v.within_covering(0.4), "ratio {}", v.ratio);
    }

    #[test]
    fn gkm_rounds_scale_with_k_times_colors() {
        let g = gen::cycle(32);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = GkmParams::new(0.3, 32.0, 0.2);
        let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(7));
        // Every colour phase costs at least k rounds.
        assert!(out.rounds() >= params.k * out.colors as usize);
    }

    #[test]
    fn gkm_matching() {
        let g = gen::path(20);
        let m = problems::max_matching(&g);
        let params = GkmParams::new(0.3, 20.0, 0.2);
        let out = gkm_solve(&m.ilp, &params, &mut gen::seeded_rng(8));
        assert!(m.ilp.is_feasible(&out.assignment));
        assert!(out.value >= 7); // OPT = 10
    }
}
