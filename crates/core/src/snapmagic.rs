//! Central registry of every persisted snapshot format's magic bytes.
//!
//! Every binary format the workspace writes to disk or the wire opens
//! with the same shape of prefix: seven identifying bytes
//! (`DAPC` + a three-letter format tag) and a format version byte.
//! Version `\x01` formats end with their last field; version `\x02`+
//! formats append a 16-byte FNV-1a-128 seal over every preceding byte
//! (`dapc_runtime::snap`), so bit flips and truncation fail loudly.
//!
//! This module is the *only* place a `b"DAPC…"` literal may appear in
//! library code — the `magic-registry` rule of `dapc-analyze` enforces
//! single declaration, 8-byte length, `DAPC` prefix, version-byte
//! range, tag uniqueness and seal-flag consistency, and the
//! `registry_is_consistent` unit test re-checks the table at runtime.
//! Loaders and writers import these constants; a new format starts by
//! adding its entry here.
//!
//! Field-order convention (the analyzer's lexical seal check relies on
//! it): each entry writes `bytes` first, then `sealed`, then `name`.

/// One registered snapshot format: its 8-byte magic (7 identifying
/// bytes + 1 version byte), whether the format carries a trailing
/// FNV-1a-128 whole-payload seal, and a human-readable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Magic {
    /// The full 8-byte prefix, version byte included.
    pub bytes: &'static [u8; 8],
    /// Whether the payload ends with a 16-byte FNV-1a-128 seal. By
    /// convention true exactly for version `\x02`+ formats.
    pub sealed: bool,
    /// Short human-readable format name for error messages and docs.
    pub name: &'static str,
}

impl Magic {
    /// The format version byte (the magic's last byte).
    pub const fn version(&self) -> u8 {
        self.bytes[7]
    }

    /// The three-letter format tag between the `DAPC` prefix and the
    /// version byte.
    pub fn tag(&self) -> &'static [u8] {
        &self.bytes[4..7]
    }
}

/// `dapc_core::prep::SharedSubsetCache` warm-start snapshot.
pub const SUBSET_CACHE: Magic = Magic {
    bytes: b"DAPCSSC\x01",
    sealed: false,
    name: "subset-cache warm-start snapshot",
};

/// `dapc_runtime::PrepCache` whole-cache (per-family) snapshot.
pub const PREP_CACHE: Magic = Magic {
    bytes: b"DAPCPPC\x01",
    sealed: false,
    name: "prep-cache family snapshot",
};

/// `dapc_runtime::BatchAggregator` canonical binary snapshot.
pub const AGGREGATOR: Magic = Magic {
    bytes: b"DAPCAGG\x01",
    sealed: false,
    name: "batch-aggregator snapshot",
};

/// `dapc_runtime::ShardReport` snapshot (whole-shard results).
pub const SHARD: Magic = Magic {
    bytes: b"DAPCSHD\x02",
    sealed: true,
    name: "shard report snapshot",
};

/// `dapc_runtime::PartReport` checkpoint (contiguous job range).
pub const PART: Magic = Magic {
    bytes: b"DAPCPRT\x02",
    sealed: true,
    name: "part-report checkpoint",
};

/// `dapc_serve::CorpusSpec` declarative sweep description.
pub const SPEC: Magic = Magic {
    bytes: b"DAPCSPC\x01",
    sealed: false,
    name: "corpus-spec bytes",
};

/// `dapc_serve` sweep-directory `manifest.bin`.
pub const MANIFEST: Magic = Magic {
    bytes: b"DAPCMAN\x02",
    sealed: true,
    name: "sweep manifest",
};

/// `dapc_bench::shard` shard *file* (header + recorded shard reports).
pub const SHARD_FILE: Magic = Magic {
    bytes: b"DAPCSHF\x02",
    sealed: true,
    name: "bench shard file",
};

/// Every registered format, for the consistency test and for tooling
/// that wants to recognise any workspace snapshot.
pub const ALL: [&Magic; 8] = [
    &SUBSET_CACHE,
    &PREP_CACHE,
    &AGGREGATOR,
    &SHARD,
    &PART,
    &SPEC,
    &MANIFEST,
    &SHARD_FILE,
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry invariants the `magic-registry` analyzer rule
    /// checks lexically, re-checked on the real table: `DAPC` prefix,
    /// known version byte, version/seal consistency, and uniqueness of
    /// both the full magic and the three-letter tag.
    #[test]
    fn registry_is_consistent() {
        let mut seen_magic = std::collections::BTreeSet::new();
        let mut seen_tag = std::collections::BTreeSet::new();
        for m in ALL {
            assert!(
                m.bytes.starts_with(b"DAPC"),
                "{} magic lacks the DAPC prefix",
                m.name
            );
            assert!(
                (1..=2).contains(&m.version()),
                "{} has unknown version byte {:#04x}",
                m.name,
                m.version()
            );
            assert_eq!(
                m.sealed,
                m.version() >= 2,
                "{}: seal presence must match the version convention",
                m.name
            );
            assert!(
                seen_magic.insert(m.bytes),
                "duplicate magic {:?} ({})",
                m.bytes,
                m.name
            );
            assert!(
                seen_tag.insert(m.tag()),
                "duplicate format tag {:?} ({})",
                String::from_utf8_lossy(m.tag()),
                m.name
            );
        }
        assert_eq!(ALL.len(), 8, "keep the table in sync with the formats");
    }
}
