//! The thin graph-problem builder over the solver engine.
//!
//! Each constructor names one of the graph problems the paper headlines
//! (Definition 1.3), the chained setters configure the solve, and
//! [`GraphProblem::solve_with`] runs any [`Solver`] backend and maps the
//! ILP assignment back to graph objects:
//!
//! ```
//! use dapc_core::adapters::GraphProblem;
//! use dapc_core::engine::ThreePhase;
//! use dapc_graph::gen;
//!
//! let g = gen::cycle(20);
//! let r = GraphProblem::max_independent_set(&g)
//!     .eps(0.3)
//!     .seed(0)
//!     .solve_with(&ThreePhase);
//! assert!(r.weight >= 7); // (1 − 0.3) · α(C20) = 0.7 · 10
//! ```

use crate::engine::{SolveConfig, SolveReport, Solver};
use crate::params::ScaleKnobs;
use dapc_graph::{Graph, Vertex};
use dapc_ilp::problems;
use dapc_local::{RoundCost, RoundLedger};
use rand::rngs::StdRng;

/// Which graph problem is being built.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    MaxIndependentSet,
    MaxMatching,
    MinVertexCover,
    DominatingSet { k: usize },
}

/// A graph problem plus its solve configuration, ready to run against any
/// engine backend.
#[derive(Clone, Debug)]
pub struct GraphProblem<'g> {
    graph: &'g Graph,
    kind: Kind,
    weights: Option<Vec<u64>>,
    cfg: SolveConfig,
}

/// Result of a [`GraphProblem`] solve: the graph-level answer plus the
/// full engine [`SolveReport`].
#[derive(Clone, Debug)]
pub struct GraphSolveResult {
    /// The selected vertices (sorted; empty for matching problems).
    pub vertices: Vec<Vertex>,
    /// The selected edges (canonical orientation; empty for vertex
    /// problems).
    pub edges: Vec<(Vertex, Vertex)>,
    /// Total weight of the selection.
    pub weight: u64,
    /// The underlying engine report (assignment, value, ledger, stats,
    /// feasibility verdict).
    pub report: SolveReport,
}

impl RoundCost for GraphSolveResult {
    fn ledger(&self) -> &RoundLedger {
        &self.report.ledger
    }
}

impl<'g> GraphProblem<'g> {
    fn new(graph: &'g Graph, kind: Kind) -> Self {
        GraphProblem {
            graph,
            kind,
            weights: None,
            cfg: SolveConfig::new(),
        }
    }

    /// `(1 − ε)`-approximate maximum-weight independent set (Theorem 1.2).
    pub fn max_independent_set(graph: &'g Graph) -> Self {
        Self::new(graph, Kind::MaxIndependentSet)
    }

    /// `(1 − ε)`-approximate maximum matching (Theorem 1.2 on the edge
    /// ILP). Vertex weights do not apply; [`GraphProblem::weights`] panics
    /// on this kind.
    pub fn max_matching(graph: &'g Graph) -> Self {
        Self::new(graph, Kind::MaxMatching)
    }

    /// `(1 + ε)`-approximate minimum-weight vertex cover (Theorem 1.3).
    pub fn min_vertex_cover(graph: &'g Graph) -> Self {
        Self::new(graph, Kind::MinVertexCover)
    }

    /// `(1 + ε)`-approximate minimum-weight dominating set (Theorem 1.3).
    pub fn min_dominating_set(graph: &'g Graph) -> Self {
        Self::new(graph, Kind::DominatingSet { k: 1 })
    }

    /// `(1 + ε)`-approximate minimum-weight `k`-distance dominating set —
    /// the running example of Definition 1.3. One hypergraph round
    /// simulates `k` graph rounds; the returned ledger is already
    /// multiplied out.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn k_dominating_set(graph: &'g Graph, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self::new(graph, Kind::DominatingSet { k })
    }

    /// Sets per-vertex weights (default: all ones).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `g.n()`, or on matching problems
    /// (whose variables are edges).
    pub fn weights(mut self, weights: &[u64]) -> Self {
        assert_ne!(
            self.kind,
            Kind::MaxMatching,
            "matching variables are edges; vertex weights do not apply"
        );
        assert_eq!(weights.len(), self.graph.n(), "one weight per vertex");
        self.weights = Some(weights.to_vec());
        self
    }

    /// Sets the approximation parameter `ε`.
    pub fn eps(mut self, eps: f64) -> Self {
        self.cfg = self.cfg.eps(eps);
        self
    }

    /// Sets the RNG seed used by [`GraphProblem::solve_with`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg = self.cfg.seed(seed);
        self
    }

    /// Replaces the scaling knobs.
    pub fn knobs(mut self, knobs: ScaleKnobs) -> Self {
        self.cfg = self.cfg.knobs(knobs);
        self
    }

    /// Replaces the whole solve configuration.
    pub fn config(mut self, cfg: SolveConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The configuration this problem will solve under.
    pub fn solve_config(&self) -> &SolveConfig {
        &self.cfg
    }

    fn unit_weights(&self) -> Vec<u64> {
        self.weights
            .clone()
            .unwrap_or_else(|| vec![1; self.graph.n()])
    }

    /// Runs `solver` with the configured seed.
    pub fn solve_with(&self, solver: &dyn Solver) -> GraphSolveResult {
        self.solve_with_rng(solver, &mut self.cfg.rng())
    }

    /// Runs `solver` drawing randomness from the caller's `rng` (for
    /// experiments that share one stream across many solves).
    pub fn solve_with_rng(&self, solver: &dyn Solver, rng: &mut StdRng) -> GraphSolveResult {
        let g = self.graph;
        let w = self.unit_weights();
        match self.kind {
            Kind::MaxIndependentSet => {
                let ilp = problems::max_independent_set(g, w.clone());
                let report = solver.solve(&ilp, &self.cfg, rng);
                vertex_result(report, &w)
            }
            Kind::MinVertexCover => {
                let ilp = problems::min_vertex_cover(g, w.clone());
                let report = solver.solve(&ilp, &self.cfg, rng);
                vertex_result(report, &w)
            }
            Kind::DominatingSet { k } => {
                let ilp = problems::k_dominating_set(g, k, w.clone());
                let report = solver.solve(&ilp, &self.cfg, rng);
                let mut out = vertex_result(report, &w);
                out.report.ledger = std::mem::take(&mut out.report.ledger).scaled(k);
                out
            }
            Kind::MaxMatching => {
                let m = problems::max_matching(g);
                // Match the legacy adapter's size hint: the edge count can
                // exceed n, and the guarantee is stated in ñ ≥ |V(H)|.
                let cfg = if self.cfg.n_tilde.is_some() {
                    self.cfg.clone()
                } else {
                    self.cfg.clone().n_tilde(m.ilp.n().max(g.n()).max(3) as f64)
                };
                let report = solver.solve(&m.ilp, &cfg, rng);
                let edges: Vec<(Vertex, Vertex)> = report
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| x)
                    .map(|(i, _)| m.edge_of_var[i])
                    .collect();
                GraphSolveResult {
                    vertices: Vec::new(),
                    weight: report.value,
                    edges,
                    report,
                }
            }
        }
    }
}

fn vertex_result(report: SolveReport, weights: &[u64]) -> GraphSolveResult {
    let vertices: Vec<Vertex> = report
        .assignment
        .iter()
        .enumerate()
        .filter(|(_, &x)| x)
        .map(|(v, _)| v as Vertex)
        .collect();
    let weight = vertices.iter().map(|&v| weights[v as usize]).sum();
    GraphSolveResult {
        vertices,
        edges: Vec::new(),
        weight,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BranchAndBound, Ensemble, Gkm, ThreePhase};
    use dapc_graph::gen;
    use dapc_ilp::solvers::blossom;

    #[test]
    fn mis_builder_returns_independent_set() {
        let g = gen::gnp(30, 0.1, &mut gen::seeded_rng(1));
        let r = GraphProblem::max_independent_set(&g)
            .eps(0.3)
            .seed(2)
            .solve_with(&ThreePhase);
        for &u in &r.vertices {
            for &v in &r.vertices {
                assert!(
                    u == v || !g.has_edge(u, v),
                    "({u},{v}) violates independence"
                );
            }
        }
        assert_eq!(r.weight as usize, r.vertices.len());
        assert!(r.report.feasible());
    }

    #[test]
    fn matching_builder_returns_matching() {
        let g = gen::gnp(24, 0.12, &mut gen::seeded_rng(3));
        let r = GraphProblem::max_matching(&g)
            .eps(0.3)
            .seed(4)
            .solve_with(&ThreePhase);
        let mut used = [false; 24];
        for &(u, v) in &r.edges {
            assert!(g.has_edge(u, v));
            assert!(!used[u as usize] && !used[v as usize], "vertex reused");
            used[u as usize] = true;
            used[v as usize] = true;
        }
        let opt = blossom::max_matching(&g).size();
        assert!(
            r.edges.len() as f64 >= 0.7 * opt as f64,
            "matching {} vs OPT {opt}",
            r.edges.len()
        );
    }

    #[test]
    fn vc_builder_returns_cover() {
        let g = gen::cycle(18);
        let r = GraphProblem::min_vertex_cover(&g)
            .eps(0.3)
            .seed(5)
            .solve_with(&ThreePhase);
        let mut in_cover = [false; 18];
        for &v in &r.vertices {
            in_cover[v as usize] = true;
        }
        for (u, v) in g.edges() {
            assert!(in_cover[u as usize] || in_cover[v as usize]);
        }
        assert!(r.weight <= 12); // (1 + 0.3) · 9 = 11.7
    }

    #[test]
    fn ds_builder_returns_dominating_set() {
        let g = gen::grid(4, 4);
        let r = GraphProblem::min_dominating_set(&g)
            .eps(0.4)
            .seed(6)
            .solve_with(&ThreePhase);
        let mut in_set = [false; 16];
        for &v in &r.vertices {
            in_set[v as usize] = true;
        }
        for v in g.vertices() {
            let dominated =
                in_set[v as usize] || g.neighbors(v).iter().any(|&u| in_set[u as usize]);
            assert!(dominated, "vertex {v} undominated");
        }
    }

    #[test]
    fn k_ds_rounds_multiply_by_k() {
        let g = gen::cycle(16);
        let r1 = GraphProblem::k_dominating_set(&g, 1)
            .eps(0.4)
            .seed(7)
            .solve_with(&ThreePhase);
        let r2 = GraphProblem::k_dominating_set(&g, 2)
            .eps(0.4)
            .seed(7)
            .solve_with(&ThreePhase);
        assert!(
            r2.rounds() > r1.rounds() / 2,
            "k=2 simulation cost reflected"
        );
        assert!(!r2.vertices.is_empty());
    }

    #[test]
    fn weighted_problems_flow_through_the_builder() {
        let g = gen::star(12);
        let mut w = vec![1u64; 12];
        w[0] = 100; // hub dominates
        let r = GraphProblem::max_independent_set(&g)
            .weights(&w)
            .eps(0.2)
            .seed(4)
            .solve_with(&ThreePhase);
        assert!(r.weight >= 100, "must take the heavy hub: {}", r.weight);
        assert_eq!(
            r.weight,
            r.vertices.iter().map(|&v| w[v as usize]).sum::<u64>()
        );
    }

    #[test]
    fn any_backend_slots_into_the_builder() {
        let g = gen::cycle(15);
        for solver in [&Gkm as &dyn Solver, &Ensemble, &BranchAndBound] {
            let r = GraphProblem::min_dominating_set(&g)
                .eps(0.4)
                .seed(8)
                .solve_with(solver);
            assert!(r.report.feasible(), "{} infeasible", solver.name());
            assert!(!r.vertices.is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn weights_on_matching_panic() {
        let g = gen::cycle(4);
        let _ = GraphProblem::max_matching(&g).weights(&[1, 1, 1, 1]);
    }
}
