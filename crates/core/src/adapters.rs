//! One-call adapters for the graph problems the paper headlines:
//! maximum independent set, maximum matching, minimum vertex cover,
//! minimum (k-distance) dominating set.
//!
//! Each adapter builds the ILP of Definition 1.3, runs the Theorem 1.2/1.3
//! solver and maps the assignment back to graph objects.

use crate::covering::approximate_covering;
use crate::packing::approximate_packing;
use crate::params::PcParams;
use dapc_graph::{Graph, Vertex};
use dapc_ilp::problems;
use rand::rngs::StdRng;

/// Scaling knobs shared by the adapters (DESIGN.md §2, item 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleKnobs {
    /// Replaces the `200` in `R = ⌈…·t·ln ñ/ε⌉`.
    pub r_scale: f64,
    /// Replaces the `16` in the preparation count `⌈…·ln ñ⌉`.
    pub prep_scale: f64,
    /// Replaces the `+8` in the covering iteration count.
    pub covering_t_slack: f64,
}

impl Default for ScaleKnobs {
    /// Laptop-scale defaults used throughout the examples and tests.
    fn default() -> Self {
        ScaleKnobs {
            r_scale: 0.02,
            prep_scale: 0.3,
            covering_t_slack: 1.0,
        }
    }
}

impl ScaleKnobs {
    /// The paper's constants (only sensible for very small inputs — the
    /// radii exceed any simulable diameter by orders of magnitude, which
    /// is *correct* but makes every cluster the whole graph).
    pub fn paper() -> Self {
        ScaleKnobs {
            r_scale: 200.0,
            prep_scale: 16.0,
            covering_t_slack: 8.0,
        }
    }

    fn packing_params(&self, eps: f64, n: usize) -> PcParams {
        PcParams::packing_scaled(eps, (n.max(3)) as f64, self.r_scale, self.prep_scale)
    }

    fn covering_params(&self, eps: f64, n: usize) -> PcParams {
        PcParams::covering_scaled(
            eps,
            (n.max(3)) as f64,
            self.r_scale,
            self.prep_scale,
            self.covering_t_slack,
        )
    }
}

/// A vertex-set answer with its LOCAL round cost.
#[derive(Clone, Debug)]
pub struct VertexSetResult {
    /// The selected vertices (sorted).
    pub vertices: Vec<Vertex>,
    /// Total weight of the selection.
    pub weight: u64,
    /// LOCAL rounds charged.
    pub rounds: usize,
}

/// An edge-set answer with its LOCAL round cost.
#[derive(Clone, Debug)]
pub struct EdgeSetResult {
    /// The selected edges (canonical orientation).
    pub edges: Vec<(Vertex, Vertex)>,
    /// LOCAL rounds charged.
    pub rounds: usize,
}

fn collect_vertices(assignment: &[bool], weights: &[u64]) -> (Vec<Vertex>, u64) {
    let vertices: Vec<Vertex> = assignment
        .iter()
        .enumerate()
        .filter(|(_, &x)| x)
        .map(|(v, _)| v as Vertex)
        .collect();
    let weight = vertices.iter().map(|&v| weights[v as usize]).sum();
    (vertices, weight)
}

/// `(1 − ε)`-approximate maximum-weight independent set (Theorem 1.2).
///
/// ```
/// use dapc_core::adapters::{approx_max_independent_set, ScaleKnobs};
/// use dapc_graph::gen;
///
/// let g = gen::cycle(20);
/// let r = approx_max_independent_set(
///     &g, &vec![1; 20], 0.3, &ScaleKnobs::default(), &mut gen::seeded_rng(0));
/// assert!(r.weight >= 7); // (1 − 0.3) · 10
/// ```
pub fn approx_max_independent_set(
    g: &Graph,
    weights: &[u64],
    eps: f64,
    knobs: &ScaleKnobs,
    rng: &mut StdRng,
) -> VertexSetResult {
    let ilp = problems::max_independent_set(g, weights.to_vec());
    let params = knobs.packing_params(eps, g.n());
    let out = approximate_packing(&ilp, &params, rng);
    let (vertices, weight) = collect_vertices(&out.assignment, weights);
    VertexSetResult {
        vertices,
        weight,
        rounds: out.rounds(),
    }
}

/// `(1 − ε)`-approximate maximum matching (Theorem 1.2 on the edge ILP).
pub fn approx_max_matching(
    g: &Graph,
    eps: f64,
    knobs: &ScaleKnobs,
    rng: &mut StdRng,
) -> EdgeSetResult {
    let m = problems::max_matching(g);
    let params = knobs.packing_params(eps, m.ilp.n().max(g.n()));
    let out = approximate_packing(&m.ilp, &params, rng);
    let edges: Vec<(Vertex, Vertex)> = out
        .assignment
        .iter()
        .enumerate()
        .filter(|(_, &x)| x)
        .map(|(i, _)| m.edge_of_var[i])
        .collect();
    EdgeSetResult {
        edges,
        rounds: out.rounds(),
    }
}

/// `(1 + ε)`-approximate minimum-weight vertex cover (Theorem 1.3).
pub fn approx_min_vertex_cover(
    g: &Graph,
    weights: &[u64],
    eps: f64,
    knobs: &ScaleKnobs,
    rng: &mut StdRng,
) -> VertexSetResult {
    let ilp = problems::min_vertex_cover(g, weights.to_vec());
    let params = knobs.covering_params(eps, g.n());
    let out = approximate_covering(&ilp, &params, rng);
    let (vertices, weight) = collect_vertices(&out.assignment, weights);
    VertexSetResult {
        vertices,
        weight,
        rounds: out.rounds(),
    }
}

/// `(1 + ε)`-approximate minimum-weight dominating set (Theorem 1.3).
pub fn approx_min_dominating_set(
    g: &Graph,
    weights: &[u64],
    eps: f64,
    knobs: &ScaleKnobs,
    rng: &mut StdRng,
) -> VertexSetResult {
    approx_k_dominating_set(g, 1, weights, eps, knobs, rng)
}

/// `(1 + ε)`-approximate minimum-weight `k`-distance dominating set — the
/// running example of Definition 1.3 (one hypergraph round = `k` graph
/// rounds; the returned round count is already multiplied out).
pub fn approx_k_dominating_set(
    g: &Graph,
    k: usize,
    weights: &[u64],
    eps: f64,
    knobs: &ScaleKnobs,
    rng: &mut StdRng,
) -> VertexSetResult {
    let ilp = problems::k_dominating_set(g, k, weights.to_vec());
    let params = knobs.covering_params(eps, g.n());
    let out = approximate_covering(&ilp, &params, rng);
    let (vertices, weight) = collect_vertices(&out.assignment, weights);
    VertexSetResult {
        vertices,
        weight,
        rounds: out.rounds() * k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::solvers::blossom;

    #[test]
    fn mis_adapter_returns_independent_set() {
        let g = gen::gnp(30, 0.1, &mut gen::seeded_rng(1));
        let r = approx_max_independent_set(
            &g,
            &vec![1; 30],
            0.3,
            &ScaleKnobs::default(),
            &mut gen::seeded_rng(2),
        );
        for &u in &r.vertices {
            for &v in &r.vertices {
                assert!(u == v || !g.has_edge(u, v), "({u},{v}) violates independence");
            }
        }
        assert_eq!(r.weight as usize, r.vertices.len());
    }

    #[test]
    fn matching_adapter_returns_matching() {
        let g = gen::gnp(24, 0.12, &mut gen::seeded_rng(3));
        let r = approx_max_matching(&g, 0.3, &ScaleKnobs::default(), &mut gen::seeded_rng(4));
        let mut used = vec![false; 24];
        for &(u, v) in &r.edges {
            assert!(g.has_edge(u, v));
            assert!(!used[u as usize] && !used[v as usize], "vertex reused");
            used[u as usize] = true;
            used[v as usize] = true;
        }
        let opt = blossom::max_matching(&g).size();
        assert!(
            r.edges.len() as f64 >= 0.7 * opt as f64,
            "matching {} vs OPT {opt}",
            r.edges.len()
        );
    }

    #[test]
    fn vc_adapter_returns_cover() {
        let g = gen::cycle(18);
        let r = approx_min_vertex_cover(
            &g,
            &vec![1; 18],
            0.3,
            &ScaleKnobs::default(),
            &mut gen::seeded_rng(5),
        );
        let in_cover: Vec<bool> = {
            let mut m = vec![false; 18];
            for &v in &r.vertices {
                m[v as usize] = true;
            }
            m
        };
        for (u, v) in g.edges() {
            assert!(in_cover[u as usize] || in_cover[v as usize]);
        }
        assert!(r.weight <= 12); // (1 + 0.3) · 9 = 11.7
    }

    #[test]
    fn ds_adapter_returns_dominating_set() {
        let g = gen::grid(4, 4);
        let r = approx_min_dominating_set(
            &g,
            &vec![1; 16],
            0.4,
            &ScaleKnobs::default(),
            &mut gen::seeded_rng(6),
        );
        let in_set: Vec<bool> = {
            let mut m = vec![false; 16];
            for &v in &r.vertices {
                m[v as usize] = true;
            }
            m
        };
        for v in g.vertices() {
            let dominated =
                in_set[v as usize] || g.neighbors(v).iter().any(|&u| in_set[u as usize]);
            assert!(dominated, "vertex {v} undominated");
        }
    }

    #[test]
    fn k_ds_rounds_multiply_by_k() {
        let g = gen::cycle(16);
        let knobs = ScaleKnobs::default();
        let r1 = approx_k_dominating_set(&g, 1, &vec![1; 16], 0.4, &knobs, &mut gen::seeded_rng(7));
        let r2 = approx_k_dominating_set(&g, 2, &vec![1; 16], 0.4, &knobs, &mut gen::seeded_rng(7));
        assert!(r2.rounds > r1.rounds / 2, "k=2 simulation cost reflected");
        assert!(!r2.vertices.is_empty());
    }
}
