//! The unified solver engine: one trait, one config, one report.
//!
//! Every packing/covering backend in the workspace — the Theorem 1.2/1.3
//! three-phase solvers, the GKM17 baseline, the §4.2 ensemble and the
//! centralised greedy / branch & bound references — implements the one
//! [`Solver`] trait and returns the one [`SolveReport`], so benches, CLIs
//! and tests can swap backends freely (the "pluggable strategies over one
//! instance model" framing of Koufogiannakis & Young 2011).
//!
//! # Examples
//!
//! Direct backend use:
//!
//! ```
//! use dapc_core::engine::{SolveConfig, Solver, ThreePhase};
//! use dapc_graph::gen;
//! use dapc_ilp::problems;
//! use dapc_local::RoundCost;
//!
//! let ilp = problems::max_independent_set_unweighted(&gen::cycle(24));
//! let cfg = SolveConfig::new().eps(0.3).seed(1);
//! let report = ThreePhase.solve(&ilp, &cfg, &mut cfg.rng());
//! assert!(report.feasible());
//! assert!(report.value >= 8); // (1 − ε)·α(C24) = 0.7·12
//! assert!(report.rounds() > 0);
//! ```
//!
//! Registry-driven use (for benches and CLIs keyed by string):
//!
//! ```
//! use dapc_core::engine::{self, SolveConfig};
//! use dapc_graph::gen;
//! use dapc_ilp::problems;
//!
//! let ilp = problems::min_vertex_cover_unweighted(&gen::cycle(18));
//! for name in engine::BACKENDS {
//!     let report = engine::solve(name, &ilp, &SolveConfig::new().eps(0.4)).unwrap();
//!     assert!(report.feasible(), "{name} must be feasible");
//! }
//! assert!(engine::solve("no-such-backend", &ilp, &SolveConfig::new()).is_none());
//! ```

mod backends;
mod config;
mod report;

pub use backends::{BranchAndBound, Ensemble, Gkm, Greedy, ThreePhase};
pub use config::SolveConfig;
pub use report::{BackendStats, SolveReport};

pub use crate::prep::SharedSubsetCache;

use dapc_ilp::instance::IlpInstance;
use rand::rngs::StdRng;

/// A packing/covering solver backend.
///
/// Implementations must be deterministic functions of `(ilp, cfg, rng)` —
/// the engine's determinism suite asserts identical reports for identical
/// seeds.
pub trait Solver {
    /// Stable registry key (e.g. `"three-phase"`).
    fn name(&self) -> &'static str;

    /// Solves `ilp` under `cfg`, drawing randomness only from `rng`.
    fn solve(&self, ilp: &IlpInstance, cfg: &SolveConfig, rng: &mut StdRng) -> SolveReport;
}

/// Registry keys of every built-in backend, in canonical order.
pub const BACKENDS: [&str; 5] = ["three-phase", "gkm", "ensemble", "greedy", "bnb"];

/// Looks a backend up by registry key.
pub fn backend(name: &str) -> Option<Box<dyn Solver>> {
    match name {
        "three-phase" => Some(Box::new(ThreePhase)),
        "gkm" => Some(Box::new(Gkm)),
        "ensemble" => Some(Box::new(Ensemble)),
        "greedy" => Some(Box::new(Greedy)),
        "bnb" => Some(Box::new(BranchAndBound)),
        _ => None,
    }
}

/// One-call registry solve: looks `name` up and runs it with the RNG
/// seeded from `cfg.seed`. Returns `None` for unknown keys.
pub fn solve(name: &str, ilp: &IlpInstance, cfg: &SolveConfig) -> Option<SolveReport> {
    let solver = backend(name)?;
    // The root of the per-solve span tree: decompose/annotate/
    // subset_solve/verify nest under `span.solve.*` when tracing is on.
    let _span = dapc_obs::span("solve");
    Some(solver.solve(ilp, cfg, &mut cfg.rng()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;
    use dapc_local::RoundCost;

    #[test]
    fn registry_knows_all_backends() {
        for name in BACKENDS {
            let b = backend(name).unwrap_or_else(|| panic!("missing backend {name}"));
            assert_eq!(b.name(), name);
        }
        assert!(backend("nope").is_none());
    }

    #[test]
    fn every_backend_solves_packing_and_covering() {
        let pack = problems::max_independent_set_unweighted(&gen::cycle(18));
        let cover = problems::min_vertex_cover_unweighted(&gen::cycle(18));
        let cfg = SolveConfig::new().eps(0.3).seed(5);
        for name in BACKENDS {
            for ilp in [&pack, &cover] {
                let r = solve(name, ilp, &cfg).unwrap();
                assert!(r.feasible(), "{name}: infeasible");
                assert_eq!(r.backend, name);
                assert_eq!(r.sense, ilp.sense());
                assert_eq!(r.value, ilp.value(&r.assignment));
                assert!(r.rounds() > 0, "{name}: zero rounds");
            }
        }
    }

    #[test]
    fn trait_objects_compose() {
        let ilp = problems::max_independent_set_unweighted(&gen::cycle(12));
        let cfg = SolveConfig::new().seed(3);
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(ThreePhase),
            Box::new(Gkm),
            Box::new(Greedy),
            Box::new(BranchAndBound),
        ];
        for s in &solvers {
            let r = s.solve(&ilp, &cfg, &mut cfg.rng());
            assert!(r.feasible(), "{} infeasible", s.name());
        }
    }

    #[test]
    fn bnb_reference_is_exact_on_small_instances() {
        let ilp = problems::max_independent_set_unweighted(&gen::cycle(10));
        let r = solve("bnb", &ilp, &SolveConfig::new()).unwrap();
        assert_eq!(r.value, 5);
        assert!(r.all_solves_exact());
    }

    #[test]
    fn greedy_is_reported_as_inexact() {
        let ilp = problems::min_dominating_set_unweighted(&gen::star(6));
        let r = solve("greedy", &ilp, &SolveConfig::new()).unwrap();
        assert!(r.feasible());
        assert!(!r.all_solves_exact());
    }
}
