//! The one configuration type every backend consumes.

use crate::gkm::GkmParams;
use crate::params::{PcParams, ScaleKnobs};
use crate::prep::SharedSubsetCache;
use dapc_ilp::SolverBudget;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Unified solver configuration, absorbing the previously scattered
/// `ScaleKnobs`, `PcParams` constructor arguments, `GkmParams` and
/// `SolverBudget` into one builder.
///
/// Defaults match the laptop-scale constants the examples and tests have
/// always used ([`ScaleKnobs::default`]); [`SolveConfig::paper`] switches
/// to the constants printed in the paper ([`ScaleKnobs::paper`]).
///
/// # Examples
///
/// ```
/// use dapc_core::engine::SolveConfig;
///
/// let cfg = SolveConfig::new().eps(0.2).seed(7).ensemble_runs(8);
/// assert_eq!(cfg.eps, 0.2);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolveConfig {
    /// Approximation parameter `ε` (default `0.3`).
    pub eps: f64,
    /// Size hint `ñ`; when `None`, each solve uses the instance size.
    pub n_tilde: Option<f64>,
    /// Seed for the deterministic RNG used by [`SolveConfig::rng`] and the
    /// registry-level [`crate::engine::solve`] (default `0`).
    pub seed: u64,
    /// Scaling knobs for the paper's leading constants.
    pub knobs: ScaleKnobs,
    /// Budget for every exact local solve.
    pub budget: SolverBudget,
    /// `k = ⌈k_scale·ln ñ/ε⌉` for the GKM baseline (default `0.2`).
    pub gkm_k_scale: f64,
    /// Number of ensemble candidate runs; `None` = the paper's
    /// `⌈ln ñ/ε²⌉` capped at 48.
    pub ensemble_runs: Option<usize>,
    /// Overrides the preparation-decomposition count of
    /// [`PcParams`] (`None` = derive it from the knobs' `prep_scale`).
    pub prep_count: Option<usize>,
    /// Optional cross-run subset-solve cache for this instance family
    /// (attached by `dapc-runtime`'s `PrepCache`; solver outputs are
    /// identical with or without it).
    pub prep_cache: Option<SharedSubsetCache>,
    /// Concurrency cap for the preparation step's exact subset solves
    /// inside *one* solve (default `1` = sequential). Above one, the
    /// distinct solves fan out over the process-wide `dapc_exec` pool —
    /// at most `prep_workers` in flight, and never on a child pool, so
    /// the setting composes gracefully with across-job parallelism.
    /// Purely an execution knob: reports are byte-identical at every
    /// worker count, because subset solves are deterministic functions
    /// of their key and the RNG is consumed only by the sequential
    /// decomposition pass (see [`crate::prep::prepare`]).
    pub prep_workers: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            eps: 0.3,
            n_tilde: None,
            seed: 0,
            knobs: ScaleKnobs::default(),
            budget: SolverBudget::default(),
            gkm_k_scale: 0.2,
            ensemble_runs: None,
            prep_count: None,
            prep_cache: None,
            prep_workers: 1,
        }
    }
}

impl SolveConfig {
    /// Starts a builder with the laptop-scale defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the approximation parameter `ε`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`.
    pub fn eps(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        self.eps = eps;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the size hint `ñ` (otherwise the instance size is used).
    ///
    /// # Panics
    ///
    /// Panics unless `n_tilde > e` — the covering parametrisation needs
    /// `ln ln ñ > 0`, and one config must mean the same thing for both
    /// senses.
    pub fn n_tilde(mut self, n_tilde: f64) -> Self {
        assert!(
            n_tilde > std::f64::consts::E,
            "n_tilde must exceed e (covering needs ln ln ñ > 0)"
        );
        self.n_tilde = Some(n_tilde);
        self
    }

    /// Replaces the scaling knobs wholesale.
    pub fn knobs(mut self, knobs: ScaleKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Uses the paper's printed constants ([`ScaleKnobs::paper`]).
    pub fn paper(self) -> Self {
        self.knobs(ScaleKnobs::paper())
    }

    /// Replaces the exact-solver budget.
    pub fn budget(mut self, budget: SolverBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps every exact local solve at `node_limit` branch & bound nodes.
    pub fn node_limit(mut self, node_limit: u64) -> Self {
        self.budget.node_limit = node_limit;
        self
    }

    /// Sets the cooperative-yield period of long exact solves: every
    /// `yield_every` search nodes the solver offers its executor worker
    /// one of the worker's own queued subtasks (`0` disables the check).
    /// Purely a scheduling knob — solve results are byte-identical at
    /// any setting.
    pub fn yield_every(mut self, yield_every: u64) -> Self {
        self.budget.yield_every = yield_every;
        self
    }

    /// Sets the GKM carving-radius scale.
    pub fn gkm_k_scale(mut self, k_scale: f64) -> Self {
        assert!(k_scale > 0.0, "k_scale must be positive");
        self.gkm_k_scale = k_scale;
        self
    }

    /// Fixes the number of ensemble candidate runs.
    pub fn ensemble_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "ensemble needs at least one run");
        self.ensemble_runs = Some(runs);
        self
    }

    /// Overrides the preparation-decomposition count (the E10 ablation
    /// knob; the paper's value is `⌈16·ln ñ⌉`).
    pub fn prep_count(mut self, count: usize) -> Self {
        assert!(count > 0, "need at least one preparation decomposition");
        self.prep_count = Some(count);
        self
    }

    /// Attaches a cross-run subset-solve cache for this instance family.
    /// Reports are bit-identical with or without a cache; only the exact
    /// local computation is shared across runs.
    pub fn prep_cache(mut self, cache: SharedSubsetCache) -> Self {
        self.prep_cache = Some(cache);
        self
    }

    /// Shards the preparation step's exact subset solves inside one
    /// solve: at most `workers` of them run concurrently on the
    /// process-wide executor. Reports are bit-identical at every worker
    /// count; only the wall-clock time of a large instance's preparation
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn prep_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one preparation worker");
        self.prep_workers = workers;
        self
    }

    /// The effective size hint for an `n`-variable instance.
    pub fn effective_n_tilde(&self, n: usize) -> f64 {
        self.n_tilde.unwrap_or((n.max(3)) as f64)
    }

    /// Theorem 1.2 parameters for an `n`-variable packing instance.
    pub fn packing_params(&self, n: usize) -> PcParams {
        let mut p = self
            .knobs
            .packing_params_for(self.eps, self.effective_n_tilde(n));
        p.budget = self.budget;
        if let Some(c) = self.prep_count {
            p.prep_count = c;
        }
        p.prep_workers = self.prep_workers;
        p
    }

    /// Theorem 1.3 parameters for an `n`-variable covering instance.
    pub fn covering_params(&self, n: usize) -> PcParams {
        let mut p = self
            .knobs
            .covering_params_for(self.eps, self.effective_n_tilde(n));
        p.budget = self.budget;
        if let Some(c) = self.prep_count {
            p.prep_count = c;
        }
        p.prep_workers = self.prep_workers;
        p
    }

    /// GKM17 parameters for an `n`-variable instance.
    pub fn gkm_params(&self, n: usize) -> GkmParams {
        let mut p = GkmParams::new(self.eps, self.effective_n_tilde(n), self.gkm_k_scale);
        p.budget = self.budget;
        p
    }

    /// The deterministic RNG this configuration seeds.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_legacy_scale_knobs() {
        let cfg = SolveConfig::new();
        let legacy = ScaleKnobs::default();
        assert_eq!(cfg.knobs, legacy);
        assert_eq!(cfg.packing_params(40), legacy.packing_params(0.3, 40));
        assert_eq!(cfg.covering_params(40), legacy.covering_params(0.3, 40));
    }

    #[test]
    fn builder_propagates_everything() {
        let cfg = SolveConfig::new()
            .eps(0.2)
            .seed(9)
            .n_tilde(512.0)
            .paper()
            .node_limit(1234)
            .yield_every(4096)
            .gkm_k_scale(0.5)
            .ensemble_runs(6)
            .prep_workers(3);
        assert_eq!(cfg.knobs, ScaleKnobs::paper());
        let p = cfg.packing_params(10);
        assert_eq!(p.eps, 0.2);
        assert_eq!(p.n_tilde, 512.0);
        assert_eq!(p.budget.node_limit, 1234);
        assert_eq!(p.budget.yield_every, 4096);
        assert_eq!(p.prep_workers, 3);
        assert_eq!(cfg.covering_params(10).prep_workers, 3);
        let g = cfg.gkm_params(10);
        assert_eq!(g.budget.node_limit, 1234);
        assert_eq!(g.budget.yield_every, 4096);
        assert_eq!(cfg.ensemble_runs, Some(6));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        use rand::Rng;
        let cfg = SolveConfig::new().seed(42);
        let a: u64 = cfg.rng().random();
        let b: u64 = cfg.rng().random();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_eps() {
        let _ = SolveConfig::new().eps(1.5);
    }
}
