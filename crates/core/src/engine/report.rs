//! The one result type every backend returns.

use crate::covering::{CoveringOutcome, CoveringStats};
use crate::ensemble::EnsembleOutcome;
use crate::gkm::GkmOutcome;
use crate::packing::{PackingOutcome, PackingStats};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_ilp::verify::FeasibilityReport;
use dapc_local::{RoundCost, RoundLedger};

/// Per-backend phase accounting, unified across the engine.
///
/// Exactly one variant is populated per run; the common questions
/// ("was every local solve exact?", "how many centres were sampled?") have
/// accessors on [`SolveReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum BackendStats {
    /// Theorem 1.2 phase counters.
    Packing(PackingStats),
    /// Theorem 1.3 phase counters.
    Covering(CoveringStats),
    /// GKM17: colours used by the network decomposition and solve
    /// exactness.
    Gkm {
        /// Colours of the `H^{2k}` network decomposition.
        colors: u32,
        /// Whether every local solve proved optimality.
        all_solves_exact: bool,
    },
    /// §4.2 ensemble: candidate values and the re-weighted pass value.
    Ensemble {
        /// Objective value of every candidate run.
        candidate_values: Vec<u64>,
        /// Value achieved by the re-weighted final decomposition.
        reweighted_value: u64,
        /// Whether every local solve proved optimality.
        all_solves_exact: bool,
    },
    /// Centralised reference backends (greedy / branch & bound).
    Centralised {
        /// Whether the solve proved optimality.
        exact: bool,
    },
}

/// Unified result of any [`crate::engine::Solver`] backend, replacing the
/// four incompatible outcome structs (`PackingOutcome`, `CoveringOutcome`,
/// `GkmOutcome`, `EnsembleOutcome`) at the engine boundary.
///
/// Derives `PartialEq`, so determinism can be asserted as
/// `report_a == report_b`.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveReport {
    /// Registry key of the backend that produced this report.
    pub backend: &'static str,
    /// Whether the instance packed or covered.
    pub sense: Sense,
    /// Feasible global 0/1 assignment.
    pub assignment: Vec<bool>,
    /// Its objective value `wᵀx`.
    pub value: u64,
    /// LOCAL round bill, phase by phase.
    pub ledger: RoundLedger,
    /// Backend-specific phase accounting.
    pub stats: BackendStats,
    /// Built-in feasibility verdict ([`dapc_ilp::verify::check`]).
    pub verdict: FeasibilityReport,
}

impl RoundCost for SolveReport {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

impl SolveReport {
    /// Whether the assignment satisfies every constraint.
    pub fn feasible(&self) -> bool {
        self.verdict.feasible
    }

    /// Whether every local solve proved optimality (`true` for backends
    /// whose runs were all exact).
    pub fn all_solves_exact(&self) -> bool {
        match &self.stats {
            BackendStats::Packing(s) => s.all_solves_exact,
            BackendStats::Covering(s) => s.all_solves_exact,
            BackendStats::Gkm {
                all_solves_exact, ..
            } => *all_solves_exact,
            BackendStats::Ensemble {
                all_solves_exact, ..
            } => *all_solves_exact,
            BackendStats::Centralised { exact } => *exact,
        }
    }

    pub(crate) fn from_packing(
        ilp: &IlpInstance,
        backend: &'static str,
        out: PackingOutcome,
    ) -> Self {
        let verdict = {
            let _span = dapc_obs::span("verify");
            dapc_ilp::verify::check(ilp, &out.assignment)
        };
        SolveReport {
            backend,
            sense: Sense::Packing,
            assignment: out.assignment,
            value: out.value,
            ledger: out.ledger,
            stats: BackendStats::Packing(out.stats),
            verdict,
        }
    }

    pub(crate) fn from_covering(
        ilp: &IlpInstance,
        backend: &'static str,
        out: CoveringOutcome,
    ) -> Self {
        let verdict = {
            let _span = dapc_obs::span("verify");
            dapc_ilp::verify::check(ilp, &out.assignment)
        };
        SolveReport {
            backend,
            sense: Sense::Covering,
            assignment: out.assignment,
            value: out.value,
            ledger: out.ledger,
            stats: BackendStats::Covering(out.stats),
            verdict,
        }
    }

    pub(crate) fn from_gkm(ilp: &IlpInstance, backend: &'static str, out: GkmOutcome) -> Self {
        let verdict = {
            let _span = dapc_obs::span("verify");
            dapc_ilp::verify::check(ilp, &out.assignment)
        };
        SolveReport {
            backend,
            sense: ilp.sense(),
            assignment: out.assignment,
            value: out.value,
            ledger: out.ledger,
            stats: BackendStats::Gkm {
                colors: out.colors,
                all_solves_exact: out.all_solves_exact,
            },
            verdict,
        }
    }

    pub(crate) fn from_ensemble(
        ilp: &IlpInstance,
        backend: &'static str,
        out: EnsembleOutcome,
    ) -> Self {
        let verdict = {
            let _span = dapc_obs::span("verify");
            dapc_ilp::verify::check(ilp, &out.assignment)
        };
        SolveReport {
            backend,
            sense: Sense::Packing,
            assignment: out.assignment,
            value: out.value,
            ledger: out.ledger,
            stats: BackendStats::Ensemble {
                candidate_values: out.candidate_values,
                reweighted_value: out.reweighted_value,
                all_solves_exact: out.all_solves_exact,
            },
            verdict,
        }
    }
}
