//! The five engine backends.

use super::config::SolveConfig;
use super::report::{BackendStats, SolveReport};
use super::Solver;
use crate::covering::approximate_covering_cached;
use crate::ensemble::packing_ensemble_cached;
use crate::gkm::gkm_solve_cached;
use crate::packing::approximate_packing_cached;
use crate::prep::SubsetSolver;
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_ilp::restrict::{covering_restriction, packing_restriction};
use dapc_ilp::solvers::greedy;
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// The paper's headline algorithms: Theorem 1.2 for packing instances,
/// Theorem 1.3 for covering instances (both `Õ(log n/ε)` rounds, whp).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreePhase;

impl Solver for ThreePhase {
    fn name(&self) -> &'static str {
        "three-phase"
    }

    fn solve(&self, ilp: &IlpInstance, cfg: &SolveConfig, rng: &mut StdRng) -> SolveReport {
        let cache = cfg.prep_cache.as_ref();
        match ilp.sense() {
            Sense::Packing => {
                let out = approximate_packing_cached(ilp, &cfg.packing_params(ilp.n()), rng, cache);
                SolveReport::from_packing(ilp, self.name(), out)
            }
            Sense::Covering => {
                let out =
                    approximate_covering_cached(ilp, &cfg.covering_params(ilp.n()), rng, cache);
                SolveReport::from_covering(ilp, self.name(), out)
            }
        }
    }
}

/// The Ghaffari–Kuhn–Maus `O(log³ n/ε)` baseline (§1.2) — handles both
/// senses.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gkm;

impl Solver for Gkm {
    fn name(&self) -> &'static str {
        "gkm"
    }

    fn solve(&self, ilp: &IlpInstance, cfg: &SolveConfig, rng: &mut StdRng) -> SolveReport {
        let out = gkm_solve_cached(ilp, &cfg.gkm_params(ilp.n()), rng, cfg.prep_cache.as_ref());
        SolveReport::from_gkm(ilp, self.name(), out)
    }
}

/// The §4.2 "alternative approach" ensemble. Packing-only in the paper;
/// on covering instances this backend delegates to the Theorem 1.3
/// three-phase solver (documented substitution), so it stays usable on a
/// mixed corpus.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ensemble;

impl Solver for Ensemble {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn solve(&self, ilp: &IlpInstance, cfg: &SolveConfig, rng: &mut StdRng) -> SolveReport {
        let cache = cfg.prep_cache.as_ref();
        match ilp.sense() {
            Sense::Packing => {
                let out = packing_ensemble_cached(
                    ilp,
                    &cfg.packing_params(ilp.n()),
                    cfg.ensemble_runs,
                    rng,
                    cache,
                );
                SolveReport::from_ensemble(ilp, self.name(), out)
            }
            Sense::Covering => {
                let out =
                    approximate_covering_cached(ilp, &cfg.covering_params(ilp.n()), rng, cache);
                SolveReport::from_covering(ilp, self.name(), out)
            }
        }
    }
}

/// Ledger for the centralised reference backends: one gather of the whole
/// instance (`n` rounds bounds any diameter) plus the answer broadcast.
fn centralised_ledger(label: &str, n: usize) -> RoundLedger {
    let mut ledger = RoundLedger::new();
    ledger.begin_phase(format!("{label}: gather instance (diameter ≤ n)"));
    ledger.charge_gather(n);
    ledger.charge_additive(n); // broadcast the decision back
    ledger.end_phase();
    ledger
}

/// Centralised greedy heuristic — the quality floor every distributed
/// backend must beat. Never exact; always feasible.
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl Solver for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn solve(&self, ilp: &IlpInstance, _cfg: &SolveConfig, _rng: &mut StdRng) -> SolveReport {
        let full = vec![true; ilp.n()];
        let assignment = match ilp.sense() {
            Sense::Packing => greedy::greedy_packing(&packing_restriction(ilp, &full)),
            Sense::Covering => greedy::greedy_covering(&covering_restriction(ilp, &full)),
        };
        let verdict = dapc_ilp::verify::check(ilp, &assignment);
        SolveReport {
            backend: self.name(),
            sense: ilp.sense(),
            value: verdict.value,
            ledger: centralised_ledger("greedy", ilp.n()),
            stats: BackendStats::Centralised { exact: false },
            assignment,
            verdict,
        }
    }
}

/// Centralised exact reference: the structure-detecting dispatch of
/// `dapc_ilp::solvers::solve` (conflict-graph MIS, blossom, VC-via-MIS,
/// branch & bound) on the whole instance, under the configured budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct BranchAndBound;

impl Solver for BranchAndBound {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn solve(&self, ilp: &IlpInstance, cfg: &SolveConfig, _rng: &mut StdRng) -> SolveReport {
        // The full-instance solve goes through the subset memoiser so a
        // batch runtime's shared cache also covers this backend; with no
        // cache attached the result is identical to a direct solve.
        let full = vec![true; ilp.n()];
        let mut solver = match &cfg.prep_cache {
            Some(c) => SubsetSolver::with_shared(ilp, cfg.budget, c.clone()),
            None => SubsetSolver::new(ilp, cfg.budget),
        };
        let (_, assignment, exact) = solver.solve_mask(&full, None);
        let verdict = dapc_ilp::verify::check(ilp, &assignment);
        SolveReport {
            backend: self.name(),
            sense: ilp.sense(),
            value: verdict.value,
            ledger: centralised_ledger("bnb", ilp.n()),
            stats: BackendStats::Centralised { exact },
            assignment,
            verdict,
        }
    }
}
