//! The preparation step shared by the packing and covering solvers
//! (§4.1.1 / §5.1.1): `prep_count` independent decompositions of the
//! instance hypergraph whose clusters drive the sampling, each annotated
//! with its local optimum `W(OPT^local_C, C)` and the neighbourhood
//! estimate `W(OPT^local_{S_C}, S_C)`, `S_C = N^{8tR}(C)`.
//!
//! The preparation is the dominant cost of one solve — one exact subset
//! solve per cluster plus one per `S_C` ball — so [`prepare`] splits it
//! into a sequential RNG-driven decomposition pass and a deterministic
//! annotation pass, and (when [`crate::params::PcParams::prep_workers`]
//! exceeds one) shards the distinct exact subset solves of the annotation
//! pass across the process-wide `dapc_exec` executor. A preparation that
//! runs *inside* a batch job submits its shards to the same pool the job
//! runs on — never a child pool — so `jobs × prep_workers` degrades
//! gracefully instead of oversubscribing the machine. The output is
//! byte-identical to sequential execution: subset solves are
//! deterministic functions of their key, the RNG is consumed only by the
//! decomposition pass, and clusters are re-emitted in canonical order.

use crate::params::PcParams;
use dapc_graph::{BallScratch, Hypergraph, Vertex};
use dapc_ilp::hash::{fnv1a_128_u32, FNV128_OFFSET};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_ilp::restrict::packing_restriction;
use dapc_ilp::solvers::{self, SolverBudget};
use rand::rngs::StdRng;
// dapc-allow(hash-iter): digest-keyed lookup caches and dedup sets only; every
// dapc-allow(hash-iter): snapshot path sorts keys before writing bytes
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cached registry handles for the cache's process-wide totals. The
/// per-family breakdown stays on [`SharedSubsetCache`]'s own counters
/// (and `CacheStats` in `dapc-runtime`); the registry carries the
/// unified sums across every family so one snapshot shows cache health
/// without unbounded metric cardinality. Each site gates on
/// [`dapc_obs::enabled`].
mod metrics {
    use dapc_obs::{Counter, Gauge};
    use std::sync::OnceLock;

    /// Lookups answered from any family's shared map.
    pub fn hits() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("core.subset_cache.hits"))
    }

    /// Lookups that had to run the exact solver.
    pub fn misses() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("core.subset_cache.misses"))
    }

    /// Entries dropped by LRU eviction across all families.
    pub fn evictions() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| dapc_obs::counter("core.subset_cache.evictions"))
    }

    /// Approximate bytes resident across all families (tracked as
    /// deltas, so it is exact only for inserts made while enabled).
    pub fn bytes() -> &'static Gauge {
        static G: OnceLock<Gauge> = OnceLock::new();
        G.get_or_init(|| dapc_obs::gauge("core.subset_cache.bytes"))
    }
}

/// One memoised exact subset solve: `(value, global assignment, exact)`.
type SubsetEntry = (u64, Vec<bool>, bool);

/// One sharded annotation result: the entry plus whether a warm family
/// cache already held it (drives counter parity with sequential runs).
type ShardSlot = Option<(SubsetEntry, bool)>;

/// The identity of one subset solve: a 128-bit FNV-1a digest of the
/// subset (plus the fixed-variable overlay for covering sub-instances).
///
/// Replaces the former `Vec<Vertex>` keys — a lookup now costs one fold
/// over the mask and no allocation, and the digest is stable across runs
/// and platforms (persisted warm-start formats can rely on it). At 128
/// bits, a collision within one `(instance, budget)` family is out of
/// reach for any realisable workload.
pub type SubsetKey = u128;

/// Folds a subset mask (and optional fixed-ones overlay) into its
/// [`SubsetKey`]. The separator distinguishes "no overlay" from "empty
/// overlay", mirroring the restriction functions' semantics.
fn subset_key(mask: &[bool], fixed_ones: Option<&[bool]>) -> SubsetKey {
    let mut h = FNV128_OFFSET;
    for (v, &m) in mask.iter().enumerate() {
        if m {
            h = fnv1a_128_u32(h, v as u32);
        }
    }
    if let Some(f) = fixed_ones {
        h = fnv1a_128_u32(h, u32::MAX); // separator
        for (v, (&fv, &m)) in f.iter().zip(mask.iter()).enumerate() {
            if fv && m {
                h = fnv1a_128_u32(h, v as u32);
            }
        }
    }
    h
}

/// Number of independently locked shards of a [`SharedSubsetCache`].
/// Subset keys spread uniformly (they are FNV digests), so with 16
/// stripes the per-lookup lock is contended only 1/16th as often as the
/// former single global mutex when many workers share one family.
const STRIPE_COUNT: usize = 16;

/// A shareable memo of exact subset solves for one `(instance, budget)`
/// family.
///
/// Every entry is a deterministic function of the subset key alone (the
/// exact solvers draw no randomness), so sharing a cache across runs,
/// seeds, `ε` values and threads never changes any solver's output — it
/// only skips recomputation. This is the hook `dapc-runtime` uses to hoist
/// the [`SubsetSolver`] memoisation from per-run to per-instance-family,
/// and the hook [`prepare`] uses to shard one large instance's subset
/// solves across workers.
///
/// Internally the map is split into [`STRIPE_COUNT`] independently locked
/// stripes selected by key bits, and each stripe can enforce a byte
/// budget with least-recently-used eviction (see
/// [`SharedSubsetCache::with_capacity`]). Eviction is *transparent*: a
/// victim is simply recomputed on its next lookup, so no capacity choice
/// can change a [`crate::engine::SolveReport`].
///
/// Cloning is shallow: clones address the same underlying map and
/// counters. Equality is identity (two handles are equal iff they share
/// storage), which keeps `SolveConfig: PartialEq` meaningful.
#[derive(Clone, Default)]
pub struct SharedSubsetCache {
    inner: Arc<CacheInner>,
}

struct CacheInner {
    stripes: Vec<Mutex<Stripe>>,
    /// Total byte budget across all stripes (`None` = unbounded).
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CacheInner {
    fn default() -> Self {
        CacheInner {
            stripes: (0..STRIPE_COUNT).map(|_| Mutex::default()).collect(),
            capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct Stripe {
    // dapc-allow(hash-iter): hot digest-keyed lookups; the save path iterates
    // dapc-allow(hash-iter): the BTreeMap recency index, never this map
    map: HashMap<SubsetKey, Slot>,
    /// Recency index: `last_used tick → key`. Ticks are unique within a
    /// stripe, so the first entry is always the LRU victim — eviction is
    /// `O(log n)` instead of a full scan under the stripe lock.
    order: BTreeMap<u64, SubsetKey>,
    /// Approximate bytes held by this stripe's entries.
    bytes: usize,
    /// Monotone use counter driving the LRU order.
    tick: u64,
}

struct Slot {
    entry: SubsetEntry,
    last_used: u64,
}

/// Approximate heap footprint of one memoised entry: the assignment mask
/// plus fixed map/key overhead.
fn entry_bytes(entry: &SubsetEntry) -> usize {
    entry.1.len() + std::mem::size_of::<SubsetKey>() + std::mem::size_of::<Slot>()
}

impl SharedSubsetCache {
    /// Creates an unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that holds at most ~`capacity` bytes of memoised
    /// entries, evicting least-recently-used entries when a stripe
    /// overflows its share. Eviction never changes any solver output —
    /// an evicted subset solve is recomputed on its next lookup.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedSubsetCache {
            inner: Arc::new(CacheInner {
                capacity: Some(capacity),
                ..CacheInner::default()
            }),
        }
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Lookups answered from the shared map (across all attached solvers).
    pub fn hits(&self) -> u64 {
        // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the exact solver.
    pub fn misses(&self) -> u64 {
        // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU policy since creation.
    pub fn evictions(&self) -> u64 {
        // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Number of memoised subset solves.
    pub fn len(&self) -> usize {
        self.inner
            .stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe lock").map.len())
            .sum()
    }

    /// Approximate bytes held across all stripes.
    pub fn bytes(&self) -> usize {
        self.inner
            .stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe lock").bytes)
            .sum()
    }

    /// Whether no subset solve has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stripe(&self, key: SubsetKey) -> &Mutex<Stripe> {
        &self.inner.stripes[(key as usize) & (STRIPE_COUNT - 1)]
    }

    fn get(&self, key: SubsetKey) -> Option<SubsetEntry> {
        let hit = self.get_uncounted(key);
        match hit {
            Some(_) => self.record_hit(),
            None => self.record_miss(),
        }
        hit
    }

    /// [`SharedSubsetCache::get`] without touching the hit/miss counters
    /// (recency is still updated). The sharded annotation workers probe
    /// with this so the hit rate keeps measuring genuine cross-run reuse,
    /// not the sharding handshake; the owning solve records one counted
    /// event per distinct solve afterwards, matching what a sequential
    /// run would have recorded.
    fn get_uncounted(&self, key: SubsetKey) -> Option<SubsetEntry> {
        let mut stripe = self.stripe(key).lock().expect("cache stripe lock");
        stripe.tick += 1;
        let tick = stripe.tick;
        let Stripe { map, order, .. } = &mut *stripe;
        map.get_mut(&key).map(|slot| {
            // One lookup does it all: bump recency and clone the entry.
            order.remove(&slot.last_used);
            slot.last_used = tick;
            order.insert(tick, key);
            slot.entry.clone()
        })
    }

    /// Counts one lookup answered from the cache.
    fn record_hit(&self) {
        // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
        if dapc_obs::enabled() {
            metrics::hits().inc();
        }
    }

    /// Counts one lookup that had to run the exact solver.
    fn record_miss(&self) {
        // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        if dapc_obs::enabled() {
            metrics::misses().inc();
        }
    }

    fn insert(&self, key: SubsetKey, entry: SubsetEntry) {
        let budget = self.inner.capacity.map(|c| c / STRIPE_COUNT);
        let mut evicted = 0u64;
        let mut freed = 0usize;
        let added;
        {
            let mut stripe = self.stripe(key).lock().expect("cache stripe lock");
            stripe.tick += 1;
            let tick = stripe.tick;
            added = entry_bytes(&entry);
            if let Some(old) = stripe.map.insert(
                key,
                Slot {
                    entry,
                    last_used: tick,
                },
            ) {
                let old_bytes = entry_bytes(&old.entry);
                stripe.bytes -= old_bytes;
                freed += old_bytes;
                stripe.order.remove(&old.last_used);
            }
            stripe.order.insert(tick, key);
            stripe.bytes += added;
            // Size-aware LRU: shed the coldest entries until back under
            // the stripe's share, always keeping the entry just inserted
            // (it holds the newest tick, so it is last in the index).
            if let Some(budget) = budget {
                while stripe.bytes > budget && stripe.map.len() > 1 {
                    let (_, victim) = stripe
                        .order
                        .pop_first()
                        .expect("non-empty map has a recency index");
                    let old = stripe.map.remove(&victim).expect("victim present");
                    let old_bytes = entry_bytes(&old.entry);
                    stripe.bytes -= old_bytes;
                    freed += old_bytes;
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            // ordering: Relaxed — monotonic telemetry counter; nothing synchronises on it
            self.inner.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if dapc_obs::enabled() {
            metrics::bytes().add(added as u64);
            metrics::bytes().sub(freed as u64);
            if evicted > 0 {
                metrics::evictions().add(evicted);
            }
        }
    }

    /// Writes a snapshot of every memoised entry to `w` in the versioned
    /// binary warm-start format (see the module docs of
    /// [`SNAPSHOT_MAGIC`]): entries sorted by [`SubsetKey`], each as
    /// `key · value · exact · assignment` with the assignment bit-packed.
    /// The keys are stable 128-bit FNV-1a digests, so a snapshot is valid
    /// across runs and platforms for the same `(instance, budget)`
    /// family.
    ///
    /// Counters and capacity are *not* persisted — they describe a run,
    /// not the memo.
    pub fn save_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut entries: Vec<(SubsetKey, SubsetEntry)> = Vec::with_capacity(self.len());
        for stripe in &self.inner.stripes {
            let stripe = stripe.lock().expect("cache stripe lock");
            entries.extend(stripe.map.iter().map(|(k, s)| (*k, s.entry.clone())));
        }
        // Canonical byte stream: identical caches serialise identically
        // regardless of insertion order or stripe iteration order.
        entries.sort_unstable_by_key(|(k, _)| *k);
        w.write_all(SNAPSHOT_MAGIC)?;
        w.write_all(&(entries.len() as u64).to_le_bytes())?;
        for (key, (value, assignment, exact)) in &entries {
            w.write_all(&key.to_le_bytes())?;
            w.write_all(&value.to_le_bytes())?;
            w.write_all(&[u8::from(*exact)])?;
            w.write_all(&(assignment.len() as u64).to_le_bytes())?;
            for chunk in assignment.chunks(8) {
                let mut byte = 0u8;
                for (bit, &set) in chunk.iter().enumerate() {
                    byte |= u8::from(set) << bit;
                }
                w.write_all(&[byte])?;
            }
        }
        Ok(())
    }

    /// Merges a warm-start snapshot written by
    /// [`SharedSubsetCache::save_to`] into this cache, returning the
    /// number of entries read. Loading only seeds the memo: it touches no
    /// hit/miss counter, and a capacity-bounded cache applies its normal
    /// transparent LRU policy to the loaded entries — so a warm start can
    /// change counters and work done, but never a solver report.
    ///
    /// Loading is **all-or-nothing**: the stream is fully parsed and
    /// validated before the first entry is inserted, so a snapshot that
    /// turns out to be truncated or corrupt partway through leaves the
    /// cache exactly as it was — an `Err` never half-loads.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported format version or a corrupt field, and with
    /// [`io::ErrorKind::UnexpectedEof`] on a stream truncated at any
    /// field boundary, besides propagating reader errors.
    pub fn load_into<R: Read>(&self, mut r: R) -> io::Result<usize> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic[..7] != SNAPSHOT_MAGIC[..7] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a dapc subset-cache snapshot (bad magic)",
            ));
        }
        if magic[7] != SNAPSHOT_MAGIC[7] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "unsupported subset-cache snapshot version {} (expected {})",
                    magic[7], SNAPSHOT_MAGIC[7]
                ),
            ));
        }
        let count = read_u64(&mut r)? as usize;
        // Parse everything before touching the cache, so a stream that
        // dies at entry k of n cannot leave entries 0..k silently loaded
        // behind the returned error.
        let mut entries: Vec<(SubsetKey, SubsetEntry)> = Vec::new();
        for _ in 0..count {
            let mut key = [0u8; 16];
            r.read_exact(&mut key)?;
            let key = SubsetKey::from_le_bytes(key);
            let value = read_u64(&mut r)?;
            let mut exact = [0u8; 1];
            r.read_exact(&mut exact)?;
            let exact = match exact[0] {
                0 => false,
                1 => true,
                b => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad exactness flag {b}"),
                    ))
                }
            };
            let bits = read_u64(&mut r)? as usize;
            // Never trust a length field with an up-front allocation: a
            // corrupt header would otherwise drive a huge `Vec` request
            // (aborting the process) before the read could fail. Reading
            // to-end under `take` grows with the bytes actually present,
            // so truncation surfaces as the documented error instead.
            let byte_len = bits.div_ceil(8) as u64;
            let mut packed = Vec::new();
            r.by_ref().take(byte_len).read_to_end(&mut packed)?;
            if packed.len() as u64 != byte_len {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("truncated assignment: {} of {byte_len} bytes", packed.len()),
                ));
            }
            // `bits <= 8 * packed.len()` now, so this allocation is
            // bounded by the snapshot's real size.
            let mut assignment = Vec::with_capacity(bits);
            for bit in 0..bits {
                assignment.push(packed[bit / 8] >> (bit % 8) & 1 == 1);
            }
            entries.push((key, (value, assignment, exact)));
        }
        for (key, entry) in entries {
            self.insert(key, entry);
        }
        Ok(count)
    }

    /// Reads a snapshot written by [`SharedSubsetCache::save_to`] into a
    /// fresh unbounded cache.
    ///
    /// # Errors
    ///
    /// See [`SharedSubsetCache::load_into`].
    pub fn load_from<R: Read>(r: R) -> io::Result<Self> {
        let cache = SharedSubsetCache::new();
        cache.load_into(r)?;
        Ok(cache)
    }
}

/// Magic + version prefix of the persisted warm-start format: seven
/// identifying bytes and a format version byte. The body is
/// `entry count: u64` followed by sorted entries of
/// `key: u128 · value: u64 · exact: u8 · assignment bits: u64 · packed
/// assignment bytes (LSB-first)`, all integers little-endian.
pub const SNAPSHOT_MAGIC: &[u8; 8] = crate::snapmagic::SUBSET_CACHE.bytes;

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

impl PartialEq for SharedSubsetCache {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for SharedSubsetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSubsetCache")
            .field("entries", &self.len())
            .field("bytes", &self.bytes())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

/// One sampling cluster from the preparation step.
#[derive(Clone, Debug)]
pub struct PrepCluster {
    /// Members (sorted).
    pub members: Vec<Vertex>,
    /// `W(OPT^local_C, C)`.
    pub w_local: u64,
    /// `W(OPT^local_{S_C}, S_C)` with `S_C = N^{8tR}(C)`.
    pub w_neighborhood: u64,
}

/// The full preparation output.
#[derive(Clone, Debug)]
pub struct Preparation {
    /// All clusters across the independent runs.
    pub clusters: Vec<PrepCluster>,
    /// Whether every local solve proved optimality.
    pub all_exact: bool,
}

/// A memoising exact solver over vertex subsets of one instance — many
/// clusters share their `S_C` (often the whole component), so the paper's
/// "free local computation" stays affordable in simulation.
pub struct SubsetSolver<'a> {
    ilp: &'a IlpInstance,
    budget: SolverBudget,
    // dapc-allow(hash-iter): hot digest-keyed memo, lookup-only — never iterated
    cache: HashMap<SubsetKey, SubsetEntry>,
    shared: Option<SharedSubsetCache>,
    /// Reusable mask buffer for [`SubsetSolver::value_of`].
    mask_buf: Vec<bool>,
    /// Whether every solve so far was exact.
    pub all_exact: bool,
}

impl<'a> SubsetSolver<'a> {
    /// Creates a solver for `ilp` with the given budget.
    pub fn new(ilp: &'a IlpInstance, budget: SolverBudget) -> Self {
        SubsetSolver {
            ilp,
            budget,
            // dapc-allow(hash-iter): lookup-only memo (see field)
            cache: HashMap::new(),
            shared: None,
            mask_buf: Vec::new(),
            all_exact: true,
        }
    }

    /// Like [`SubsetSolver::new`], but consulting `shared` behind the
    /// per-run memo. The shared cache must belong to the same
    /// `(instance, budget)` family; results are identical with or without
    /// it (subset solves are deterministic), only the work is shared.
    pub fn with_shared(
        ilp: &'a IlpInstance,
        budget: SolverBudget,
        shared: SharedSubsetCache,
    ) -> Self {
        SubsetSolver {
            ilp,
            budget,
            // dapc-allow(hash-iter): lookup-only memo (see field)
            cache: HashMap::new(),
            shared: Some(shared),
            mask_buf: Vec::new(),
            all_exact: true,
        }
    }

    /// Seeds the per-run memo with an already-computed entry (the sharded
    /// annotation pass hands worker results over with this), feeding
    /// `all_exact` exactly as a first compute would.
    fn preload(&mut self, key: SubsetKey, entry: SubsetEntry) {
        if !entry.2 {
            self.all_exact = false;
        }
        self.cache.insert(key, entry);
    }

    /// Value of a solve [`SubsetSolver::preload`]ed earlier — the sharded
    /// re-emit path reads cluster weights with this instead of rebuilding
    /// masks and keys.
    ///
    /// # Panics
    ///
    /// Panics if `key` was never preloaded or solved in this run.
    fn preloaded_value(&self, key: SubsetKey) -> u64 {
        self.cache
            .get(&key)
            .expect("sharded annotation preloaded every cluster key")
            .0
    }

    /// Optimal local value and assignment on the subset (mask form). For
    /// packing this is `P^local` (all constraints, zeros outside); for
    /// covering `Q^local` (inside constraints only), honouring `fixed_ones`
    /// at zero cost.
    pub fn solve_mask(
        &mut self,
        mask: &[bool],
        fixed_ones: Option<&[bool]>,
    ) -> (u64, Vec<bool>, bool) {
        let key = subset_key(mask, fixed_ones);
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        // Per-run miss: try the cross-run family cache before solving.
        // Shared hits must still feed `all_exact` — the inexact miss that
        // populated the entry may have happened in a different run.
        if let Some(hit) = self.shared.as_ref().and_then(|s| s.get(key)) {
            if !hit.2 {
                self.all_exact = false;
            }
            self.cache.insert(key, hit.clone());
            return hit;
        }
        let out = solve_subset(self.ilp, &self.budget, mask, fixed_ones);
        if !out.2 {
            self.all_exact = false;
        }
        if let Some(shared) = &self.shared {
            shared.insert(key, out.clone());
        }
        self.cache.insert(key, out.clone());
        out
    }

    /// Convenience: optimal local value on a vertex list. Reuses an
    /// internal mask buffer, so repeated calls allocate nothing.
    pub fn value_of(&mut self, vertices: &[Vertex]) -> u64 {
        let mut mask = std::mem::take(&mut self.mask_buf);
        mask.clear();
        mask.resize(self.ilp.n(), false);
        for &v in vertices {
            mask[v as usize] = true;
        }
        let value = self.solve_mask(&mask, None).0;
        self.mask_buf = mask;
        value
    }
}

/// The memo-free core of one exact subset solve: restrict, dispatch to
/// the exact solvers, lift back to a global assignment. A pure function
/// of its arguments (the exact solvers draw no randomness) — both the
/// memoising [`SubsetSolver::solve_mask`] and the sharded annotation
/// workers bottom out here.
fn solve_subset(
    ilp: &IlpInstance,
    budget: &SolverBudget,
    mask: &[bool],
    fixed_ones: Option<&[bool]>,
) -> SubsetEntry {
    // Every memoising caller bottoms out here, so this one span covers
    // exact subset solves wherever they run. On a sharded annotation
    // worker the thread's span stack is empty and the cost records as a
    // root `span.subset_solve`; sequentially it nests under the solve.
    let _span = dapc_obs::span("subset_solve");
    let sub = match ilp.sense() {
        Sense::Packing => packing_restriction(ilp, mask),
        Sense::Covering => {
            dapc_ilp::restrict::covering_restriction_with_fixed(ilp, mask, fixed_ones)
        }
    };
    let sol = solvers::solve(&sub, budget);
    let mut global = vec![false; ilp.n()];
    sub.lift_into(&sol.assignment, &mut global);
    (sol.value, global, sol.exact)
}

/// Runs the preparation step: `prep_count` independent decompositions
/// (Elkin–Neiman at `prep_lambda` for packing; sparse cover at
/// `prep_lambda` for covering), annotating every cluster with its sampling
/// weights.
///
/// The step runs in two passes. Pass 1 consumes the RNG: it runs the
/// decompositions sequentially and records the non-empty clusters in
/// canonical order (run by run, cluster by cluster) together with their
/// `S_C = N^{8tR}(C)` balls. Pass 2 is RNG-free: it annotates every
/// cluster with its two exact subset solves. With
/// `params.prep_workers > 1` the *distinct* subset solves of pass 2 —
/// exactly the set the sequential memo would compute — are fanned out
/// over the ambient `dapc_exec` pool (at most `prep_workers` at a time)
/// through the solver's family cache, then the clusters are re-emitted
/// in canonical order from cache hits. Either
/// way the output is byte-identical: solves are deterministic functions
/// of their key, and the worker count changes only wall-clock time.
pub fn prepare(
    ilp: &IlpInstance,
    h: &Hypergraph,
    primal: &dapc_graph::Graph,
    params: &PcParams,
    rng: &mut StdRng,
    solver: &mut SubsetSolver<'_>,
) -> Preparation {
    // Pass 1 (sequential, RNG-driven): decompositions → canonical
    // (cluster, S_C) work items.
    let decompose_span = dapc_obs::span("decompose");
    let mut members_list: Vec<Vec<Vertex>> = Vec::new();
    for _run in 0..params.prep_count {
        let run_clusters: Vec<Vec<Vertex>> = match ilp.sense() {
            Sense::Packing => {
                let en = dapc_decomp::elkin_neiman::elkin_neiman(
                    primal,
                    &dapc_decomp::elkin_neiman::EnParams::new(params.prep_lambda, params.n_tilde),
                    rng,
                    None,
                );
                en.clusters
            }
            Sense::Covering => {
                let cover = dapc_decomp::sparse_cover::sparse_cover(
                    h,
                    params.prep_lambda,
                    params.n_tilde,
                    rng,
                    None,
                    None,
                );
                cover.clusters
            }
        };
        members_list.extend(run_clusters.into_iter().filter(|m| !m.is_empty()));
    }

    drop(decompose_span);

    // Pass 2 (deterministic): annotate. Sharded, the fan-out seeds the
    // solver's memo and hands back each cluster's two subset keys, so the
    // canonical re-emit is pure memo reads — no ball is recomputed.
    // Sequential, the annotation streams: each `S_C` ball is computed,
    // masked, solved and dropped, so peak memory stays one ball.
    let _annotate_span = dapc_obs::span("annotate");
    let mut clusters: Vec<PrepCluster> = Vec::with_capacity(members_list.len());
    if params.prep_workers > 1 {
        let cluster_keys = shard_subset_solves(ilp, h, params, solver, &members_list);
        for (members, (local_key, sc_key)) in members_list.into_iter().zip(cluster_keys) {
            clusters.push(PrepCluster {
                members,
                w_local: solver.preloaded_value(local_key),
                w_neighborhood: solver.preloaded_value(sc_key),
            });
        }
    } else {
        let n = h.n();
        let mut scratch = BallScratch::new();
        let mut mask = vec![false; n];
        for members in members_list {
            let w_local = solver.value_of(&members);
            let sc = h.ball_with_scratch(&members, params.sc_radius, None, None, &mut scratch);
            for v in sc.iter() {
                mask[v as usize] = true;
            }
            let (w_neighborhood, _, _) = solver.solve_mask(&mask, None);
            for v in sc.iter() {
                mask[v as usize] = false;
            }
            clusters.push(PrepCluster {
                members,
                w_local,
                w_neighborhood,
            });
        }
    }
    Preparation {
        clusters,
        all_exact: solver.all_exact,
    }
}

/// Fans the distinct subset solves of the annotation pass out over the
/// process-wide executor, seeds the solver's per-run memo with the results
/// (exactness flags feeding `all_exact` exactly as a sequential first
/// compute would), and returns each cluster's `(local, S_C)` key pair so
/// the caller's canonical re-emit is pure memo reads — no ball or key is
/// recomputed.
///
/// Work items are deduplicated by [`SubsetKey`] first, so the sharded
/// pass performs exactly the set of exact solves the sequential memo
/// would — parallelism changes wall-clock time, never the work done. The
/// worklist stores vertex lists (ball-sized), not `n`-length masks, so
/// fan-out memory is proportional to the balls themselves; each worker
/// expands into its own transient mask. Solves run under the solver's
/// own budget — the one every sequential lookup would use.
///
/// If a family cache is attached, workers probe it *uncounted* for warm
/// entries and the hand-over loop records exactly one hit or miss per
/// distinct solve (and deposits computed entries). For an unbounded cache
/// this is the same counter trace a sequential run leaves, so hit rates
/// keep measuring genuine cross-run reuse rather than the sharding
/// handshake; a capacity-bounded cache under eviction churn can drift by
/// a few hits/misses (worker probes all precede the deposits), which
/// affects telemetry only, never a report. Without a family cache nothing
/// extra is allocated or retained.
fn shard_subset_solves(
    ilp: &IlpInstance,
    h: &Hypergraph,
    params: &PcParams,
    solver: &mut SubsetSolver<'_>,
    members_list: &[Vec<Vertex>],
) -> Vec<(SubsetKey, SubsetKey)> {
    let n = ilp.n();
    // dapc-allow(hash-iter): membership-test dedup only; the output order
    // dapc-allow(hash-iter): follows the deterministic worklist, not the set
    let mut seen: HashSet<SubsetKey> = HashSet::new();
    let mut worklist: Vec<(SubsetKey, Vec<Vertex>)> = Vec::new();
    let mut cluster_keys: Vec<(SubsetKey, SubsetKey)> = Vec::with_capacity(members_list.len());
    let mut scratch = BallScratch::new();
    let mut mask = vec![false; n];
    for members in members_list {
        for &v in members {
            mask[v as usize] = true;
        }
        let local_key = subset_key(&mask, None);
        if seen.insert(local_key) {
            worklist.push((local_key, members.clone()));
        }
        for &v in members {
            mask[v as usize] = false;
        }
        let ball = h.ball_with_scratch(members, params.sc_radius, None, None, &mut scratch);
        for v in ball.iter() {
            mask[v as usize] = true;
        }
        let sc_key = subset_key(&mask, None);
        if seen.insert(sc_key) {
            worklist.push((sc_key, ball.iter().collect()));
        }
        for v in ball.iter() {
            mask[v as usize] = false;
        }
        cluster_keys.push((local_key, sc_key));
    }
    // Tasks want 'static data; one shallow instance clone per *prepare
    // call* (not per lookup) buys it. The fan-out runs `pumps` tasks on
    // the ambient `dapc_exec` pool — the pool the enclosing batch job
    // already runs on, or the process-wide one — each draining the next
    // unclaimed work item, so concurrency is capped at `prep_workers`
    // with dynamic load balancing and no child pool is ever spawned.
    let owned: Arc<IlpInstance> = Arc::new(ilp.clone());
    let budget = solver.budget;
    let shared = solver.shared.clone();
    let worklist = Arc::new(worklist);
    let slots: Arc<Mutex<Vec<ShardSlot>>> =
        Arc::new(Mutex::new((0..worklist.len()).map(|_| None).collect()));
    let next = Arc::new(AtomicUsize::new(0));
    let pumps = params.prep_workers.min(worklist.len()).max(1);
    dapc_exec::scope(|s| {
        for _ in 0..pumps {
            let owned = Arc::clone(&owned);
            let shared = shared.clone();
            let worklist = Arc::clone(&worklist);
            let slots = Arc::clone(&slots);
            let next = Arc::clone(&next);
            s.spawn(move || {
                let mut mask: Vec<bool> = Vec::new();
                loop {
                    // ordering: Relaxed — fetch_add only claims unique worklist indices; no data rides on it
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some((key, vertices)) = worklist.get(index) else {
                        break;
                    };
                    let result = match shared.as_ref().and_then(|c| c.get_uncounted(*key)) {
                        Some(entry) => (entry, true),
                        None => {
                            mask.clear();
                            mask.resize(owned.n(), false);
                            for &v in vertices {
                                mask[v as usize] = true;
                            }
                            (solve_subset(&owned, &budget, &mask, None), false)
                        }
                    };
                    slots.lock().expect("prep result slots")[index] = Some(result);
                }
            });
        }
    });
    let worklist = Arc::try_unwrap(worklist)
        .expect("scope joined, no pump holds the worklist")
        .into_iter()
        .map(|(k, _)| k);
    let slots = Arc::try_unwrap(slots)
        .expect("scope joined, no pump holds the slots")
        .into_inner()
        .expect("prep result slots");
    for (key, slot) in worklist.zip(slots) {
        let (entry, was_warm) = slot.expect("every work item filled its slot");
        if let Some(shared) = &solver.shared {
            if was_warm {
                shared.record_hit();
            } else {
                shared.record_miss();
                shared.insert(key, entry.clone());
            }
        }
        solver.preload(key, entry);
    }
    cluster_keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    #[test]
    fn subset_solver_caches() {
        let g = gen::cycle(10);
        let ilp = problems::max_independent_set_unweighted(&g);
        let mut solver = SubsetSolver::new(&ilp, SolverBudget::default());
        let mask = vec![true; 10];
        let (v1, _, e1) = solver.solve_mask(&mask, None);
        let (v2, _, _) = solver.solve_mask(&mask, None);
        assert_eq!(v1, 5);
        assert_eq!(v1, v2);
        assert!(e1);
        assert_eq!(solver.cache.len(), 1);
    }

    #[test]
    fn subset_keys_distinguish_fixed_overlays() {
        let mask = vec![true, true, false, true];
        let none_fixed = subset_key(&mask, None);
        let empty_fixed = subset_key(&mask, Some(&[false, false, false, false]));
        let some_fixed = subset_key(&mask, Some(&[true, false, false, false]));
        let outside_fixed = subset_key(&mask, Some(&[false, false, true, false]));
        assert_ne!(none_fixed, empty_fixed, "separator must mark the overlay");
        assert_ne!(empty_fixed, some_fixed);
        // Fixed vertices outside the mask are irrelevant to the
        // restriction and must not move the key.
        assert_eq!(empty_fixed, outside_fixed);
    }

    #[test]
    fn shared_cache_spans_solvers() {
        let g = gen::cycle(10);
        let ilp = problems::max_independent_set_unweighted(&g);
        let shared = SharedSubsetCache::new();
        let mask = vec![true; 10];
        let mut a = SubsetSolver::with_shared(&ilp, SolverBudget::default(), shared.clone());
        let (v1, _, _) = a.solve_mask(&mask, None);
        assert_eq!((shared.hits(), shared.misses()), (0, 1));
        let mut b = SubsetSolver::with_shared(&ilp, SolverBudget::default(), shared.clone());
        let (v2, _, _) = b.solve_mask(&mask, None);
        assert_eq!(v1, v2);
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        // Per-run re-lookups are served by the local memo, not the shared
        // map, so hit counts measure genuine cross-run reuse.
        let (v3, _, _) = b.solve_mask(&mask, None);
        assert_eq!(v2, v3);
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recomputes() {
        let n = 20usize;
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        // A budget of one byte per stripe: every stripe keeps at most the
        // entry just inserted, and with more prefixes than stripes the
        // pigeonhole principle forces at least one eviction.
        let tiny = SharedSubsetCache::with_capacity(16);
        let mut solver = SubsetSolver::new(&ilp, SolverBudget::default());
        let mut values = Vec::new();
        for k in 1..=n {
            let mask: Vec<bool> = (0..n).map(|v| v < k).collect();
            let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), tiny.clone());
            values.push(s.solve_mask(&mask, None));
        }
        assert!(
            tiny.evictions() > 0,
            "a 16-byte budget must evict: {tiny:?}"
        );
        assert!(tiny.len() <= 16, "one entry per stripe at most: {tiny:?}");
        // Transparency: every value matches the uncached reference solver.
        for (k, cached) in values.iter().enumerate() {
            let mask: Vec<bool> = (0..n).map(|v| v <= k).collect();
            assert_eq!(&solver.solve_mask(&mask, None), cached, "prefix {k}");
        }
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let g = gen::path(9);
        let ilp = problems::max_independent_set_unweighted(&g);
        let cache = SharedSubsetCache::new();
        for k in 1..=9usize {
            let mask: Vec<bool> = (0..9).map(|v| v < k).collect();
            let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), cache.clone());
            s.solve_mask(&mask, None);
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.capacity(), None);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn snapshot_round_trips_byte_for_byte() {
        let g = gen::gnp(18, 0.15, &mut gen::seeded_rng(44));
        let ilp = problems::max_independent_set_unweighted(&g);
        let cache = SharedSubsetCache::new();
        for k in 1..=18usize {
            let mask: Vec<bool> = (0..18).map(|v| v < k).collect();
            let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), cache.clone());
            s.solve_mask(&mask, None);
        }
        let mut bytes = Vec::new();
        cache.save_to(&mut bytes).expect("write to a Vec");
        let loaded = SharedSubsetCache::load_from(bytes.as_slice()).expect("read back");
        assert_eq!(loaded.len(), cache.len());
        assert_eq!(
            (loaded.hits(), loaded.misses()),
            (0, 0),
            "loading counts nothing"
        );
        // Entry-for-entry equality, via the canonical serialisation.
        let mut reserialised = Vec::new();
        loaded.save_to(&mut reserialised).expect("write to a Vec");
        assert_eq!(bytes, reserialised);
    }

    /// The satellite contract: warm-loading a persisted cache changes the
    /// counters (cold misses become warm hits) but never a report — here
    /// at the preparation level, where every weight comes from the cache.
    #[test]
    fn warm_loaded_cache_changes_counters_never_outputs() {
        let ilp =
            problems::max_independent_set_unweighted(&gen::gnp(26, 0.11, &mut gen::seeded_rng(13)));
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let params = PcParams::packing_scaled(0.3, 26.0, 0.05, 0.5);
        let run = |cache: &SharedSubsetCache| {
            let mut rng = gen::seeded_rng(4);
            let mut solver = SubsetSolver::with_shared(&ilp, params.budget, cache.clone());
            let prep = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
            prep.clusters
                .iter()
                .map(|c| (c.members.clone(), c.w_local, c.w_neighborhood))
                .collect::<Vec<_>>()
        };
        let cold = SharedSubsetCache::new();
        let cold_clusters = run(&cold);
        assert!(cold.misses() > 0);
        assert_eq!(cold.hits(), 0);

        let mut snapshot = Vec::new();
        cold.save_to(&mut snapshot).expect("write to a Vec");
        let warm = SharedSubsetCache::load_from(snapshot.as_slice()).expect("read back");
        let warm_clusters = run(&warm);
        assert_eq!(warm_clusters, cold_clusters, "warm start moved an output");
        assert_eq!(warm.misses(), 0, "every lookup is answered warm");
        assert_eq!(warm.hits(), cold.misses(), "one hit per former miss");
    }

    #[test]
    fn loading_garbage_is_an_invalid_data_error() {
        let err = SharedSubsetCache::load_from(&b"not a snapshot!!"[..])
            .expect_err("bad magic must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A truncated but well-prefixed stream fails too (UnexpectedEof).
        let mut bytes = Vec::new();
        let cache = SharedSubsetCache::new();
        let g = gen::cycle(6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), cache.clone());
        s.solve_mask(&[true; 6], None);
        cache.save_to(&mut bytes).expect("write to a Vec");
        bytes.truncate(bytes.len() - 3);
        assert!(SharedSubsetCache::load_from(bytes.as_slice()).is_err());
    }

    /// A snapshot with ≥ 2 entries, plus the byte offset of every field
    /// boundary in its layout (`magic · count · (key · value · exact ·
    /// bits · packed)*`), for the truncation sweep below.
    fn two_entry_snapshot() -> (Vec<u8>, Vec<usize>, usize) {
        let cache = SharedSubsetCache::new();
        let g = gen::cycle(6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), cache.clone());
        s.solve_mask(&[true; 6], None);
        s.solve_mask(&[true, true, true, false, false, false], None);
        assert!(cache.len() >= 2, "need at least two entries");
        let mut bytes = Vec::new();
        cache.save_to(&mut bytes).expect("write to a Vec");
        let mut boundaries = vec![8, 16]; // after magic, after count
        let mut at = 16;
        for _ in 0..cache.len() {
            for field in [16usize, 8, 1, 8] {
                at += field;
                boundaries.push(at);
            }
            at += 1; // one packed byte per 6-bit assignment
            boundaries.push(at);
        }
        assert_eq!(at, bytes.len(), "layout walk must cover the snapshot");
        let count = cache.len();
        (bytes, boundaries, count)
    }

    /// Hardened loading: truncating the stream at (and inside) every
    /// field boundary is an `Err`, and — the half-load guard — a failed
    /// `load_into` leaves the target cache untouched, even when the
    /// stream dies *between* two well-formed entries.
    #[test]
    fn truncation_at_every_field_boundary_errors_without_half_loading() {
        let (bytes, boundaries, count) = two_entry_snapshot();
        for cut in boundaries.into_iter().filter(|&c| c < bytes.len()) {
            for cut in [cut.saturating_sub(1), cut] {
                let target = SharedSubsetCache::new();
                let err = target
                    .load_into(&bytes[..cut])
                    .expect_err("truncated snapshot must fail");
                assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
                assert_eq!(
                    target.len(),
                    0,
                    "a failed load at byte {cut} half-loaded entries"
                );
            }
        }
        // The untruncated stream still loads in full.
        let target = SharedSubsetCache::new();
        assert_eq!(target.load_into(bytes.as_slice()).expect("intact"), count);
        assert_eq!(target.len(), count);
    }

    /// A wrong version byte after the right magic prefix is rejected
    /// with a version-specific message, and a corrupt exactness flag is
    /// `InvalidData` — in both cases without half-loading.
    #[test]
    fn wrong_version_and_corrupt_flags_are_rejected_atomically() {
        let (bytes, _, _) = two_entry_snapshot();
        let mut wrong_version = bytes.clone();
        wrong_version[7] = 0x7f;
        let target = SharedSubsetCache::new();
        let err = target
            .load_into(wrong_version.as_slice())
            .expect_err("future version must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
        assert_eq!(target.len(), 0);

        // Corrupt the *second* entry's exactness flag: the first entry is
        // perfectly well-formed, and must still not be loaded.
        let mut bad_flag = bytes;
        let second_exact_at = 16 + (16 + 8) + 1 + 8 + 1 + (16 + 8);
        assert!(matches!(bad_flag[second_exact_at], 0 | 1));
        bad_flag[second_exact_at] = 9;
        let target = SharedSubsetCache::new();
        let err = target
            .load_into(bad_flag.as_slice())
            .expect_err("corrupt flag must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(target.len(), 0, "the well-formed first entry leaked in");
    }

    /// A corrupt length field must surface as a read error, not as a
    /// multi-exabyte allocation request: the loader only allocates in
    /// proportion to bytes actually present in the stream.
    #[test]
    fn loading_rejects_absurd_length_fields() {
        let cache = SharedSubsetCache::new();
        let g = gen::cycle(6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let mut s = SubsetSolver::with_shared(&ilp, SolverBudget::default(), cache.clone());
        s.solve_mask(&[true; 6], None);
        let mut bytes = Vec::new();
        cache.save_to(&mut bytes).expect("write to a Vec");
        // The assignment bit count of the single entry sits after
        // magic(8) + count(8) + key(16) + value(8) + exact(1).
        let bits_at = 8 + 8 + 16 + 8 + 1;
        bytes[bits_at..bits_at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = SharedSubsetCache::load_from(bytes.as_slice()).expect_err("must not allocate");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn prep_clusters_have_sane_weights() {
        let g = gen::grid(6, 6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let params = PcParams::packing_scaled(0.3, 36.0, 0.05, 0.5);
        let mut rng = gen::seeded_rng(71);
        let mut solver = SubsetSolver::new(&ilp, params.budget);
        let prep = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
        assert!(prep.all_exact);
        assert!(!prep.clusters.is_empty());
        for c in &prep.clusters {
            // Observation 2.1: W(P^local_C, C) <= W(P^local_{S_C}, S_C)
            // whenever C ⊆ S_C (monotone in the subset for packing).
            assert!(c.w_local <= c.w_neighborhood, "{c:?}");
            assert!(!c.members.is_empty());
        }
    }

    #[test]
    fn prep_covering_uses_sparse_cover() {
        let g = gen::cycle(12);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let params = PcParams::covering_scaled(0.3, 12.0, 0.05, 0.3, 1.0);
        let mut rng = gen::seeded_rng(72);
        let mut solver = SubsetSolver::new(&ilp, params.budget);
        let prep = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
        // Sparse covers keep every vertex, so cluster weights are positive
        // for any cluster containing an edge.
        assert!(!prep.clusters.is_empty());
        for c in &prep.clusters {
            assert!(c.w_local <= c.w_neighborhood);
        }
    }

    /// The sharded workers must solve under the *solver's* budget, not
    /// `params.budget` — byte-identity has to survive a caller that
    /// builds its `SubsetSolver` with a different budget than the params
    /// it hands to `prepare`.
    #[test]
    fn sharded_prepare_honours_the_solver_budget() {
        let ilp =
            problems::max_independent_set_unweighted(&gen::gnp(32, 0.12, &mut gen::seeded_rng(33)));
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let mut params = PcParams::packing_scaled(0.3, 32.0, 0.05, 0.5);
        // A budget tight enough that some whole-component solve is inexact
        // — the divergence a budget mix-up would surface through
        // `all_exact` and the weights.
        let tight = SolverBudget {
            node_limit: 4,
            ..Default::default()
        };
        let run = |params: &PcParams| {
            let mut rng = gen::seeded_rng(8);
            let mut solver = SubsetSolver::new(&ilp, tight);
            let prep = prepare(&ilp, &h, &primal, params, &mut rng, &mut solver);
            (
                prep.all_exact,
                prep.clusters
                    .iter()
                    .map(|c| (c.w_local, c.w_neighborhood))
                    .collect::<Vec<_>>(),
            )
        };
        let sequential = run(&params);
        assert!(!sequential.0, "node_limit 4 should leave inexact solves");
        params.prep_workers = 4;
        assert_eq!(run(&params), sequential);
    }

    /// Counter parity: a sharded preparation leaves the same family-cache
    /// hit/miss trace a sequential one would — the telemetry measures
    /// cross-run reuse, not the sharding handshake.
    #[test]
    fn sharded_prepare_preserves_cache_counters() {
        let ilp =
            problems::max_independent_set_unweighted(&gen::gnp(28, 0.1, &mut gen::seeded_rng(21)));
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let mut params = PcParams::packing_scaled(0.3, 28.0, 0.05, 0.5);
        let mut counters = Vec::new();
        for workers in [1usize, 4] {
            params.prep_workers = workers;
            let cold = SharedSubsetCache::new();
            let mut rng = gen::seeded_rng(6);
            let mut solver = SubsetSolver::with_shared(&ilp, params.budget, cold.clone());
            let _ = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
            let after_cold = (cold.hits(), cold.misses());
            // Warm replay against the same family cache.
            let mut rng = gen::seeded_rng(6);
            let mut solver = SubsetSolver::with_shared(&ilp, params.budget, cold.clone());
            let _ = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
            counters.push((after_cold, (cold.hits(), cold.misses())));
        }
        assert_eq!(
            counters[0], counters[1],
            "sequential vs sharded counter traces diverge"
        );
        let ((_, cold_misses), (warm_hits, warm_misses)) = counters[0];
        assert!(cold_misses > 0, "cold prep must record misses");
        assert!(warm_hits > 0, "warm replay must record hits");
        assert_eq!(warm_misses, cold_misses, "warm replay adds no solves");
    }

    /// The tentpole invariant at the unit level: for both senses, the
    /// clusters and `all_exact` flag emitted by a sharded preparation are
    /// byte-identical to the sequential ones at every worker count.
    #[test]
    fn sharded_prepare_is_byte_identical() {
        let pack =
            problems::max_independent_set_unweighted(&gen::gnp(30, 0.1, &mut gen::seeded_rng(9)));
        let cover = problems::min_vertex_cover_unweighted(&gen::cycle(26));
        for ilp in [&pack, &cover] {
            let h = ilp.hypergraph().clone();
            let primal = h.primal_graph();
            let mut params = match ilp.sense() {
                Sense::Packing => PcParams::packing_scaled(0.3, 30.0, 0.05, 0.5),
                Sense::Covering => PcParams::covering_scaled(0.3, 26.0, 0.05, 0.5, 1.0),
            };
            let run = |params: &PcParams| {
                let mut rng = gen::seeded_rng(5);
                let mut solver = SubsetSolver::new(ilp, params.budget);
                let prep = prepare(ilp, &h, &primal, params, &mut rng, &mut solver);
                (
                    prep.all_exact,
                    prep.clusters
                        .iter()
                        .map(|c| (c.members.clone(), c.w_local, c.w_neighborhood))
                        .collect::<Vec<_>>(),
                )
            };
            let sequential = run(&params);
            for workers in [2usize, 4] {
                params.prep_workers = workers;
                assert_eq!(
                    run(&params),
                    sequential,
                    "{:?} prep at {workers} workers drifted",
                    ilp.sense()
                );
            }
        }
    }
}
