//! The preparation step shared by the packing and covering solvers
//! (§4.1.1 / §5.1.1): `prep_count` independent decompositions of the
//! instance hypergraph whose clusters drive the sampling, each annotated
//! with its local optimum `W(OPT^local_C, C)` and the neighbourhood
//! estimate `W(OPT^local_{S_C}, S_C)`, `S_C = N^{8tR}(C)`.

use crate::params::PcParams;
use dapc_graph::{Hypergraph, Vertex};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_ilp::restrict::packing_restriction;
use dapc_ilp::solvers::{self, SolverBudget};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One memoised exact subset solve: `(value, global assignment, exact)`.
type SubsetEntry = (u64, Vec<bool>, bool);

/// A shareable memo of exact subset solves for one `(instance, budget)`
/// family.
///
/// Every entry is a deterministic function of the subset key alone (the
/// exact solvers draw no randomness), so sharing a cache across runs,
/// seeds, `ε` values and threads never changes any solver's output — it
/// only skips recomputation. This is the hook `dapc-runtime` uses to hoist
/// the [`SubsetSolver`] memoisation from per-run to per-instance-family.
///
/// Cloning is shallow: clones address the same underlying map and
/// counters. Equality is identity (two handles are equal iff they share
/// storage), which keeps `SolveConfig: PartialEq` meaningful.
#[derive(Clone, Default)]
pub struct SharedSubsetCache {
    inner: Arc<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    map: Mutex<HashMap<Vec<Vertex>, SubsetEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedSubsetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from the shared map (across all attached solvers).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the exact solver.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of memoised subset solves.
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("cache lock").len()
    }

    /// Whether no subset solve has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: &[Vertex]) -> Option<SubsetEntry> {
        let hit = self.inner.map.lock().expect("cache lock").get(key).cloned();
        match hit {
            Some(entry) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: Vec<Vertex>, entry: SubsetEntry) {
        self.inner
            .map
            .lock()
            .expect("cache lock")
            .insert(key, entry);
    }
}

impl PartialEq for SharedSubsetCache {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for SharedSubsetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSubsetCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// One sampling cluster from the preparation step.
#[derive(Clone, Debug)]
pub struct PrepCluster {
    /// Members (sorted).
    pub members: Vec<Vertex>,
    /// `W(OPT^local_C, C)`.
    pub w_local: u64,
    /// `W(OPT^local_{S_C}, S_C)` with `S_C = N^{8tR}(C)`.
    pub w_neighborhood: u64,
}

/// The full preparation output.
#[derive(Clone, Debug)]
pub struct Preparation {
    /// All clusters across the independent runs.
    pub clusters: Vec<PrepCluster>,
    /// Whether every local solve proved optimality.
    pub all_exact: bool,
}

/// A memoising exact solver over vertex subsets of one instance — many
/// clusters share their `S_C` (often the whole component), so the paper's
/// "free local computation" stays affordable in simulation.
pub struct SubsetSolver<'a> {
    ilp: &'a IlpInstance,
    budget: SolverBudget,
    cache: HashMap<Vec<Vertex>, SubsetEntry>,
    shared: Option<SharedSubsetCache>,
    /// Whether every solve so far was exact.
    pub all_exact: bool,
}

impl<'a> SubsetSolver<'a> {
    /// Creates a solver for `ilp` with the given budget.
    pub fn new(ilp: &'a IlpInstance, budget: SolverBudget) -> Self {
        SubsetSolver {
            ilp,
            budget,
            cache: HashMap::new(),
            shared: None,
            all_exact: true,
        }
    }

    /// Like [`SubsetSolver::new`], but consulting `shared` behind the
    /// per-run memo. The shared cache must belong to the same
    /// `(instance, budget)` family; results are identical with or without
    /// it (subset solves are deterministic), only the work is shared.
    pub fn with_shared(
        ilp: &'a IlpInstance,
        budget: SolverBudget,
        shared: SharedSubsetCache,
    ) -> Self {
        SubsetSolver {
            ilp,
            budget,
            cache: HashMap::new(),
            shared: Some(shared),
            all_exact: true,
        }
    }

    /// Optimal local value and assignment on the subset (mask form). For
    /// packing this is `P^local` (all constraints, zeros outside); for
    /// covering `Q^local` (inside constraints only), honouring `fixed_ones`
    /// at zero cost.
    pub fn solve_mask(
        &mut self,
        mask: &[bool],
        fixed_ones: Option<&[bool]>,
    ) -> (u64, Vec<bool>, bool) {
        let mut key: Vec<Vertex> = (0..self.ilp.n() as Vertex)
            .filter(|&v| mask[v as usize])
            .collect();
        // Fixed variables change covering sub-instances; fold them into the
        // key by offsetting (cheap, collision-free encoding).
        if let Some(f) = fixed_ones {
            key.push(u32::MAX); // separator
            key.extend((0..self.ilp.n() as Vertex).filter(|&v| f[v as usize] && mask[v as usize]));
        }
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        // Per-run miss: try the cross-run family cache before solving.
        // Shared hits must still feed `all_exact` — the inexact miss that
        // populated the entry may have happened in a different run.
        if let Some(hit) = self.shared.as_ref().and_then(|s| s.get(&key)) {
            if !hit.2 {
                self.all_exact = false;
            }
            self.cache.insert(key, hit.clone());
            return hit;
        }
        let sub = match self.ilp.sense() {
            Sense::Packing => packing_restriction(self.ilp, mask),
            Sense::Covering => {
                dapc_ilp::restrict::covering_restriction_with_fixed(self.ilp, mask, fixed_ones)
            }
        };
        let sol = solvers::solve(&sub, &self.budget);
        if !sol.exact {
            self.all_exact = false;
        }
        let mut global = vec![false; self.ilp.n()];
        sub.lift_into(&sol.assignment, &mut global);
        let out = (sol.value, global, sol.exact);
        if let Some(shared) = &self.shared {
            shared.insert(key.clone(), out.clone());
        }
        self.cache.insert(key, out.clone());
        out
    }

    /// Convenience: optimal local value on a vertex list.
    pub fn value_of(&mut self, vertices: &[Vertex]) -> u64 {
        let mut mask = vec![false; self.ilp.n()];
        for &v in vertices {
            mask[v as usize] = true;
        }
        self.solve_mask(&mask, None).0
    }
}

/// Runs the preparation step: `prep_count` independent decompositions
/// (Elkin–Neiman at `prep_lambda` for packing; sparse cover at
/// `prep_lambda` for covering), annotating every cluster with its sampling
/// weights.
pub fn prepare(
    ilp: &IlpInstance,
    h: &Hypergraph,
    primal: &dapc_graph::Graph,
    params: &PcParams,
    rng: &mut StdRng,
    solver: &mut SubsetSolver<'_>,
) -> Preparation {
    let n = h.n();
    let mut clusters: Vec<PrepCluster> = Vec::new();
    for _run in 0..params.prep_count {
        let run_clusters: Vec<Vec<Vertex>> = match ilp.sense() {
            Sense::Packing => {
                let en = dapc_decomp::elkin_neiman::elkin_neiman(
                    primal,
                    &dapc_decomp::elkin_neiman::EnParams::new(params.prep_lambda, params.n_tilde),
                    rng,
                    None,
                );
                en.clusters
            }
            Sense::Covering => {
                let cover = dapc_decomp::sparse_cover::sparse_cover(
                    h,
                    params.prep_lambda,
                    params.n_tilde,
                    rng,
                    None,
                    None,
                );
                cover.clusters
            }
        };
        for members in run_clusters {
            if members.is_empty() {
                continue;
            }
            let w_local = solver.value_of(&members);
            // S_C = N^{8tR}(C) in the hypergraph metric.
            let sc = h.ball(&members, params.sc_radius, None, None);
            let mut mask = vec![false; n];
            for v in sc.iter() {
                mask[v as usize] = true;
            }
            let (w_neighborhood, _, _) = solver.solve_mask(&mask, None);
            clusters.push(PrepCluster {
                members,
                w_local,
                w_neighborhood,
            });
        }
    }
    Preparation {
        clusters,
        all_exact: solver.all_exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::problems;

    #[test]
    fn subset_solver_caches() {
        let g = gen::cycle(10);
        let ilp = problems::max_independent_set_unweighted(&g);
        let mut solver = SubsetSolver::new(&ilp, SolverBudget::default());
        let mask = vec![true; 10];
        let (v1, _, e1) = solver.solve_mask(&mask, None);
        let (v2, _, _) = solver.solve_mask(&mask, None);
        assert_eq!(v1, 5);
        assert_eq!(v1, v2);
        assert!(e1);
        assert_eq!(solver.cache.len(), 1);
    }

    #[test]
    fn shared_cache_spans_solvers() {
        let g = gen::cycle(10);
        let ilp = problems::max_independent_set_unweighted(&g);
        let shared = SharedSubsetCache::new();
        let mask = vec![true; 10];
        let mut a = SubsetSolver::with_shared(&ilp, SolverBudget::default(), shared.clone());
        let (v1, _, _) = a.solve_mask(&mask, None);
        assert_eq!((shared.hits(), shared.misses()), (0, 1));
        let mut b = SubsetSolver::with_shared(&ilp, SolverBudget::default(), shared.clone());
        let (v2, _, _) = b.solve_mask(&mask, None);
        assert_eq!(v1, v2);
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        // Per-run re-lookups are served by the local memo, not the shared
        // map, so hit counts measure genuine cross-run reuse.
        let (v3, _, _) = b.solve_mask(&mask, None);
        assert_eq!(v2, v3);
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn prep_clusters_have_sane_weights() {
        let g = gen::grid(6, 6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let params = PcParams::packing_scaled(0.3, 36.0, 0.05, 0.5);
        let mut rng = gen::seeded_rng(71);
        let mut solver = SubsetSolver::new(&ilp, params.budget);
        let prep = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
        assert!(prep.all_exact);
        assert!(!prep.clusters.is_empty());
        for c in &prep.clusters {
            // Observation 2.1: W(P^local_C, C) <= W(P^local_{S_C}, S_C)
            // whenever C ⊆ S_C (monotone in the subset for packing).
            assert!(c.w_local <= c.w_neighborhood, "{c:?}");
            assert!(!c.members.is_empty());
        }
    }

    #[test]
    fn prep_covering_uses_sparse_cover() {
        let g = gen::cycle(12);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let h = ilp.hypergraph().clone();
        let primal = h.primal_graph();
        let params = PcParams::covering_scaled(0.3, 12.0, 0.05, 0.3, 1.0);
        let mut rng = gen::seeded_rng(72);
        let mut solver = SubsetSolver::new(&ilp, params.budget);
        let prep = prepare(&ilp, &h, &primal, &params, &mut rng, &mut solver);
        // Sparse covers keep every vertex, so cluster weights are positive
        // for any cluster containing an edge.
        assert!(!prep.clusters.is_empty());
        for c in &prep.clusters {
            assert!(c.w_local <= c.w_neighborhood);
        }
    }
}
