//! The (1 − ε)-approximate packing solver (Theorem 1.2, §4).
//!
//! Pipeline:
//!
//! 1. **Preparation** (§4.1.1) — `prep_count` independent Lemma C.1
//!    decompositions at `λ = 1/2`; every cluster `C` estimates its share of
//!    the (unknown) optimum via `W(P^local_C, C) / W(P^local_{S_C}, S_C)`.
//! 2. **Phases 1–2** (§4.1.3–4.1.4) — cluster-driven
//!    Grow-and-Carve-Packing (Algorithm 4): a sampled cluster gathers its
//!    `(b−1)`-ball, solves the local packing problem, and deletes the
//!    *middle layer* of the mod-3 window with the lightest local-solution
//!    mass, detaching `N^{j*}(C)` as an isolated region.
//! 3. **Phase 3** (§4.1.5) — Lemma C.1 at `λ = ε/10` on the residual; all
//!    deleted variables are fixed to 0 and each connected component of
//!    `H[V∖D]` solves its local packing problem exactly.
//!
//! Every deletion charges weight against the fixed unknown optimum `P*`,
//! so `W(P*, D) ≤ ε·W*` whp (Lemmas 4.3–4.6) and the union of component
//! optima is a (1 − ε)-approximation.

use crate::params::PcParams;
use crate::prep::{prepare, Preparation, SharedSubsetCache, SubsetSolver};
use dapc_conc::dist::bernoulli;
use dapc_graph::{BallScratch, Hypergraph, Vertex};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Per-phase accounting of a packing run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackingStats {
    /// Sampled centres per Phase 1 iteration.
    pub centers_per_iteration: Vec<usize>,
    /// Sampled centres in Phase 2.
    pub centers_phase2: usize,
    /// Variables deleted in Phases 1–2 (carving) and Phase 3 (final LDD).
    pub deleted_carving: usize,
    /// Variables deleted by the Phase 3 decomposition.
    pub deleted_phase3: usize,
    /// Number of final components solved.
    pub components: usize,
    /// Whether every local solve proved optimality.
    pub all_solves_exact: bool,
}

/// Result of the Theorem 1.2 algorithm.
#[derive(Clone, Debug)]
pub struct PackingOutcome {
    /// Feasible global 0/1 assignment.
    pub assignment: Vec<bool>,
    /// Its objective value `wᵀx`.
    pub value: u64,
    /// LOCAL round cost.
    pub ledger: RoundLedger,
    /// Phase accounting.
    pub stats: PackingStats,
}

impl dapc_local::RoundCost for PackingOutcome {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

/// Runs the (1 − ε)-approximate packing algorithm on `ilp`.
///
/// # Panics
///
/// Panics if `ilp` is not a packing instance.
///
/// # Examples
///
/// ```
/// use dapc_core::packing::approximate_packing;
/// use dapc_core::params::PcParams;
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
///
/// let g = gen::cycle(24);
/// let ilp = problems::max_independent_set_unweighted(&g);
/// let params = PcParams::packing_scaled(0.3, 24.0, 0.02, 0.3);
/// let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(1));
/// assert!(ilp.is_feasible(&out.assignment));
/// assert!(out.value >= 8); // (1 − 0.3) · 12 = 8.4 → at least 8 whp
/// ```
pub fn approximate_packing(
    ilp: &IlpInstance,
    params: &PcParams,
    rng: &mut StdRng,
) -> PackingOutcome {
    approximate_packing_cached(ilp, params, rng, None)
}

/// [`approximate_packing`] with an optional cross-run subset-solve cache
/// for the `(instance, budget)` family. The outcome is identical with or
/// without the cache (subset solves are deterministic); only the exact
/// local computation is shared.
pub fn approximate_packing_cached(
    ilp: &IlpInstance,
    params: &PcParams,
    rng: &mut StdRng,
    cache: Option<&SharedSubsetCache>,
) -> PackingOutcome {
    assert_eq!(ilp.sense(), Sense::Packing, "expected a packing instance");
    let h = ilp.hypergraph();
    let n = h.n();
    let mut ledger = RoundLedger::new();
    let mut stats = PackingStats::default();
    let mut solver = match cache {
        Some(c) => SubsetSolver::with_shared(ilp, params.budget, c.clone()),
        None => SubsetSolver::new(ilp, params.budget),
    };

    // Preparation: independent decompositions + sampling weights.
    let primal = h.primal_graph();
    let prep_rounds = (4.0 * params.n_tilde.ln() / params.prep_lambda).ceil() as usize;
    ledger.begin_phase("prep: parallel decompositions");
    ledger.charge_gather(prep_rounds);
    ledger.end_phase();
    ledger.begin_phase("prep: estimate W(S_C) at radius 8tR");
    ledger.charge_gather(params.sc_radius);
    ledger.end_phase();
    let prep: Preparation = prepare(ilp, h, &primal, params, rng, &mut solver);

    // Phases 1 and 2: cluster-driven carving. `alive[v]` = still in the
    // residual hypergraph (not removed, not deleted). The ball scratch and
    // mask buffer are shared across every carve of every iteration.
    let mut alive = vec![true; n];
    let mut deleted = vec![false; n];
    let mut scratch = BallScratch::new();
    let mut ball_mask = vec![false; n];
    for i in 1..=params.t + 1 {
        let is_phase2 = i == params.t + 1;
        let (a_i, b_i) = params.packing_interval(i);
        ledger.begin_phase(if is_phase2 {
            "phase2 carve".to_string()
        } else {
            format!("phase1/iter{i} carve")
        });
        ledger.charge_gather(b_i - 1);
        let mut centers: Vec<&crate::prep::PrepCluster> = Vec::new();
        for c in &prep.clusters {
            if !c.members.iter().any(|&v| alive[v as usize]) {
                continue; // cluster fully removed/deleted
            }
            let p = params.sampling_probability(i, c.w_local, c.w_neighborhood);
            if bernoulli(rng, p) {
                centers.push(c);
            }
        }
        if is_phase2 {
            stats.centers_phase2 = centers.len();
        } else {
            stats.centers_per_iteration.push(centers.len());
        }
        let mut to_delete = vec![false; n];
        let mut to_remove = vec![false; n];
        for c in &centers {
            let sources: Vec<Vertex> = c
                .members
                .iter()
                .copied()
                .filter(|&v| alive[v as usize])
                .collect();
            let ball = h.ball_with_scratch(&sources, b_i - 1, Some(&alive), None, &mut scratch);
            for v in ball.iter() {
                ball_mask[v as usize] = true;
            }
            let (_, local_solution, _) = solver.solve_mask(&ball_mask, None);
            for v in ball.iter() {
                ball_mask[v as usize] = false;
            }
            // Window weights: W(P^local, S_j ∪ S_{j+1} ∪ S_{j+2}) for
            // j ≡ a_i (mod 3).
            let window_weight = |j: usize| -> u64 {
                (j..j + 3)
                    .flat_map(|l| ball.level(l).iter())
                    .filter(|&&v| local_solution[v as usize])
                    .map(|&v| ilp.weight(v))
                    .sum()
            };
            let mut j_star = a_i;
            let mut best = u64::MAX;
            let mut j = a_i;
            while j < b_i {
                let w = window_weight(j);
                if w < best {
                    best = w;
                    j_star = j;
                    if w == 0 {
                        break;
                    }
                }
                j += 3;
            }
            for &v in ball.level(j_star + 1) {
                to_delete[v as usize] = true;
            }
            for v in ball.within(j_star) {
                to_remove[v as usize] = true;
            }
        }
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            if to_delete[v] {
                alive[v] = false;
                deleted[v] = true;
                stats.deleted_carving += 1;
            } else if to_remove[v] {
                alive[v] = false; // removed: clustered into a carved region
            }
        }
        ledger.end_phase();
    }

    // Phase 3: final decomposition on the residual.
    let en = dapc_decomp::elkin_neiman::elkin_neiman(
        &primal,
        &dapc_decomp::elkin_neiman::EnParams::new(params.final_lambda, params.n_tilde),
        rng,
        Some(&alive),
    );
    for v in 0..n {
        if alive[v] && en.deleted[v] {
            deleted[v] = true;
            stats.deleted_phase3 += 1;
        }
    }
    ledger.absorb(en.ledger);

    // Final components of H[V ∖ D] solve their local packing problems.
    let survivors: Vec<bool> = (0..n).map(|v| !deleted[v]).collect();
    let (comp, k) = component_split(h, &survivors);
    stats.components = k;
    ledger.begin_phase("final local solves (gather component)");
    ledger.charge_gather(2 * (params.t + 2) * 3 * (params.r + 1));
    ledger.end_phase();
    let mut assignment = vec![false; n];
    let mut mask = vec![false; n];
    for c in 0..k {
        for v in 0..n {
            mask[v] = survivors[v] && comp[v] == c as u32;
        }
        let (_, local, _) = solver.solve_mask(&mask, None);
        for v in 0..n {
            if mask[v] && local[v] {
                assignment[v] = true;
            }
        }
    }
    stats.all_solves_exact = solver.all_exact;
    let value = ilp.value(&assignment);
    debug_assert!(
        ilp.is_feasible(&assignment),
        "packing output must be feasible"
    );
    PackingOutcome {
        assignment,
        value,
        ledger,
        stats,
    }
}

/// Connected components of the alive part of `h` in the primal metric.
fn component_split(h: &Hypergraph, alive: &[bool]) -> (Vec<u32>, usize) {
    let n = h.n();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut scratch = BallScratch::new();
    for s in 0..n {
        if !alive[s] || comp[s] != u32::MAX {
            continue;
        }
        let ball = h.ball_with_scratch(&[s as Vertex], usize::MAX, Some(alive), None, &mut scratch);
        for v in ball.iter() {
            comp[v as usize] = next;
        }
        next += 1;
    }
    (comp, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::{problems, verify};
    use dapc_local::RoundCost;

    fn scaled(eps: f64, n: usize) -> PcParams {
        PcParams::packing_scaled(eps, n as f64, 0.02, 0.3)
    }

    #[test]
    fn mis_on_cycle_within_guarantee() {
        let g = gen::cycle(30);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = scaled(0.25, 30);
        for seed in 0..5 {
            let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
            let v = verify::verdict(&ilp, &out.assignment, &params.budget);
            assert!(v.feasible);
            assert!(
                v.within_packing(0.25),
                "seed {seed}: ratio {} below 1 − ε",
                v.ratio
            );
        }
    }

    #[test]
    fn mis_on_grid_within_guarantee() {
        let g = gen::grid(6, 6);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = scaled(0.3, 36);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(3));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible && v.within_packing(0.3), "ratio {}", v.ratio);
        assert!(out.stats.all_solves_exact);
    }

    #[test]
    fn weighted_mis_respects_weights() {
        let g = gen::star(12);
        let mut w = vec![1u64; 12];
        w[0] = 100; // hub dominates
        let ilp = problems::max_independent_set(&g, w);
        let params = scaled(0.2, 12);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(4));
        assert!(ilp.is_feasible(&out.assignment));
        assert!(out.value >= 100, "must take the heavy hub: {}", out.value);
    }

    #[test]
    fn matching_on_cycle() {
        let g = gen::cycle(20);
        let m = problems::max_matching(&g);
        let params = scaled(0.3, 20);
        let out = approximate_packing(&m.ilp, &params, &mut gen::seeded_rng(5));
        assert!(m.ilp.is_feasible(&out.assignment));
        assert!(out.value >= 7, "matching {} vs OPT 10", out.value); // ≥ (1−ε)·10
    }

    #[test]
    fn random_sparse_graph_mis() {
        let g = gen::gnp(40, 0.06, &mut gen::seeded_rng(6));
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = scaled(0.3, 40);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(7));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible && v.within_packing(0.3), "ratio {}", v.ratio);
    }

    #[test]
    fn general_packing_instance() {
        let ilp = problems::random_packing(25, 18, 3, &mut gen::seeded_rng(8));
        let params = scaled(0.3, 25);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(9));
        let v = verify::verdict(&ilp, &out.assignment, &params.budget);
        assert!(v.feasible);
        assert!(v.within_packing(0.3), "ratio {}", v.ratio);
    }

    #[test]
    fn rounds_are_charged_per_phase() {
        let g = gen::cycle(16);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = scaled(0.3, 16);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(10));
        // prep (2 phases) + t+1 carve phases + EN + final solves.
        assert!(out.ledger.phases().len() >= params.t + 4);
        assert!(out.rounds() > 0);
    }

    #[test]
    fn deleted_weight_is_small_across_seeds() {
        // The whp claim at experiment scale: deleted weight (vs the known
        // optimum) stays under ε·W* for every seed tried.
        let g = gen::grid(5, 5);
        let ilp = problems::max_independent_set_unweighted(&g);
        let eps = 0.3;
        let params = scaled(eps, 25);
        let (opt, _) = verify::optimum(&ilp, &params.budget);
        for seed in 0..10 {
            let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
            assert!(
                out.value as f64 >= (1.0 - eps) * opt as f64,
                "seed {seed}: {} < (1 − ε)·{opt}",
                out.value
            );
        }
    }
}
