//! # dapc-core
//!
//! The primary contribution of Chang & Li (PODC 2023), reproduced in full,
//! behind one unified solver engine:
//!
//! * [`engine`] — the [`engine::Solver`] trait, the [`engine::SolveConfig`]
//!   builder, the [`engine::SolveReport`] result and the string-keyed
//!   backend registry (`three-phase`, `gkm`, `ensemble`, `greedy`, `bnb`);
//! * [`adapters`] — the [`adapters::GraphProblem`] builder mapping MIS,
//!   matching, vertex cover and (k-distance) dominating set onto the
//!   engine;
//! * [`packing`] — **Theorem 1.2**: `(1 − ε)`-approximate solutions for
//!   arbitrary packing ILPs in `Õ(log n/ε)` LOCAL rounds, whp;
//! * [`covering`] — **Theorem 1.3**: `(1 + ε)`-approximate solutions for
//!   arbitrary covering ILPs in `Õ(log n/ε)` LOCAL rounds, whp;
//! * [`gkm`] — the Ghaffari–Kuhn–Maus `O(log³ n/ε)` baseline the paper
//!   improves upon (§1.2);
//! * [`ensemble`] — the §4.2 alternative packing algorithm;
//! * [`params`] — the paper's constants plus the documented scaling knobs;
//! * [`prep`] — the shared preparation step (§4.1.1/§5.1.1) and the
//!   memoising exact subset solver.
//!
//! ```
//! use dapc_core::adapters::GraphProblem;
//! use dapc_core::engine::ThreePhase;
//! use dapc_graph::gen;
//!
//! let g = gen::cycle(12);
//! let r = GraphProblem::min_vertex_cover(&g).eps(0.3).seed(0).solve_with(&ThreePhase);
//! assert!(r.weight <= 7); // τ(C12) = 6, (1+ε)·6 = 7.8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod covering;
pub mod engine;
pub mod ensemble;
pub mod gkm;
pub mod packing;
pub mod params;
pub mod prep;
pub mod snapmagic;

pub use adapters::{GraphProblem, GraphSolveResult};
pub use covering::{approximate_covering, CoveringOutcome};
pub use engine::{SolveConfig, SolveReport, Solver};
pub use packing::{approximate_packing, PackingOutcome};
pub use params::{PcParams, ScaleKnobs};
