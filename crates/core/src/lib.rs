//! # dapc-core
//!
//! The primary contribution of Chang & Li (PODC 2023), reproduced in full:
//!
//! * [`packing`] — **Theorem 1.2**: `(1 − ε)`-approximate solutions for
//!   arbitrary packing ILPs in `Õ(log n/ε)` LOCAL rounds, whp;
//! * [`covering`] — **Theorem 1.3**: `(1 + ε)`-approximate solutions for
//!   arbitrary covering ILPs in `Õ(log n/ε)` LOCAL rounds, whp;
//! * [`gkm`] — the Ghaffari–Kuhn–Maus `O(log³ n/ε)` baseline the paper
//!   improves upon (§1.2);
//! * [`adapters`] — one-call wrappers for MIS, maximum matching, vertex
//!   cover and (k-distance) dominating set;
//! * [`params`] — the paper's constants plus the documented scaling knobs;
//! * [`prep`] — the shared preparation step (§4.1.1/§5.1.1) and the
//!   memoising exact subset solver.
//!
//! ```
//! use dapc_core::adapters::{approx_min_vertex_cover, ScaleKnobs};
//! use dapc_graph::gen;
//!
//! let g = gen::cycle(12);
//! let r = approx_min_vertex_cover(
//!     &g, &vec![1; 12], 0.3, &ScaleKnobs::default(), &mut gen::seeded_rng(0));
//! assert!(r.weight <= 7); // τ(C12) = 6, (1+ε)·6 = 7.8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod covering;
pub mod ensemble;
pub mod gkm;
pub mod packing;
pub mod params;
pub mod prep;

pub use covering::{approximate_covering, CoveringOutcome};
pub use packing::{approximate_packing, PackingOutcome};
pub use params::PcParams;
