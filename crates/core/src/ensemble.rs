//! The alternative packing algorithm of §4.2 ("An Alternative Approach",
//! suggested by the paper's anonymous reviewer).
//!
//! Instead of cluster-driven carving, run `T = O(ε⁻² log ñ)` independent
//! Lemma C.1 decompositions in parallel, solve each one's clusters exactly
//! to get candidate solutions `P_i`, re-weight every variable by how many
//! candidates selected it (`w'(v) = w(v)·|{i : P_i(v) = 1}|`), and run one
//! more decomposition on the re-weighted instance. By the averaging
//! argument, some candidate restricted to clustered vertices has value
//! `≥ (1 − ε)³·W*`, and the re-weighted decomposition concentrates enough
//! mass on the good variables for its clustered solution to match.
//!
//! *Substitution (documented, DESIGN.md §2):* the paper's final step uses a
//! *weighted* extension of Theorem 1.1; we use the same Lemma C.1
//! decomposition for the final step (its per-vertex deletion bound is
//! weight-oblivious) and additionally return the best candidate, so the
//! output value is a maximum of both mechanisms — never worse than either.

use crate::params::PcParams;
use crate::prep::{SharedSubsetCache, SubsetSolver};
use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc_ilp::instance::{IlpInstance, Sense};
use dapc_local::RoundLedger;
use rand::rngs::StdRng;

/// Result of the ensemble algorithm.
#[derive(Clone, Debug)]
pub struct EnsembleOutcome {
    /// Feasible global assignment (the better of best-candidate and the
    /// re-weighted final solution).
    pub assignment: Vec<bool>,
    /// Its objective value.
    pub value: u64,
    /// Values of all `T` candidates (diagnostics for the averaging
    /// argument).
    pub candidate_values: Vec<u64>,
    /// Value achieved by the re-weighted final decomposition.
    pub reweighted_value: u64,
    /// LOCAL round cost (the `T` runs are parallel; the re-weighted run is
    /// sequential after them).
    pub ledger: RoundLedger,
    /// Whether every local solve proved optimality.
    pub all_solves_exact: bool,
}

impl dapc_local::RoundCost for EnsembleOutcome {
    fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }
}

/// Runs the §4.2 ensemble algorithm with `t_runs` parallel decompositions
/// (the paper's `t = O(ε⁻² log ñ)`; pass `None` for `⌈ln ñ/ε²⌉` capped at
/// 48).
///
/// # Panics
///
/// Panics if `ilp` is not packing.
///
/// ```
/// use dapc_core::ensemble::packing_ensemble;
/// use dapc_core::params::PcParams;
/// use dapc_graph::gen;
/// use dapc_ilp::problems;
///
/// let g = gen::cycle(24);
/// let ilp = problems::max_independent_set_unweighted(&g);
/// let params = PcParams::packing_scaled(0.3, 24.0, 0.02, 0.3);
/// let out = packing_ensemble(&ilp, &params, Some(8), &mut gen::seeded_rng(3));
/// assert!(ilp.is_feasible(&out.assignment));
/// assert!(out.value >= 8); // (1 − ε)·α(C24) = 0.7·12
/// ```
pub fn packing_ensemble(
    ilp: &IlpInstance,
    params: &PcParams,
    t_runs: Option<usize>,
    rng: &mut StdRng,
) -> EnsembleOutcome {
    packing_ensemble_cached(ilp, params, t_runs, rng, None)
}

/// [`packing_ensemble`] with an optional cross-run subset-solve cache for
/// the `(instance, budget)` family. The outcome is identical with or
/// without the cache (subset solves are deterministic); only the exact
/// local computation is shared.
pub fn packing_ensemble_cached(
    ilp: &IlpInstance,
    params: &PcParams,
    t_runs: Option<usize>,
    rng: &mut StdRng,
    cache: Option<&SharedSubsetCache>,
) -> EnsembleOutcome {
    assert_eq!(ilp.sense(), Sense::Packing, "expected a packing instance");
    let n = ilp.n();
    let primal = ilp.hypergraph().primal_graph();
    let t_runs = t_runs.unwrap_or_else(|| {
        ((params.n_tilde.ln() / (params.eps * params.eps)).ceil() as usize).clamp(4, 48)
    });
    let en = EnParams::new(params.eps / 2.0, params.n_tilde);
    let mut solver = match cache {
        Some(c) => SubsetSolver::with_shared(ilp, params.budget, c.clone()),
        None => SubsetSolver::new(ilp, params.budget),
    };
    let mut ledger = RoundLedger::new();
    ledger.begin_phase(format!("{t_runs} parallel decompositions"));
    ledger.charge_gather(en.rounds());
    ledger.end_phase();
    ledger.begin_phase("per-cluster exact solves (gather cluster)");
    ledger.charge_gather((en.diameter_bound()).ceil() as usize);
    ledger.end_phase();

    // Candidates: one feasible solution per decomposition. One mask
    // buffer serves every cluster solve of every run.
    let mut selection_count = vec![0u64; n];
    let mut best_candidate: Option<(u64, Vec<bool>)> = None;
    let mut candidate_values = Vec::with_capacity(t_runs);
    let mut mask = vec![false; n];
    for _ in 0..t_runs {
        let d = elkin_neiman(&primal, &en, rng, None);
        let mut assignment = vec![false; n];
        for cluster in &d.clusters {
            for &v in cluster {
                mask[v as usize] = true;
            }
            let (_, local, _) = solver.solve_mask(&mask, None);
            for v in 0..n {
                if mask[v] && local[v] {
                    assignment[v] = true;
                }
            }
            for &v in cluster {
                mask[v as usize] = false;
            }
        }
        debug_assert!(ilp.is_feasible(&assignment));
        let value = ilp.value(&assignment);
        candidate_values.push(value);
        for v in 0..n {
            if assignment[v] {
                selection_count[v] += 1;
            }
        }
        if best_candidate.as_ref().is_none_or(|(bv, _)| value > *bv) {
            best_candidate = Some((value, assignment));
        }
    }
    let (best_value, best_assignment) = best_candidate.unwrap_or((0, vec![false; n]));

    // Re-weighted final decomposition: clusters solve the *original*
    // instance, but the sampling mass w'(v) = w(v)·count(v) tells us which
    // variables the ensemble believes in — we bias the final decomposition
    // by restricting it to the support of w' (variables never selected by
    // any candidate cannot be in any candidate-restriction anyway).
    let support: Vec<bool> = (0..n).map(|v| selection_count[v] > 0).collect();
    let d = elkin_neiman(&primal, &en, rng, Some(&support));
    ledger.absorb(d.ledger.clone());
    ledger.begin_phase("re-weighted cluster solves");
    ledger.charge_gather((en.diameter_bound()).ceil() as usize);
    ledger.end_phase();
    let mut reweighted = vec![false; n];
    for cluster in &d.clusters {
        for &v in cluster {
            mask[v as usize] = true;
        }
        let (_, local, _) = solver.solve_mask(&mask, None);
        for v in 0..n {
            if mask[v] && local[v] {
                reweighted[v] = true;
            }
        }
        for &v in cluster {
            mask[v as usize] = false;
        }
    }
    debug_assert!(ilp.is_feasible(&reweighted));
    let reweighted_value = ilp.value(&reweighted);

    let (value, assignment) = if reweighted_value > best_value {
        (reweighted_value, reweighted)
    } else {
        (best_value, best_assignment)
    };
    EnsembleOutcome {
        assignment,
        value,
        candidate_values,
        reweighted_value,
        ledger,
        all_solves_exact: solver.all_exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;
    use dapc_ilp::{problems, verify, SolverBudget};

    #[test]
    fn ensemble_meets_guarantee_on_cycle() {
        let g = gen::cycle(30);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(0.3, 30.0, 0.02, 0.3);
        for seed in 0..5 {
            let out = packing_ensemble(&ilp, &params, Some(8), &mut gen::seeded_rng(seed));
            let v = verify::verdict(&ilp, &out.assignment, &SolverBudget::default());
            assert!(v.feasible);
            assert!(v.within_packing(0.3), "seed {seed}: ratio {}", v.ratio);
        }
    }

    #[test]
    fn ensemble_on_random_graph() {
        let g = gen::gnp(36, 0.08, &mut gen::seeded_rng(2));
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(0.3, 36.0, 0.02, 0.3);
        let out = packing_ensemble(&ilp, &params, Some(10), &mut gen::seeded_rng(3));
        let v = verify::verdict(&ilp, &out.assignment, &SolverBudget::default());
        assert!(v.feasible && v.within_packing(0.3), "ratio {}", v.ratio);
        assert_eq!(out.candidate_values.len(), 10);
    }

    #[test]
    fn output_is_max_of_both_mechanisms() {
        let g = gen::grid(5, 5);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(0.2, 25.0, 0.02, 0.3);
        let out = packing_ensemble(&ilp, &params, Some(6), &mut gen::seeded_rng(4));
        let best_candidate = *out.candidate_values.iter().max().unwrap();
        assert!(out.value >= best_candidate);
        assert!(out.value >= out.reweighted_value);
    }

    #[test]
    fn default_run_count_is_bounded() {
        let g = gen::cycle(16);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(0.3, 16.0, 0.02, 0.3);
        let out = packing_ensemble(&ilp, &params, None, &mut gen::seeded_rng(5));
        assert!(out.candidate_values.len() >= 4);
        assert!(out.candidate_values.len() <= 48);
        assert!(ilp.is_feasible(&out.assignment));
    }
}
