//! Property-based tests: the Theorem 1.2/1.3 solvers must emit feasible
//! solutions meeting their guarantees on arbitrary random graphs.

use dapc_core::covering::approximate_covering;
use dapc_core::engine::{self, SharedSubsetCache, SolveConfig};
use dapc_core::gkm::{gkm_solve, GkmParams};
use dapc_core::packing::approximate_packing;
use dapc_core::params::PcParams;
use dapc_graph::{gen, Graph, Vertex};
use dapc_ilp::{problems, verify, SolverBudget};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as Vertex, 0..n as Vertex), 0..(2 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packing_guarantee_on_arbitrary_graphs(g in arb_graph(22), seed in 0u64..10) {
        let eps = 0.3;
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(eps, g.n() as f64, 0.02, 0.3);
        let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
        prop_assert!(ilp.is_feasible(&out.assignment));
        let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
        prop_assert!(exact);
        prop_assert!(out.value as f64 >= (1.0 - eps) * opt as f64,
            "value {} < (1−ε)·{}", out.value, opt);
    }

    #[test]
    fn covering_guarantee_on_arbitrary_graphs(g in arb_graph(18), seed in 0u64..10) {
        let eps = 0.4;
        let ilp = problems::min_dominating_set_unweighted(&g);
        let params = PcParams::covering_scaled(eps, g.n() as f64, 0.02, 0.3, 1.0);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
        prop_assert!(ilp.is_feasible(&out.assignment));
        let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
        prop_assert!(exact);
        prop_assert!(out.value as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
            "value {} > (1+ε)·{}", out.value, opt);
    }

    #[test]
    fn gkm_covering_carve_feasible_for_any_k_scale(
        g in arb_graph(20),
        k_scale in 0.01f64..1.5,
        eps_pct in 10u32..60,
        seed in 0u64..8,
    ) {
        // Hardens the PR 1 small-k window clamp: for tiny k the covering
        // carve's default window used to sit on the ball boundary and
        // delete vertices whose outward constraints were never satisfied.
        // Whatever k the scale produces (the constructor floors it at 3,
        // exercising both the `lo = 1` and `lo = 3` window paths), the
        // carve must stay feasible — and, when the reference optimum is
        // proven, never dip below it (covering minimises).
        let eps = eps_pct as f64 / 100.0;
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let params = GkmParams::new(eps, g.n() as f64, k_scale);
        let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(seed));
        prop_assert!(
            ilp.is_feasible(&out.assignment),
            "k = {} (k_scale {k_scale}, eps {eps}): infeasible carve",
            params.k
        );
        let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
        if exact {
            prop_assert!(out.value >= opt, "covering below optimum: {} < {opt}", out.value);
        }
    }

    #[test]
    fn gkm_dominating_set_carve_feasible_for_any_k_scale(
        n in 6usize..36,
        k_scale in 0.01f64..1.2,
        seed in 0u64..6,
    ) {
        // Long cycles keep the carve radius below the diameter, so the
        // window search genuinely runs instead of swallowing the graph.
        let g = gen::cycle(n);
        let ilp = problems::min_dominating_set_unweighted(&g);
        let params = GkmParams::new(0.3, n as f64, k_scale);
        let out = gkm_solve(&ilp, &params, &mut gen::seeded_rng(seed));
        prop_assert!(
            ilp.is_feasible(&out.assignment),
            "n = {n}, k = {}: infeasible carve",
            params.k
        );
    }

    #[test]
    fn lru_eviction_never_changes_a_solve_report(
        g in arb_graph(20),
        seed in 0u64..8,
        capacity in 0usize..4096,
        covering_bit in 0u8..2,
    ) {
        let covering = covering_bit == 1;
        // The PrepCache eviction contract: any byte budget — including 0,
        // which evicts on every insert — yields reports byte-identical to
        // the unbounded cache and to no cache at all, for both senses.
        let ilp = if covering {
            problems::min_vertex_cover_unweighted(&g)
        } else {
            problems::max_independent_set_unweighted(&g)
        };
        let cfg = SolveConfig::new().eps(0.3).seed(seed);
        let reference = engine::solve("three-phase", &ilp, &cfg).unwrap();
        let bounded = SharedSubsetCache::with_capacity(capacity);
        let with_bounded = engine::solve(
            "three-phase", &ilp, &cfg.clone().prep_cache(bounded.clone())).unwrap();
        prop_assert_eq!(&reference, &with_bounded,
            "capacity {} changed the report (evictions: {})", capacity, bounded.evictions());
        // Replay against the (possibly churned) cache: still identical.
        let replay = engine::solve(
            "three-phase", &ilp, &cfg.clone().prep_cache(bounded.clone())).unwrap();
        prop_assert_eq!(&reference, &replay);
        if let Some(cap) = bounded.capacity() {
            // Size-awareness: the residual footprint respects the budget
            // up to one entry per stripe (the just-inserted survivor).
            let slack = 16 * (ilp.n() + 64);
            prop_assert!(bounded.bytes() <= cap + slack,
                "bytes {} exceed capacity {} + slack {}", bounded.bytes(), cap, slack);
        }
    }

    #[test]
    fn weighted_instances_on_arbitrary_graphs(g in arb_graph(16), seed in 0u64..6) {
        let n = g.n();
        let weights: Vec<u64> = (0..n).map(|i| 1 + (i as u64 * 13) % 9).collect();
        let eps = 0.3;
        let ilp = problems::min_vertex_cover(&g, weights);
        let params = PcParams::covering_scaled(eps, n as f64, 0.02, 0.3, 1.0);
        let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
        prop_assert!(ilp.is_feasible(&out.assignment));
        let (opt, exact) = verify::optimum(&ilp, &SolverBudget::default());
        prop_assert!(exact);
        prop_assert!(out.value as f64 <= (1.0 + eps) * opt as f64 + 1e-9);
    }
}
