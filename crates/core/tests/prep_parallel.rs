//! Determinism contract of intra-solve prep sharding: for packing and
//! covering instances alike, the full `SolveReport` must be byte-identical
//! at 1, 2 and 4 preparation workers — sharding changes wall-clock time,
//! never outcomes — and attaching a (bounded or unbounded) family cache
//! must not move a single byte either.

use dapc_core::engine::{self, SharedSubsetCache, SolveConfig};
use dapc_graph::gen;
use dapc_ilp::{problems, IlpInstance};

fn corpus() -> Vec<(&'static str, IlpInstance)> {
    vec![
        (
            "MIS/gnp36",
            problems::max_independent_set_unweighted(&gen::gnp(36, 0.1, &mut gen::seeded_rng(1))),
        ),
        (
            "MIS/grid5x6",
            problems::max_independent_set_unweighted(&gen::grid(5, 6)),
        ),
        (
            "VC/gnp30",
            problems::min_vertex_cover_unweighted(&gen::gnp(30, 0.09, &mut gen::seeded_rng(2))),
        ),
        (
            "DS/cycle27",
            problems::min_dominating_set_unweighted(&gen::cycle(27)),
        ),
        (
            "pack/random",
            problems::random_packing(24, 16, 3, &mut gen::seeded_rng(3)),
        ),
        (
            "cover/random",
            problems::random_covering(20, 14, 3, &mut gen::seeded_rng(4)),
        ),
    ]
}

#[test]
fn solve_reports_are_byte_identical_across_prep_worker_counts() {
    for (name, ilp) in &corpus() {
        let base_cfg = SolveConfig::new().eps(0.3).seed(11);
        let baseline = engine::solve("three-phase", ilp, &base_cfg).unwrap();
        for workers in [1usize, 2, 4] {
            let cfg = base_cfg.clone().prep_workers(workers);
            let report = engine::solve("three-phase", ilp, &cfg).unwrap();
            assert_eq!(
                baseline, report,
                "{name}: report drifted at {workers} prep workers"
            );
            assert_eq!(
                format!("{baseline:?}"),
                format!("{report:?}"),
                "{name}: debug drift at {workers} prep workers"
            );
        }
    }
}

#[test]
fn sharding_composes_with_a_shared_family_cache() {
    // The batch-runtime shape: a warm family cache plus prep sharding.
    // Neither the cache, nor the sharding, nor their combination may
    // change the report.
    for (name, ilp) in &corpus() {
        let baseline = engine::solve("three-phase", ilp, &SolveConfig::new().seed(3)).unwrap();
        let cache = SharedSubsetCache::new();
        for workers in [1usize, 4] {
            for _round in 0..2 {
                // round 1 fills the cache, round 2 replays from it
                let cfg = SolveConfig::new()
                    .seed(3)
                    .prep_workers(workers)
                    .prep_cache(cache.clone());
                let report = engine::solve("three-phase", ilp, &cfg).unwrap();
                assert_eq!(
                    baseline, report,
                    "{name}: cache + {workers} workers drifted"
                );
            }
        }
        assert!(cache.hits() > 0, "{name}: warm cache must serve hits");
    }
}

#[test]
fn lru_bounded_cache_is_report_transparent() {
    // A pathologically small budget (constant eviction churn) must still
    // leave every report untouched — eviction only trades memory for
    // recomputation.
    for (name, ilp) in &corpus() {
        let baseline = engine::solve("three-phase", ilp, &SolveConfig::new().seed(5)).unwrap();
        let tiny = SharedSubsetCache::with_capacity(64);
        for workers in [1usize, 2] {
            let cfg = SolveConfig::new()
                .seed(5)
                .prep_workers(workers)
                .prep_cache(tiny.clone());
            let report = engine::solve("three-phase", ilp, &cfg).unwrap();
            assert_eq!(baseline, report, "{name}: eviction changed a report");
        }
        assert!(
            tiny.len() <= 16,
            "{name}: a 64-byte budget must keep at most one entry per stripe"
        );
    }
}
