//! Property test: the gathering primitive delivers exactly the r-ball on
//! arbitrary random graphs — the contract that justifies charged rounds.

use dapc_graph::{traversal, Graph, Vertex};
use dapc_local::gather::gather_views;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as Vertex, 0..n as Vertex), 0..(2 * n))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gather_equals_centralized_ball(g in arb_graph(36), r in 0usize..5) {
        let views = gather_views(&g, r);
        for v in g.vertices() {
            let mut expected: Vec<Vertex> =
                traversal::ball(&g, &[v], r, None).iter().collect();
            expected.sort_unstable();
            prop_assert_eq!(&views[v as usize], &expected, "vertex {} radius {}", v, r);
        }
    }
}
