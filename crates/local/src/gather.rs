//! Topology gathering: the canonical LOCAL primitive.
//!
//! An `r`-round LOCAL algorithm is exactly a function of each vertex's
//! `r`-radius ball (this is the observation all the paper's round counts
//! rest on). [`GatherProgram`] realises the primitive as an actual
//! message-passing program: after `r` rounds every vertex knows the full
//! topology of `N^r(v)`. The tests check this against the centralised
//! [`dapc_graph::traversal::ball`], which is what licenses the *charged*
//! runtime in [`crate::charge`] to account rounds without flooding.

use crate::network::{Network, NodeCtx, NodeProgram, Outbox};
use dapc_graph::{Graph, Vertex};
use std::collections::BTreeMap;

/// Message: newly learned `(vertex, adjacency)` records.
pub type TopologyRecords = Vec<(Vertex, Vec<Vertex>)>;

/// A node program that floods adjacency records for `radius` rounds, after
/// which [`GatherProgram::view`] is the vertex's `radius`-ball topology.
#[derive(Clone, Debug)]
pub struct GatherProgram {
    radius: usize,
    known: BTreeMap<Vertex, Vec<Vertex>>,
    fresh: TopologyRecords,
    rounds_done: usize,
}

impl GatherProgram {
    /// Creates a program that gathers for `radius` rounds.
    pub fn new(radius: usize) -> Self {
        GatherProgram {
            radius,
            known: BTreeMap::new(),
            fresh: Vec::new(),
            rounds_done: 0,
        }
    }

    /// The topology learned so far: vertex → its full adjacency list, for
    /// every vertex whose *record* has reached this node.
    ///
    /// After `radius` rounds this contains the record of every vertex in
    /// `N^{radius}(v)` (records of boundary vertices mention neighbours
    /// outside the ball; that matches the LOCAL model, where a gathered
    /// vertex reports all its incident edges).
    pub fn view(&self) -> &BTreeMap<Vertex, Vec<Vertex>> {
        &self.known
    }

    /// The vertices whose records are known, as a sorted list.
    pub fn known_vertices(&self) -> Vec<Vertex> {
        self.known.keys().copied().collect()
    }
}

impl NodeProgram for GatherProgram {
    type Message = TopologyRecords;

    fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<Self::Message> {
        let record = (ctx.id, ctx.neighbors.to_vec());
        self.known.insert(record.0, record.1.clone());
        if self.radius == 0 {
            return Outbox::Silent;
        }
        Outbox::Broadcast(vec![record])
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: Vec<(usize, Self::Message)>,
    ) -> Outbox<Self::Message> {
        self.rounds_done += 1;
        self.fresh.clear();
        for (_, records) in inbox {
            for (v, adj) in records {
                if let std::collections::btree_map::Entry::Vacant(e) = self.known.entry(v) {
                    e.insert(adj.clone());
                    self.fresh.push((v, adj));
                }
            }
        }
        if self.rounds_done >= self.radius || self.fresh.is_empty() {
            Outbox::Silent
        } else {
            Outbox::Broadcast(self.fresh.clone())
        }
    }

    fn halted(&self) -> bool {
        self.rounds_done >= self.radius
    }
}

/// Runs the gather primitive on a whole graph and returns, per vertex, the
/// set of vertices it learned about. A convenience wrapper used by tests
/// and the simulator-validation experiment.
pub fn gather_views(g: &Graph, radius: usize) -> Vec<Vec<Vertex>> {
    let mut net = Network::new(g, |_, _| GatherProgram::new(radius), g.n());
    net.run(radius + 1);
    net.into_nodes()
        .into_iter()
        .map(|p| p.known_vertices())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::{gen, traversal};

    #[test]
    fn zero_radius_sees_only_self() {
        let g = gen::cycle(5);
        let views = gather_views(&g, 0);
        for (v, view) in views.iter().enumerate() {
            assert_eq!(view, &vec![v as Vertex]);
        }
    }

    /// The contract that justifies charged-round accounting: after r rounds
    /// of real message passing, each vertex knows exactly N^r(v).
    #[test]
    fn gather_matches_centralized_ball() {
        for (g, r) in [
            (gen::grid(5, 5), 3usize),
            (gen::cycle(11), 4),
            (gen::random_regular(40, 3, &mut gen::seeded_rng(4)), 2),
            (gen::star(9), 1),
        ] {
            let views = gather_views(&g, r);
            for v in g.vertices() {
                let mut expected: Vec<Vertex> = traversal::ball(&g, &[v], r, None).iter().collect();
                expected.sort_unstable();
                assert_eq!(views[v as usize], expected, "vertex {v}, r {r}");
            }
        }
    }

    #[test]
    fn gathered_adjacency_is_authentic() {
        let g = gen::grid(4, 4);
        let mut net = Network::new(&g, |_, _| GatherProgram::new(2), g.n());
        net.run(3);
        for (v, p) in net.nodes().iter().enumerate() {
            for (&u, adj) in p.view() {
                assert_eq!(adj.as_slice(), g.neighbors(u), "record of {u} at {v}");
            }
        }
    }

    #[test]
    fn gather_halts_after_radius_rounds() {
        let g = gen::path(20);
        let mut net = Network::new(&g, |_, _| GatherProgram::new(5), g.n());
        let stats = net.run(100);
        assert!(stats.all_halted);
        assert!(stats.rounds <= 6);
    }
}
