//! Synchronous message-passing simulator for the LOCAL model.
//!
//! The LOCAL model (§1 of the paper): computation proceeds in synchronous
//! rounds; in each round every vertex receives the messages its neighbours
//! sent in the previous round, performs arbitrary local computation, and
//! sends one message of arbitrary size per incident edge. This module
//! simulates that faithfully — algorithms are [`NodeProgram`]s, the
//! [`Network`] drives them round by round and reports exact round and
//! message counts.

use dapc_graph::{Graph, Vertex};

/// Read-only facts a node knows about itself when its program runs.
///
/// Nodes know their own identifier, their neighbours' identifiers (standard
/// in the LOCAL model after one implicit round of identifier exchange) and
/// the global vertex-count hint `ñ` the paper assumes.
#[derive(Clone, Copy, Debug)]
pub struct NodeCtx<'a> {
    /// This node's identifier.
    pub id: Vertex,
    /// Identifiers of the neighbours; port `i` leads to `neighbors[i]`.
    pub neighbors: &'a [Vertex],
    /// Current round number (0 for `init`, then 1, 2, …).
    pub round: usize,
    /// The polynomial upper bound `ñ ≥ n` known to all vertices.
    pub n_hint: usize,
}

/// What a node wants to transmit at the end of a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outbox<M> {
    /// Send nothing.
    Silent,
    /// Send the same message on every port.
    Broadcast(M),
    /// Send selected `(port, message)` pairs.
    PerPort(Vec<(usize, M)>),
}

/// A distributed algorithm from the point of view of a single vertex.
///
/// Implementations hold all per-node state. The driver calls [`init`] once
/// (round 0), then [`round`] once per communication round until every node
/// reports [`halted`] or the round budget is exhausted.
///
/// [`init`]: NodeProgram::init
/// [`round`]: NodeProgram::round
/// [`halted`]: NodeProgram::halted
pub trait NodeProgram {
    /// Message type; arbitrary size, as the LOCAL model allows.
    type Message: Clone;

    /// Round 0: produce the initial outbox.
    fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<Self::Message>;

    /// One synchronous round: consume the inbox (pairs of `(port, message)`
    /// where `port` identifies the sending neighbour), produce the outbox.
    fn round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: Vec<(usize, Self::Message)>,
    ) -> Outbox<Self::Message>;

    /// Whether this node has terminated (its outputs are final).
    fn halted(&self) -> bool;
}

/// Statistics of a completed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Communication rounds executed (not counting `init` as a round).
    pub rounds: usize,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Whether every node halted within the round budget.
    pub all_halted: bool,
}

/// Drives a [`NodeProgram`] per vertex of a [`Graph`] in synchronous rounds.
///
/// # Examples
///
/// ```
/// use dapc_graph::gen;
/// use dapc_local::network::{Network, NodeCtx, NodeProgram, Outbox};
///
/// /// Every node learns the maximum identifier in its component.
/// struct MaxId {
///     best: u32,
///     changed: bool,
///     quiet_rounds: usize,
/// }
/// impl NodeProgram for MaxId {
///     type Message = u32;
///     fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<u32> {
///         self.best = ctx.id;
///         Outbox::Broadcast(self.best)
///     }
///     fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: Vec<(usize, u32)>) -> Outbox<u32> {
///         self.changed = false;
///         for (_, m) in inbox {
///             if m > self.best {
///                 self.best = m;
///                 self.changed = true;
///             }
///         }
///         if self.changed {
///             self.quiet_rounds = 0;
///             Outbox::Broadcast(self.best)
///         } else {
///             self.quiet_rounds += 1;
///             Outbox::Silent
///         }
///     }
///     fn halted(&self) -> bool {
///         self.quiet_rounds >= 2
///     }
/// }
///
/// let g = gen::path(6);
/// let mut net = Network::new(&g, |_, _| MaxId { best: 0, changed: true, quiet_rounds: 0 }, 6);
/// let stats = net.run(100);
/// assert!(stats.all_halted);
/// assert!(net.nodes().iter().all(|p| p.best == 5));
/// ```
pub struct Network<'g, P: NodeProgram> {
    graph: &'g Graph,
    programs: Vec<P>,
    n_hint: usize,
    round: usize,
    inboxes: Vec<Vec<(usize, P::Message)>>,
    messages: u64,
}

impl<'g, P: NodeProgram> Network<'g, P> {
    /// Builds a network running one program instance per vertex;
    /// `make(v, degree)` constructs the instance for vertex `v`.
    pub fn new(graph: &'g Graph, mut make: impl FnMut(Vertex, usize) -> P, n_hint: usize) -> Self {
        let programs = graph.vertices().map(|v| make(v, graph.degree(v))).collect();
        Network {
            graph,
            programs,
            n_hint,
            round: 0,
            inboxes: vec![Vec::new(); graph.n()],
            messages: 0,
        }
    }

    /// Immutable access to the per-vertex programs (e.g. to read outputs).
    pub fn nodes(&self) -> &[P] {
        &self.programs
    }

    /// Consumes the network, returning the per-vertex programs.
    pub fn into_nodes(self) -> Vec<P> {
        self.programs
    }

    /// Rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.round
    }

    fn dispatch(
        &mut self,
        v: Vertex,
        outbox: Outbox<P::Message>,
        next: &mut [Vec<(usize, P::Message)>],
    ) {
        let neighbors = self.graph.neighbors(v);
        match outbox {
            Outbox::Silent => {}
            Outbox::Broadcast(m) => {
                // Clone lazily, one copy per port *except the last*, which
                // takes the original by move — a broadcast to d neighbours
                // costs d − 1 clones, and a degree-1 vertex none at all.
                let mut m = Some(m);
                let last = neighbors.len().saturating_sub(1);
                for (port, &w) in neighbors.iter().enumerate() {
                    let msg = if port == last {
                        m.take().expect("broadcast message moved before last port")
                    } else {
                        m.as_ref()
                            .expect("broadcast message moved before last port")
                            .clone()
                    };
                    let back_port = reverse_port(self.graph, v, w, port);
                    next[w as usize].push((back_port, msg));
                    self.messages += 1;
                }
            }
            Outbox::PerPort(pairs) => {
                for (port, m) in pairs {
                    assert!(port < neighbors.len(), "port {port} out of range");
                    let w = neighbors[port];
                    let back_port = reverse_port(self.graph, v, w, port);
                    next[w as usize].push((back_port, m));
                    self.messages += 1;
                }
            }
        }
    }

    /// Runs until all nodes halt or `max_rounds` communication rounds have
    /// elapsed, whichever comes first.
    pub fn run(&mut self, max_rounds: usize) -> RunStats {
        // Round 0: init.
        if self.round == 0 {
            let mut next: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); self.graph.n()];
            for v in 0..self.graph.n() {
                let ctx = NodeCtx {
                    id: v as Vertex,
                    neighbors: self.graph.neighbors(v as Vertex),
                    round: 0,
                    n_hint: self.n_hint,
                };
                // Split borrow: temporarily take program out.
                let outbox = {
                    let program = &mut self.programs[v];
                    program.init(&ctx)
                };
                self.dispatch(v as Vertex, outbox, &mut next);
            }
            self.inboxes = next;
        }
        while self.round < max_rounds {
            if self.programs.iter().all(|p| p.halted()) {
                break;
            }
            self.round += 1;
            let inboxes = std::mem::replace(&mut self.inboxes, vec![Vec::new(); self.graph.n()]);
            let mut next: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); self.graph.n()];
            for (v, inbox) in inboxes.into_iter().enumerate() {
                let ctx = NodeCtx {
                    id: v as Vertex,
                    neighbors: self.graph.neighbors(v as Vertex),
                    round: self.round,
                    n_hint: self.n_hint,
                };
                let outbox = {
                    let program = &mut self.programs[v];
                    program.round(&ctx, inbox)
                };
                self.dispatch(v as Vertex, outbox, &mut next);
            }
            self.inboxes = next;
        }
        RunStats {
            rounds: self.round,
            messages: self.messages,
            all_halted: self.programs.iter().all(|p| p.halted()),
        }
    }
}

/// The port index of `v` in `w`'s (sorted) adjacency list.
fn reverse_port(g: &Graph, v: Vertex, w: Vertex, _port_at_v: usize) -> usize {
    g.neighbors(w)
        .binary_search(&v)
        .expect("adjacency must be symmetric")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    /// Nodes compute their BFS distance from vertex 0.
    struct BfsDist {
        dist: Option<u32>,
        announced: bool,
    }

    impl NodeProgram for BfsDist {
        type Message = u32;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<u32> {
            if ctx.id == 0 {
                self.dist = Some(0);
                Outbox::Broadcast(0)
            } else {
                Outbox::Silent
            }
        }

        fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: Vec<(usize, u32)>) -> Outbox<u32> {
            if self.dist.is_some() {
                if self.announced {
                    return Outbox::Silent;
                }
                self.announced = true;
                return Outbox::Silent;
            }
            if let Some(&(_, d)) = inbox.iter().min_by_key(|(_, d)| *d) {
                self.dist = Some(d + 1);
                return Outbox::Broadcast(d + 1);
            }
            Outbox::Silent
        }

        fn halted(&self) -> bool {
            self.dist.is_some() && self.announced
        }
    }

    #[test]
    fn bfs_program_matches_centralized_bfs() {
        let g = gen::grid(6, 7);
        let mut net = Network::new(
            &g,
            |_, _| BfsDist {
                dist: None,
                announced: false,
            },
            g.n(),
        );
        let stats = net.run(200);
        assert!(stats.all_halted);
        let reference = dapc_graph::traversal::bfs_distances(&g, 0);
        for (v, p) in net.nodes().iter().enumerate() {
            assert_eq!(p.dist, Some(reference[v]), "vertex {v}");
        }
    }

    #[test]
    fn bfs_round_count_is_eccentricity_plus_wrapup() {
        let g = gen::path(10);
        let mut net = Network::new(
            &g,
            |_, _| BfsDist {
                dist: None,
                announced: false,
            },
            g.n(),
        );
        let stats = net.run(200);
        // Information needs ecc(0) = 9 rounds to reach the far end, plus one
        // wrap-up round for the `announced` flag.
        assert_eq!(stats.rounds, 10);
    }

    #[test]
    fn round_budget_is_respected() {
        let g = gen::path(50);
        let mut net = Network::new(
            &g,
            |_, _| BfsDist {
                dist: None,
                announced: false,
            },
            g.n(),
        );
        let stats = net.run(3);
        assert!(!stats.all_halted);
        assert_eq!(stats.rounds, 3);
        // Only vertices within distance 3 know their distance.
        let known = net.nodes().iter().filter(|p| p.dist.is_some()).count();
        assert_eq!(known, 4);
    }

    /// Per-port echo: send round number to lowest port only.
    struct LowPortPing {
        received: Vec<usize>,
        rounds_left: usize,
    }

    impl NodeProgram for LowPortPing {
        type Message = usize;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<usize> {
            if ctx.neighbors.is_empty() {
                Outbox::Silent
            } else {
                Outbox::PerPort(vec![(0, 0)])
            }
        }

        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: Vec<(usize, usize)>) -> Outbox<usize> {
            for (port, _) in inbox {
                self.received.push(port);
            }
            self.rounds_left = self.rounds_left.saturating_sub(1);
            if self.rounds_left > 0 && !ctx.neighbors.is_empty() {
                Outbox::PerPort(vec![(0, ctx.round)])
            } else {
                Outbox::Silent
            }
        }

        fn halted(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn per_port_delivery_reports_correct_sender_port() {
        // Path 0 - 1 - 2: vertex 1's port 0 is neighbour 0.
        let g = gen::path(3);
        let mut net = Network::new(
            &g,
            |_, _| LowPortPing {
                received: Vec::new(),
                rounds_left: 2,
            },
            3,
        );
        let stats = net.run(10);
        assert!(stats.all_halted);
        // Vertex 0 hears from vertex 1 (its only neighbour = port 0).
        assert!(net.nodes()[0].received.iter().all(|&p| p == 0));
        // Vertex 1 hears from vertex 0 on port 0 and vertex 2 never sends to
        // it (2's port 0 is vertex 1 — it does send). Ports at vertex 1: 0
        // -> neighbour 0, 1 -> neighbour 2.
        assert!(net.nodes()[1].received.contains(&0));
        assert!(net.nodes()[1].received.contains(&1));
    }

    /// Broadcasts one clone-counting message from vertex 0 at init, then
    /// goes quiet.
    struct OneShotBroadcast {
        counter: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        done: bool,
    }

    #[derive(Debug)]
    struct CountedMsg(std::sync::Arc<std::sync::atomic::AtomicUsize>);

    impl Clone for CountedMsg {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountedMsg(std::sync::Arc::clone(&self.0))
        }
    }

    impl NodeProgram for OneShotBroadcast {
        type Message = CountedMsg;

        fn init(&mut self, ctx: &NodeCtx<'_>) -> Outbox<CountedMsg> {
            if ctx.id == 0 {
                Outbox::Broadcast(CountedMsg(std::sync::Arc::clone(&self.counter)))
            } else {
                Outbox::Silent
            }
        }

        fn round(
            &mut self,
            _ctx: &NodeCtx<'_>,
            _inbox: Vec<(usize, CountedMsg)>,
        ) -> Outbox<CountedMsg> {
            self.done = true;
            Outbox::Silent
        }

        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn broadcast_clones_once_per_port_except_the_last() {
        // Star centre has degree 5: all 5 neighbours must receive the
        // message, but only 4 clones happen (the last port takes the
        // original by move).
        let g = gen::star(6);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut net = Network::new(
            &g,
            |_, _| OneShotBroadcast {
                counter: std::sync::Arc::clone(&counter),
                done: false,
            },
            6,
        );
        let stats = net.run(5);
        assert_eq!(stats.messages, 5, "degree-5 broadcast delivers 5 messages");
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            4,
            "d-port broadcast must clone exactly d − 1 times"
        );
    }

    #[test]
    fn message_count_is_tracked() {
        let g = gen::complete(4);
        let mut net = Network::new(
            &g,
            |_, _| BfsDist {
                dist: None,
                announced: false,
            },
            4,
        );
        let stats = net.run(10);
        // init: vertex 0 broadcasts to 3 neighbours; round 1: the other
        // three each broadcast once (3 × 3).
        assert_eq!(stats.messages, 3 + 9);
    }
}
