//! # dapc-local
//!
//! LOCAL model runtime for the `dapc` workspace.
//!
//! Two complementary layers:
//!
//! * [`network`] — a faithful synchronous message-passing simulator: one
//!   [`network::NodeProgram`] per vertex, arbitrary message sizes, exact
//!   round and message accounting. Used for small-radius algorithms and to
//!   *validate* the second layer.
//! * [`charge`] — charged round accounting for the paper's large-radius
//!   algorithms (`R = Θ(t ln ñ / ε)` gathers): balls are computed
//!   centrally, and the [`charge::RoundLedger`] charges exactly the rounds
//!   a flooding implementation would spend (max gather radius per parallel
//!   phase, summed over sequential phases).
//!
//! The bridge between the layers is [`gather`]: the gathering primitive is
//! implemented as a real message-passing program and tested to deliver
//! exactly `N^r(v)` after `r` rounds, which is the classical equivalence
//! ("an r-round LOCAL algorithm is a function of r-balls") the charged
//! accounting relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charge;
pub mod gather;
pub mod network;

pub use charge::{RoundCost, RoundLedger};
pub use network::{Network, NodeCtx, NodeProgram, Outbox, RunStats};
