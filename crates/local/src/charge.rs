//! Charged round accounting for large-radius LOCAL algorithms.
//!
//! The paper's algorithms gather balls of radius `R = Θ(t·ln ñ/ε)` — far
//! beyond the diameter of any graph a simulation can hold, and far too
//! expensive to flood literally (`O(n · rounds · ball)` traffic). Since an
//! `r`-round LOCAL algorithm is precisely a function of `r`-balls (verified
//! against real message passing in [`crate::gather`]), we instead perform
//! gathers centrally and *charge* the rounds they would cost:
//!
//! * within one **phase**, all vertices act in parallel, so the phase costs
//!   the *maximum* radius any participant gathers;
//! * phases are sequential, so their costs *add*.
//!
//! Every decomposition/solver result carries its [`RoundLedger`] so
//! experiments can report exact LOCAL round complexities and their
//! per-phase breakdown.

/// Anything that carries a LOCAL round bill.
///
/// Every solver outcome, decomposition and report in the workspace exposes
/// its cost through this one trait (previously each type hand-rolled its
/// own `rounds()` accessor). Implementors provide [`RoundCost::ledger`];
/// [`RoundCost::rounds`] is derived.
///
/// # Examples
///
/// ```
/// use dapc_local::charge::{RoundCost, RoundLedger};
///
/// struct Outcome { ledger: RoundLedger }
/// impl RoundCost for Outcome {
///     fn ledger(&self) -> &RoundLedger { &self.ledger }
/// }
///
/// let mut ledger = RoundLedger::new();
/// ledger.begin_phase("gather");
/// ledger.charge_gather(5);
/// ledger.end_phase();
/// assert_eq!(Outcome { ledger }.rounds(), 5);
/// ```
pub trait RoundCost {
    /// The phase-by-phase round bill.
    fn ledger(&self) -> &RoundLedger;

    /// Total LOCAL rounds charged.
    fn rounds(&self) -> usize {
        self.ledger().total_rounds()
    }
}

impl RoundCost for RoundLedger {
    fn ledger(&self) -> &RoundLedger {
        self
    }
}

/// One sequential phase of a LOCAL algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase label (e.g. `"phase1/iter3"`).
    pub name: String,
    /// Rounds this phase costs (max over parallel participants).
    pub rounds: usize,
}

/// Accumulates the LOCAL round cost of an algorithm, phase by phase.
///
/// # Examples
///
/// ```
/// use dapc_local::charge::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.begin_phase("estimate n_v");
/// ledger.charge_gather(12); // all vertices gather radius 12 in parallel
/// ledger.charge_gather(9);  // absorbed: same phase, smaller radius
/// ledger.end_phase();
/// ledger.begin_phase("carve");
/// ledger.charge_gather(30);
/// ledger.end_phase();
/// assert_eq!(ledger.total_rounds(), 42);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundLedger {
    phases: Vec<Phase>,
    current: Option<Phase>,
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new sequential phase. Any open phase is closed first.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.end_phase();
        self.current = Some(Phase {
            name: name.into(),
            rounds: 0,
        });
    }

    /// Records a parallel ball-gather of the given radius in the current
    /// phase; the phase cost is the maximum charge seen.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn charge_gather(&mut self, radius: usize) {
        let cur = self
            .current
            .as_mut()
            .expect("charge_gather outside of a phase");
        cur.rounds = cur.rounds.max(radius);
    }

    /// Records an unconditional cost of `rounds` *added* to the current
    /// phase (for sequential sub-steps that cannot overlap with the
    /// gathers, e.g. broadcasting a decision back over the same radius).
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn charge_additive(&mut self, rounds: usize) {
        let cur = self
            .current
            .as_mut()
            .expect("charge_additive outside of a phase");
        cur.rounds += rounds;
    }

    /// Closes the current phase (no-op when none is open).
    pub fn end_phase(&mut self) {
        if let Some(p) = self.current.take() {
            self.phases.push(p);
        }
    }

    /// Appends all phases of another ledger (used when an algorithm invokes
    /// a sub-algorithm sequentially).
    pub fn absorb(&mut self, other: RoundLedger) {
        self.end_phase();
        let mut other = other;
        other.end_phase();
        self.phases.extend(other.phases);
    }

    /// Merges another ledger *in parallel*: the combined cost is the
    /// maximum of the two totals, recorded as a single phase.
    pub fn absorb_parallel(&mut self, name: impl Into<String>, others: Vec<RoundLedger>) {
        let max = others
            .into_iter()
            .map(|o| o.total_rounds())
            .max()
            .unwrap_or(0);
        self.begin_phase(name);
        self.charge_gather(max);
        self.end_phase();
    }

    /// Multiplies every phase cost by `factor` — the cost of simulating
    /// each hypergraph round by `factor` rounds of the underlying graph
    /// (e.g. `k`-distance dominating set, where one hyperedge round is `k`
    /// graph rounds).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.end_phase();
        for p in &mut self.phases {
            p.rounds *= factor;
        }
        self
    }

    /// Total LOCAL rounds: the sum over closed phases plus the open one.
    pub fn total_rounds(&self) -> usize {
        self.phases.iter().map(|p| p.rounds).sum::<usize>()
            + self.current.as_ref().map_or(0, |p| p.rounds)
    }

    /// The closed phases, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }
}

impl std::fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "RoundLedger(total = {} rounds)", self.total_rounds())?;
        for p in &self.phases {
            writeln!(f, "  {:<32} {:>10}", p.name, p.rounds)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_add_gathers_max() {
        let mut l = RoundLedger::new();
        l.begin_phase("a");
        l.charge_gather(5);
        l.charge_gather(3);
        l.charge_gather(7);
        l.begin_phase("b"); // implicitly closes "a"
        l.charge_gather(2);
        l.end_phase();
        assert_eq!(l.total_rounds(), 9);
        assert_eq!(l.phases().len(), 2);
        assert_eq!(l.phases()[0].rounds, 7);
    }

    #[test]
    fn additive_charges_stack() {
        let mut l = RoundLedger::new();
        l.begin_phase("gather+report");
        l.charge_gather(10);
        l.charge_additive(10); // report back
        l.end_phase();
        assert_eq!(l.total_rounds(), 20);
    }

    #[test]
    fn absorb_sequential() {
        let mut a = RoundLedger::new();
        a.begin_phase("x");
        a.charge_gather(4);
        a.end_phase();
        let mut b = RoundLedger::new();
        b.begin_phase("y");
        b.charge_gather(6);
        let mut total = RoundLedger::new();
        total.absorb(a);
        total.absorb(b);
        assert_eq!(total.total_rounds(), 10);
    }

    #[test]
    fn absorb_parallel_takes_max() {
        let mk = |r| {
            let mut l = RoundLedger::new();
            l.begin_phase("p");
            l.charge_gather(r);
            l.end_phase();
            l
        };
        let mut total = RoundLedger::new();
        total.absorb_parallel("independent runs", vec![mk(3), mk(11), mk(7)]);
        assert_eq!(total.total_rounds(), 11);
    }

    #[test]
    fn open_phase_counts_toward_total() {
        let mut l = RoundLedger::new();
        l.begin_phase("open");
        l.charge_gather(5);
        assert_eq!(l.total_rounds(), 5);
    }

    #[test]
    #[should_panic]
    fn charge_outside_phase_panics() {
        let mut l = RoundLedger::new();
        l.charge_gather(1);
    }

    #[test]
    fn scaled_multiplies_every_phase() {
        let mut l = RoundLedger::new();
        l.begin_phase("a");
        l.charge_gather(3);
        l.begin_phase("b");
        l.charge_gather(4);
        let scaled = l.scaled(5);
        assert_eq!(scaled.total_rounds(), 35);
        assert_eq!(scaled.phases()[0].rounds, 15);
    }

    #[test]
    fn round_cost_is_derived_from_ledger() {
        let mut l = RoundLedger::new();
        l.begin_phase("p");
        l.charge_gather(9);
        l.end_phase();
        assert_eq!(RoundCost::rounds(&l), 9);
        assert_eq!(RoundCost::ledger(&l).phases().len(), 1);
    }

    #[test]
    fn display_contains_breakdown() {
        let mut l = RoundLedger::new();
        l.begin_phase("alpha");
        l.charge_gather(2);
        l.end_phase();
        let s = format!("{l}");
        assert!(s.contains("alpha"));
        assert!(s.contains("total = 2"));
    }
}
