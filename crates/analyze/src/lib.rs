//! `dapc-analyze` — the workspace invariant linter.
//!
//! Every guarantee this workspace sells — byte-identical reports at any
//! worker count, exactly-mergeable shards, chaos runs that fail loudly
//! or match the fault-free baseline — rests on *source-level*
//! invariants: key-derived RNGs, no hash-order leaks into report bytes,
//! no stray threads outside the executor, sealed versioned snapshot
//! magics, justified atomic orderings, no panics in library paths. The
//! runtime identity tests exercise those invariants on the corpora they
//! happen to run; this crate checks them on every line, statically, in
//! CI.
//!
//! The design is deliberately lexical: a small
//! comment/string/raw-string-aware lexer ([`lexer`]) blanks everything
//! a rule must not look inside, and the rule engine ([`rules`]) does
//! identifier-level searches over the blanked view. That makes the
//! analyzer fast (one pass per file, zero dependencies), trivially
//! predictable, and impossible to crash on malformed input — at the
//! cost of being conservative: it flags *potential* violations and
//! relies on visible `// dapc-allow(rule): reason` annotations for the
//! sites a human has argued safe. Every exception is therefore in the
//! diff, with its justification next to it.
//!
//! Run it as `dapc-analyze --workspace` (the CI gate), or point it at
//! individual files. See `crates/analyze/README.md` for the rule table.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, Config, FileCtx, FileRole, Finding, RULE_NAMES};

use std::fs;
use std::path::{Path, PathBuf};

/// Analyze one in-memory source file under the given config.
/// `rel_path` must be workspace-relative with `/` separators (it drives
/// the allowlists); `crate_name` is the short crate directory name
/// (`"runtime"` for `crates/runtime`).
pub fn analyze_source(
    rel_path: &str,
    crate_name: &str,
    role: FileRole,
    source: &[u8],
    config: &Config,
) -> Vec<Finding> {
    let scan = lexer::scan(source);
    let ctx = FileCtx {
        path: rel_path,
        crate_name,
        role,
        scan: &scan,
        config,
    };
    let mut out = Vec::new();
    check_file(&ctx, &mut out);
    out
}

/// Analyze the whole workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and the facade `src/`, plus the vendored stand-ins'
/// crate roots (which only the `forbid-unsafe` rule covers). `tests/`,
/// `benches/` and `examples/` trees are out of scope by design — the
/// contracts govern library and binary code paths.
///
/// Returns findings sorted by (file, line). I/O errors surface as
/// findings too, so a broken tree fails the gate instead of passing
/// silently.
pub fn analyze_workspace(root: &Path, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut saw_registry = false;

    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir, &mut findings) {
        let crate_name = file_name(&crate_dir);
        let src = crate_dir.join("src");
        for file in rs_files(&src, &mut findings) {
            let rel = rel_path(root, &file);
            let role = role_of(&rel);
            if rel == config.registry_path {
                saw_registry = true;
            }
            analyze_path(&file, &rel, &crate_name, role, config, &mut findings);
        }
    }

    // The facade crate at the workspace root.
    let facade_src = root.join("src");
    for file in rs_files(&facade_src, &mut findings) {
        let rel = rel_path(root, &file);
        let role = if rel == "src/lib.rs" {
            FileRole::CrateRoot
        } else {
            role_of(&rel)
        };
        analyze_path(&file, &rel, "dapc", role, config, &mut findings);
    }

    // Vendored stand-ins: crate roots only, forbid-unsafe only.
    let vendor_dir = root.join("vendor");
    for vendor_crate in sorted_dirs(&vendor_dir, &mut findings) {
        let lib = vendor_crate.join("src").join("lib.rs");
        if lib.is_file() {
            let rel = rel_path(root, &lib);
            analyze_path(
                &lib,
                &rel,
                &file_name(&vendor_crate),
                FileRole::VendorRoot,
                config,
                &mut findings,
            );
        }
    }

    if !saw_registry {
        findings.push(Finding {
            file: config.registry_path.clone(),
            line: 1,
            rule: "magic-registry",
            message: "central snapshot-magic registry module not found".into(),
        });
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

fn analyze_path(
    file: &Path,
    rel: &str,
    crate_name: &str,
    role: FileRole,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    match fs::read(file) {
        Ok(source) => {
            findings.extend(analyze_source(rel, crate_name, role, &source, config));
        }
        Err(err) => findings.push(Finding {
            file: rel.to_string(),
            line: 0,
            rule: "io",
            message: format!("failed to read: {err}"),
        }),
    }
}

/// Role of a workspace-relative path.
fn role_of(rel: &str) -> FileRole {
    if rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" {
        FileRole::CrateRoot
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileRole::BinRoot
    } else {
        FileRole::Module
    }
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Immediate subdirectories of `dir`, name-sorted for deterministic
/// report order.
fn sorted_dirs(dir: &Path, findings: &mut Vec<Finding>) -> Vec<PathBuf> {
    let mut out = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries.flatten() {
                if entry.path().is_dir() {
                    out.push(entry.path());
                }
            }
        }
        Err(err) => findings.push(Finding {
            file: dir.to_string_lossy().into_owned(),
            line: 0,
            rule: "io",
            message: format!("failed to list: {err}"),
        }),
    }
    out.sort();
    out
}

/// All `.rs` files under `dir`, recursively, name-sorted.
fn rs_files(dir: &Path, findings: &mut Vec<Finding>) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(e) => e,
            Err(err) => {
                if d != *dir {
                    findings.push(Finding {
                        file: d.to_string_lossy().into_owned(),
                        line: 0,
                        rule: "io",
                        message: format!("failed to list: {err}"),
                    });
                }
                continue;
            }
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
